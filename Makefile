PY ?= python
PYTEST = PYTHONPATH=src $(PY) -m pytest

.PHONY: test robustness parallel obs obs-scrape-smoke runtime runtime-smoke bench bench-parallel bench-resilience bench-lifecycle bench-kernels serve-smoke trace-smoke chaos lifecycle kernels objective

# Tier-1 suite (unit + property + integration), as CI runs it.
test:
	$(PYTEST) -x -q

# Serving smoke: publish a model to a registry, push a JSONL batch
# through the estimate-batch CLI, assert non-empty per-request output.
serve-smoke:
	PYTHONPATH=src $(PY) examples/serve_smoke.py

# Robustness gate: the robustness-marked tests alone for fast signal,
# then the full tier-1 suite with RuntimeWarnings promoted to errors so
# numeric sloppiness (overflow, invalid casts) cannot hide in a pass.
robustness:
	$(PYTEST) -x -q -W error::RuntimeWarning -m robustness
	$(PYTEST) -x -q -W error::RuntimeWarning

# Parallel-layer gate: the parity/executor/memo tests alone, with
# RuntimeWarnings promoted to errors — a worker that divides by zero or
# overflows must fail the gate, not just log.
parallel:
	$(PYTEST) -x -q -W error::RuntimeWarning -m parallel

# Observability gate: the obs-marked tests (tracer, registry, ring
# sampler, SLO burn rates, scrape endpoint, exporters, cost tree,
# cross-process trace propagation) with RuntimeWarnings promoted to
# errors, then the live scrape smoke against a real sharded service.
obs:
	$(PYTEST) -x -q -W error::RuntimeWarning -m obs
	PYTHONPATH=src $(PY) examples/scrape_smoke.py

# Scrape smoke alone: sharded service with an ephemeral scrape port
# must answer /metrics, /healthz, /slo and /spans with the repro_*
# series and SLOs the dashboards key on.
obs-scrape-smoke:
	PYTHONPATH=src $(PY) examples/scrape_smoke.py

# Tracing smoke: trace a CLI train + estimate end to end, assert the
# rendered cost tree accounts for the measured wall time within 5%.
trace-smoke:
	PYTHONPATH=src $(PY) examples/trace_smoke.py

# Runtime gate: the runtime-marked tests (config layering, context
# lifecycle, ctx parity, CLI teardown) with DeprecationWarnings promoted
# to errors — the ctx= paths must never trip a legacy shim, and shims
# must warn exactly once where the tests expect them to.
runtime:
	$(PYTEST) -x -q -W error::DeprecationWarning -m runtime

# Chaos gate: the chaos-marked sharded-serving tests — seeded worker
# crashes, hangs, poison requests and supervisor kills — with
# RuntimeWarnings promoted to errors. The invariant under test: every
# admitted request's future resolves (result, typed error or deadline),
# whatever dies.
chaos:
	$(PYTEST) -x -q -W error::RuntimeWarning -m chaos

# Runtime smoke: one RuntimeContext drives train + serve + search end
# to end, then the teardown contract is asserted (trace/metrics files
# written, pool gone, closed context refuses work).
runtime-smoke:
	PYTHONPATH=src $(PY) examples/runtime_smoke.py

# Kernel gate: the kernels-marked tests (scratch arena, backend
# registry, chunked Huffman and fused-vs-reference bit-identity parity)
# with RuntimeWarnings promoted to errors — a fused pass that overflows
# or divides by zero must fail loudly, not round differently.
kernels:
	$(PYTEST) -x -q -W error::RuntimeWarning -m kernels

# Lifecycle gate: the lifecycle-marked tests (outcome log, drift
# detector, registry promote/rollback, background retrain, canary
# promotion) with RuntimeWarnings promoted to errors.
lifecycle:
	$(PYTEST) -x -q -W error::RuntimeWarning -m lifecycle

# Objective gate: the objective-marked tests (Objective grammar,
# quality targeting, frontier queries, ratio bit-identity) with
# DeprecationWarnings promoted to errors — the objective paths must
# never trip a legacy shim.
objective:
	$(PYTEST) -x -q -W error::DeprecationWarning -m objective

bench:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q

# Parallel scaling smoke bench (writes BENCH_parallel_scaling.json at
# the repo root; FXRZ_BENCH_PARALLEL_FULL=1 for the 256^3 / 25-point /
# 8-way configuration).
bench-parallel:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q bench_parallel_scaling.py

# Kernel throughput bench: per-compressor encode/decode MB/s on the
# Nyx baryon-density block with regression floors; writes
# BENCH_kernel_throughput.json at the repo root (streaming rows reuse
# one arena across repeats, cold rows rebuild scratch every call).
bench-kernels:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q bench_compressor_throughput.py

# Serving-resilience bench: overload (shedding) + chaos (shard kills
# under load) phases against the sharded service; writes
# BENCH_serving_resilience.json at the repo root with p50/p99 latency
# and the admitted-request loss rate (must be 0).
bench-resilience:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q bench_serving_resilience.py

# Online-learning bench: outcome-logging overhead (<= 3%), serving p99
# during a background retrain (<= 1.5x baseline) and the estimation
# error before vs after a canary promotion; writes
# BENCH_online_learning.json at the repo root.
bench-lifecycle:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q bench_online_learning.py
