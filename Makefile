PY ?= python
PYTEST = PYTHONPATH=src $(PY) -m pytest

.PHONY: test robustness bench serve-smoke

# Tier-1 suite (unit + property + integration), as CI runs it.
test:
	$(PYTEST) -x -q

# Serving smoke: publish a model to a registry, push a JSONL batch
# through the estimate-batch CLI, assert non-empty per-request output.
serve-smoke:
	PYTHONPATH=src $(PY) examples/serve_smoke.py

# Robustness gate: the robustness-marked tests alone for fast signal,
# then the full tier-1 suite with RuntimeWarnings promoted to errors so
# numeric sloppiness (overflow, invalid casts) cannot hide in a pass.
robustness:
	$(PYTEST) -x -q -W error::RuntimeWarning -m robustness
	$(PYTEST) -x -q -W error::RuntimeWarning

bench:
	cd benchmarks && PYTHONPATH=../src $(PY) -m pytest -q
