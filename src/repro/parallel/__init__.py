"""Shared parallel execution layer (executor, shm transport, memo cache).

The three pieces compose into one story: :class:`ParallelExecutor`
fans independent compressor/tree/tile tasks over processes or threads
with serial-identical results, :class:`SharedNDArray` ships the large
fields those tasks read to process workers once instead of per task,
and :class:`CompressionMemoCache` makes sure no execution path in the
library ever pays for the same compression twice. Every hot loop
(augmentation sweeps, FRaZ probes, forest fit/predict, tiled
estimation) accepts these through ``executor=`` / ``memo=`` /
``n_jobs=`` seams; the CLI exposes them as ``--jobs``.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    available_cpus,
    derive_seeds,
    resolve_n_jobs,
)
from repro.parallel.memo import CompressionMemoCache, MemoRecord
from repro.parallel.shm import SharedNDArray, ShmDescriptor

__all__ = [
    "CompressionMemoCache",
    "MemoRecord",
    "ParallelExecutor",
    "SharedNDArray",
    "ShmDescriptor",
    "available_cpus",
    "derive_seeds",
    "resolve_n_jobs",
]
