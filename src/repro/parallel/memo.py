"""Cross-path compression memo: never run an identical compression twice.

Augmentation sweeps, FRaZ searches, PSNR calibration and the benchmark
suite all invoke ``compressor.compression_ratio(data, config)`` — and
routinely at the *same* ``(data, compressor, config)`` triple: FRaZ
re-probes bin edges across targets, benches sweep the same fields the
training pass already swept, repeated searches on one snapshot overlap
heavily. :class:`CompressionMemoCache` memoizes those outcomes under a
content-addressed key, so every caller that opts in shares one pool of
already-paid compressor runs.

Keys are ``(dataset fingerprint, compressor cache token, normalized
config)``:

* the fingerprint content-hashes the full array
  (:func:`repro.compressors.base.content_fingerprint`) — compression
  ratios depend on every point, so unlike the serving layer's sampled
  fingerprint this one must cover the whole field;
* the cache token (:meth:`Compressor.cache_token`) folds in option
  state (SZ's interpolation/entropy choice, ZFP's mode), so two
  differently-configured instances of the same compressor never alias;
* configs are normalized before keying, so the float the compressor
  would actually use is the float that is compared.

Thread-safety: all mutation happens under one lock, so thread-pool
workers can share an instance directly. Process pools cannot share the
dict itself; the supported pattern (used by ``build_curve`` and FRaZ)
is *lookup-before-submit, merge-after*: the parent resolves hits, ships
only misses to workers, and merges their ``(key, record)`` results back
with :meth:`merge`. Recorded seconds travel with each record so memo
hits can stay honest about the compressor time they represent.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from time import perf_counter

import numpy as np

from repro.compressors.base import Compressor, content_fingerprint
from repro.errors import InvalidConfiguration

#: Memo key: (dataset fingerprint, compressor cache token, normalized config).
MemoKey = tuple[str, str, float]


@dataclass(frozen=True)
class MemoRecord:
    """One memoized compression outcome.

    Attributes:
        ratio: measured compression ratio.
        seconds: compressor wall time of the original run (what a memo
            hit "costs" in modeled-compressor-time accounting).
        psnr: reconstruction PSNR in dB, when a quality-targeting caller
            (``calibrated_bound_for_psnr``) measured it; ``None`` for
            ratio-only entries.
    """

    ratio: float
    seconds: float
    psnr: float | None = None


class CompressionMemoCache:
    """LRU memo of compression outcomes, shared across execution paths.

    Args:
        max_entries: LRU capacity. Each entry is a few floats; the
            default comfortably covers a full benchmark session.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise InvalidConfiguration("memo needs at least one entry")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[MemoKey, MemoRecord] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- stats ----------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, float]:
        """A snapshot of the counters (for benches and service metrics)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_ratio": self.hit_ratio,
            }

    def register_metrics(self, registry, subsystem: str = "memo") -> None:
        """Expose the counters as ``repro_<subsystem>_*`` gauges.

        Pull-model (see :func:`repro.obs.bind_cache_gauges`): the
        gauges refresh when the registry exports, so ``get``/``put``
        stay untouched.
        """
        from repro.obs import bind_cache_gauges

        bind_cache_gauges(registry, subsystem, self)

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def fingerprint(data: np.ndarray) -> str:
        """Content-fingerprint ``data`` for memo keying (full contents)."""
        return content_fingerprint(data)

    @staticmethod
    def key(
        fingerprint: str, compressor: Compressor, config: float
    ) -> MemoKey:
        """The memo key for one (dataset, compressor, config) triple."""
        return (
            fingerprint,
            compressor.cache_token(),
            float(compressor.normalize_config(config)),
        )

    # -- core dict operations -------------------------------------------------

    def get(self, key: MemoKey) -> MemoRecord | None:
        """The record under ``key``, counting a hit/miss; None if absent."""
        with self._lock:
            record = self._entries.get(key)
            if record is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return record

    def peek(self, key: MemoKey) -> MemoRecord | None:
        """Like :meth:`get` but without touching counters or LRU order."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: MemoKey, record: MemoRecord) -> None:
        """Store ``record``; an existing entry is only ever *enriched*.

        A ratio-only record never overwrites one that also carries a
        PSNR measurement — quality information is strictly additive.
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and record.psnr is None:
                record = replace(record, psnr=existing.psnr)
            self._entries[key] = record
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __getstate__(self) -> dict:
        # Locks don't pickle; a cache shipped to a process worker (e.g.
        # inside a pipeline) becomes an independent warm snapshot there,
        # which is exactly what a read-mostly worker wants.
        with self._lock:
            return {
                "max_entries": self.max_entries,
                "entries": list(self._entries.items()),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __setstate__(self, state: dict) -> None:
        self.max_entries = state["max_entries"]
        self._entries = OrderedDict(state["entries"])
        self._lock = threading.Lock()
        self._hits = state["hits"]
        self._misses = state["misses"]
        self._evictions = state["evictions"]

    def merge(self, items: dict[MemoKey, MemoRecord]) -> None:
        """Bulk-insert worker-computed records (process-pool pattern)."""
        for key, record in items.items():
            self.put(key, record)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- convenience ----------------------------------------------------------

    def ratio(
        self,
        compressor: Compressor,
        data: np.ndarray,
        config: float,
        fingerprint: str | None = None,
    ) -> tuple[float, float, bool]:
        """``(ratio, seconds, hit)`` for one compression, memoized.

        ``fingerprint`` lets callers that sweep many configs over one
        array pay the content hash once instead of per call.
        """
        if fingerprint is None:
            fingerprint = self.fingerprint(data)
        key = self.key(fingerprint, compressor, config)
        record = self.get(key)
        if record is not None:
            return record.ratio, record.seconds, True
        tick = perf_counter()
        measured = compressor.compression_ratio(data, config)
        seconds = perf_counter() - tick
        self.put(key, MemoRecord(ratio=measured, seconds=seconds))
        return measured, seconds, False
