"""Backend-pluggable task execution with deterministic results.

Every hot loop in this library — the ~25-point stationary sweeps of
augmentation, FRaZ's window probes, per-tree forest fits, per-tile
estimation — is a map over independent tasks. :class:`ParallelExecutor`
gives those loops one seam: a ``map`` that runs serially, on a thread
pool, or on a process pool, always returning results in task order so
callers are bit-identical to their serial selves.

Backend guidance (the GIL decides):

* ``"process"`` — CPU-bound work that holds the GIL (the pure-python
  compressors, CART tree fitting). Tasks and results cross process
  boundaries by pickling, so large ndarrays should travel through
  ``shared=`` (see :mod:`repro.parallel.shm`) instead of task tuples.
* ``"thread"`` — work dominated by numpy kernels that release the GIL,
  or anything touching in-process state (a warm
  :class:`~repro.parallel.memo.CompressionMemoCache`).
* ``"serial"`` — the reference behavior; also what any ``n_jobs=1``
  executor collapses to.

Worker functions used with the process backend must be module-level
(picklable by reference). The uniform signature is
``fn(task, arrays, context)`` where ``arrays`` is the dict passed as
``shared=`` (reconstructed zero-copy in workers) and ``context`` is the
per-map constant shipped once per worker instead of once per task.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro import obs
from repro.errors import InvalidConfiguration
from repro.obs import trace as obs_trace
from repro.parallel.shm import SharedNDArray

_BACKENDS = ("auto", "serial", "thread", "process")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "all available CPUs"; negative values count
    back from the CPU pool (``-1`` = all, ``-2`` = all but one, the
    joblib convention); positive values are taken literally.
    """
    cpus = available_cpus()
    if n_jobs is None or n_jobs == 0:
        return cpus
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return n_jobs


def derive_seeds(master_seed: int | None, n_tasks: int) -> list[int]:
    """``n_tasks`` independent per-task seeds from one master seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the derived
    seeds do not depend on how tasks are later scheduled — the same
    master seed yields the same per-task streams at any ``n_jobs``.
    """
    if n_tasks < 0:
        raise InvalidConfiguration("n_tasks must be >= 0")
    children = np.random.SeedSequence(master_seed).spawn(n_tasks)
    return [int(child.generate_state(1)[0]) for child in children]


# -- process-backend worker plumbing -----------------------------------------
#
# The pool initializer attaches every shared segment once per worker and
# stashes (arrays, fn, context) in module globals; per-task traffic is
# then just the task tuple and the result.

_WORKER_STATE: dict | None = None


def _worker_init(descriptors, fn, context, handoff=None) -> None:
    global _WORKER_STATE
    handles = {
        name: SharedNDArray.attach(desc) for name, desc in descriptors.items()
    }
    # Runtime handoff: span re-parenting and the driver context's child
    # spec both attach here (imported lazily — repro.runtime imports
    # this module for ParallelExecutor).
    from repro.runtime.worker import attach_worker_runtime

    tracer = attach_worker_runtime(handoff)
    _WORKER_STATE = {
        "handles": handles,
        "arrays": {name: handle.asarray() for name, handle in handles.items()},
        "fn": fn,
        "context": context,
        "tracer": tracer,
    }


def _run_batch(batch, arrays, context):
    """Module-level fat-task wrapper used by ``map_batched``.

    ``context`` carries ``(fn, inner_context)``; the batch is a list of
    the caller's tasks, executed as one pool task so dispatch overhead
    is paid once per worker instead of once per probe.
    """
    fn, inner_context = context
    return [fn(task, arrays, inner_context) for task in batch]


def _worker_call(task):
    state = _WORKER_STATE
    result = state["fn"](task, state["arrays"], state["context"])
    tracer = state["tracer"]
    if tracer is None:
        return result
    # Ship this task's spans home with its result; the driver absorbs
    # them into its tracer (same trace id, parented under the map span).
    return result, [span.to_dict() for span in tracer.drain()]


class ParallelExecutor:
    """Map independent tasks over a serial / thread / process backend.

    Args:
        n_jobs: worker count (``None``/``0`` = all CPUs, negatives count
            back from the pool, joblib-style).
        backend: ``"auto"`` clamps the worker count to the CPUs this
            process may actually use and picks ``"process"`` when that
            leaves more than one worker, ``"serial"`` otherwise — so
            ``n_jobs=4`` on a 1-CPU host runs the serial reference path
            instead of paying pool dispatch for no parallelism. Forcing
            ``"serial"``/``"thread"``/``"process"`` skips the clamp.

    The executor is stateless between ``map`` calls (pools live only for
    the duration of one map), so one instance can be shared freely.
    """

    def __init__(self, n_jobs: int | None = None, backend: str = "auto") -> None:
        if backend not in _BACKENDS:
            raise InvalidConfiguration(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.n_jobs = resolve_n_jobs(n_jobs)
        if backend == "auto":
            # Oversubscribing CPU-bound workers is strictly worse than
            # serial (pool startup + pickling with no parallel gain).
            self.n_jobs = min(self.n_jobs, available_cpus())
            backend = "process" if self.n_jobs > 1 else "serial"
        if self.n_jobs == 1 and backend != "serial":
            # One worker gains nothing from a pool; collapse to the
            # reference path so n_jobs=1 is exactly the serial code.
            backend = "serial"
        self.backend = backend
        # Set by an owning RuntimeContext; its spec travels to process
        # workers so they can rebuild a child context.
        self._ctx = None
        self._live_handles: list[SharedNDArray] = []
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(n_jobs={self.n_jobs}, backend={self.backend!r})"

    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self) -> None:
        """Refuse further maps and release any leftover shared memory.

        Pools already live only per-``map``, so the work here is
        unlinking ``SharedNDArray`` segments a failed map left behind;
        idempotent and safe after errors.
        """
        if self._closed:
            return
        self._closed = True
        leftovers, self._live_handles = self._live_handles, []
        for handle in leftovers:
            try:
                handle.close()
                handle.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def map(
        self,
        fn,
        tasks,
        *,
        shared: dict[str, np.ndarray] | None = None,
        context=None,
    ) -> list:
        """``[fn(task, arrays, context) for task in tasks]``, maybe parallel.

        Results are always returned in task order, whatever the backend
        or scheduling, so callers see serial semantics. ``shared``
        ndarrays are shipped to process workers once (via shared
        memory), not per task; serial/thread backends pass them through
        zero-copy.
        """
        if self._closed:
            raise InvalidConfiguration(
                "cannot map on a shut-down ParallelExecutor"
            )
        tasks = list(tasks)
        if not tasks:
            return []
        arrays = dict(shared) if shared else {}
        if obs.get_tracer() is None:
            return self._dispatch(fn, tasks, arrays, context, None)
        with obs.span(
            "parallel.map",
            backend=self.backend,
            n_jobs=self.n_jobs,
            n_tasks=len(tasks),
        ):
            return self._dispatch(
                fn, tasks, arrays, context, obs_trace.current_context()
            )

    def map_batched(
        self,
        fn,
        tasks,
        *,
        shared: dict[str, np.ndarray] | None = None,
        context=None,
        batches: int | None = None,
    ) -> list:
        """Like :meth:`map`, but ships tasks as fat batches.

        Tasks are grouped into at most ``batches`` (default: one per
        worker) contiguous chunks, each submitted as a *single* pool
        task. Per-task results come back flattened in task order, so
        callers see :meth:`map` semantics with per-worker instead of
        per-task dispatch cost — the difference between losing and
        winning against serial when each task is only a few ms of work.

        ``fn`` must still be picklable by reference (module-level) for
        the process backend, exactly as with :meth:`map`.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        n_batches = batches if batches else min(self.n_jobs, len(tasks))
        n_batches = max(1, min(n_batches, len(tasks)))
        bounds = np.linspace(0, len(tasks), n_batches + 1).astype(int)
        groups = [
            tasks[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        grouped = self.map(
            _run_batch, groups, shared=shared, context=(fn, context)
        )
        return [result for group in grouped for result in group]

    def _dispatch(self, fn, tasks, arrays, context, span_ctx) -> list:
        if self.backend == "serial" or len(tasks) == 1:
            return [fn(task, arrays, context) for task in tasks]
        if self.backend == "thread":
            workers = min(self.n_jobs, len(tasks))

            def call(task):
                if span_ctx is None:
                    return fn(task, arrays, context)
                # contextvars do not flow into pool threads by
                # themselves; adopt the driver's span context so the
                # task's spans re-parent under the map span.
                token = obs_trace.attach(span_ctx)
                try:
                    return fn(task, arrays, context)
                finally:
                    obs_trace.detach(token)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(call, tasks))
        return self._process_map(fn, tasks, arrays, context, span_ctx)

    def _process_map(self, fn, tasks, arrays, context, span_ctx=None) -> list:
        handles = {
            name: SharedNDArray.from_array(array)
            for name, array in arrays.items()
        }
        descriptors = {
            name: handle.descriptor for name, handle in handles.items()
        }
        workers = min(self.n_jobs, len(tasks))
        spec = self._ctx.spec() if self._ctx is not None else None
        handoff = None
        if span_ctx is not None or spec is not None:
            handoff = {
                "trace_id": span_ctx.trace_id if span_ctx else None,
                "parent_id": span_ctx.span_id if span_ctx else None,
                "runtime": spec,
            }
        self._live_handles.extend(handles.values())
        if self._ctx is not None:
            # Custody chain for abnormal exits: a borrowed executor is
            # never shut down by the context, so the context adopts the
            # segments directly — close() reclaims them even when the
            # owning map died mid-flight.
            for handle in handles.values():
                self._ctx.adopt_shm(handle)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(descriptors, fn, context, handoff),
            ) as pool:
                chunksize = max(1, len(tasks) // (workers * 4))
                results = list(
                    pool.map(_worker_call, tasks, chunksize=chunksize)
                )
        finally:
            for handle in handles.values():
                handle.close()
                handle.unlink()
                self._live_handles.remove(handle)
                if self._ctx is not None:
                    self._ctx.release_shm(handle)
        if handoff is None or handoff["trace_id"] is None:
            return results
        # Workers returned (result, spans) pairs; unwrap in task order
        # and absorb the shipped spans into the driver's tracer.
        tracer = obs.get_tracer()
        out = []
        for result, payloads in results:
            out.append(result)
            if tracer is not None:
                tracer.absorb(payloads)
        return out
