"""Shared-memory ndarray transport for process-pool workers.

Pickling a 256^3 float64 field costs ~134 MB of serialization *per
task*; a 25-point sweep would ship it 25 times. :class:`SharedNDArray`
ships it once: the parent copies the array into a
:mod:`multiprocessing.shared_memory` segment, workers attach by name at
pool startup and view it zero-copy for every task they run.

Lifecycle contract: the creating side (``from_array``) owns the segment
and must ``unlink`` it; attaching sides (``attach``) only ``close``.
:class:`~repro.parallel.executor.ParallelExecutor` follows this
contract automatically — user code normally never touches this module
directly, it just passes ``shared={"data": array}`` to ``map``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to attach and rebuild the view."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedNDArray:
    """One ndarray living in a named shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._shape = tuple(int(n) for n in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._closed = False

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedNDArray":
        """Copy ``array`` into a fresh segment (the copy is the only one)."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, array.shape, array.dtype, owner=True)

    @classmethod
    def attach(cls, descriptor: ShmDescriptor) -> "SharedNDArray":
        """Attach to an existing segment created by another process."""
        # Pool workers share the parent's resource tracker (the fd is
        # inherited), so the attach-side register below is an idempotent
        # re-add of the parent's own registration — the segment is
        # unregistered exactly once, by the owner's ``unlink``.
        shm = shared_memory.SharedMemory(name=descriptor.name)
        return cls(shm, descriptor.shape, np.dtype(descriptor.dtype), owner=False)

    @property
    def descriptor(self) -> ShmDescriptor:
        return ShmDescriptor(
            name=self._shm.name, shape=self._shape, dtype=self._dtype.str
        )

    @property
    def nbytes(self) -> int:
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    def asarray(self) -> np.ndarray:
        """A zero-copy ndarray view over the segment.

        The view is only valid while this handle stays open; workers
        keep their handle alive in the pool initializer state.
        """
        if self._closed:
            raise ValueError("shared segment is closed")
        return np.ndarray(self._shape, dtype=self._dtype, buffer=self._shm.buf)

    def close(self) -> None:
        """Unmap the segment from this process (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side only; idempotent)."""
        if self._owner:
            self._owner = False
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()
