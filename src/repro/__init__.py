"""repro — reproduction of FXRZ (ICDE 2023).

A feature-driven fixed-ratio lossy compression framework for scientific
data, with from-scratch implementations of every substrate the paper
relies on: four error-controlled lossy compressors (SZ/ZFP/FPZIP/MGARD
style), entropy coders, ML regressors, synthetic scientific datasets,
the FRaZ baseline and a parallel-dumping model.

Quickstart::

    import repro
    from repro.compressors import get_compressor
    from repro.datasets import paper_training_series, paper_test_series

    train = [s.data for s in paper_training_series("hurricane")[0]]
    test = paper_test_series("hurricane")[0].snapshots[0].data

    fxrz = repro.FXRZ(get_compressor("sz"))
    fxrz.fit(train)
    result = fxrz.compress_to_ratio(test, target_ratio=40.0)
    print(result.measured_ratio, result.estimation_error)
"""

from repro.config import FXRZConfig
from repro.core.pipeline import FXRZ, FixedRatioResult
from repro.core.inference import Estimate
from repro.core.objective import (
    Objective,
    ParetoFrontier,
    PSNRTarget,
    QualityModel,
    RatioTarget,
    SSIMTarget,
    as_objective,
    parse_objective,
)
from repro.core.training import TrainingReport
from repro.baselines.fraz import FRaZ, FRaZResult
from repro.errors import (
    CompressionError,
    CorruptStreamError,
    DatasetError,
    EncodingError,
    ErrorBoundViolation,
    FallbackExhaustedError,
    InvalidConfiguration,
    NotFittedError,
    OutOfDistributionError,
    ReproError,
    RetryExhausted,
    SearchError,
)

# Imported last: repro.runtime pulls in repro.parallel and repro.obs,
# which import repro.errors/config above.
from repro.runtime import RuntimeConfig, RuntimeContext

__version__ = "1.0.0"

__all__ = [
    "FXRZ",
    "FXRZConfig",
    "FixedRatioResult",
    "Estimate",
    "Objective",
    "RatioTarget",
    "PSNRTarget",
    "SSIMTarget",
    "QualityModel",
    "ParetoFrontier",
    "as_objective",
    "parse_objective",
    "TrainingReport",
    "FRaZ",
    "FRaZResult",
    "RuntimeConfig",
    "RuntimeContext",
    "ReproError",
    "EncodingError",
    "CorruptStreamError",
    "CompressionError",
    "ErrorBoundViolation",
    "FallbackExhaustedError",
    "InvalidConfiguration",
    "NotFittedError",
    "OutOfDistributionError",
    "DatasetError",
    "RetryExhausted",
    "SearchError",
    "__version__",
]
