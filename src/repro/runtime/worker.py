"""Process-worker side of RuntimeContext propagation.

The driver's executor ships one ``handoff`` dict to each pool worker
(through the pool initializer). It carries two independent pieces:

* ``trace_id``/``parent_id`` — when the driver traced the map, the
  worker runs a local collecting :class:`~repro.obs.Tracer` and adopts
  the driver's span context, so its spans re-parent under the driver's
  ``parallel.map`` span once shipped back with the results.
* ``runtime`` — the driver context's pickled
  :meth:`~repro.runtime.context.RuntimeContext.spec`, from which the
  worker rebuilds a serial *child* context. Worker code reaches it via
  :func:`repro.runtime.current_context` and derives seeds / reads
  policy exactly as the driver would.

Without a handoff the worker explicitly uninstalls observability: a
fork-spawned worker inherits the driver's module globals, and
recording into an inherited tracer whose spans never travel back would
be silent waste.
"""

from __future__ import annotations

from repro import obs
from repro.obs import trace as obs_trace
from repro.runtime.context import RuntimeContext, _set_worker_context


def attach_worker_runtime(handoff: dict | None):
    """Configure this worker process from the driver's handoff.

    Returns the worker-local tracer when tracing is active, else
    ``None`` (the executor uses this to decide whether task results
    carry span payloads).
    """
    tracer = None
    if handoff is not None and handoff.get("trace_id") is not None:
        tracer = obs_trace.Tracer()
        obs.install(tracer=tracer)
        obs_trace.attach(
            obs_trace.SpanContext(handoff["trace_id"], handoff["parent_id"])
        )
    else:
        obs.uninstall()
        obs_trace.attach(None)
    spec = handoff.get("runtime") if handoff is not None else None
    _set_worker_context(RuntimeContext.from_spec(spec) if spec else None)
    return tracer
