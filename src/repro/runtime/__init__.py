"""Unified runtime session: one seam for every cross-cutting concern.

After the parallel (PR 3), observability (PR 4) and robustness (PR 1)
layers landed, four concerns were re-plumbed ad hoc through every
layer of the library — ``executor=``/``memo=``/``n_jobs=`` for
parallelism, ``obs.install``-style globals plus ``--trace/--metrics``
for observability, fallback/retry knobs for robustness, and seed
threading for determinism. This package folds them into a single
session object:

* :class:`RuntimeConfig` — frozen, layered configuration resolved from
  defaults -> environment (``REPRO_JOBS``, ``REPRO_TRACE``, ...) ->
  optional TOML profile -> explicit overrides.
* :class:`RuntimeContext` — owns the five cross-cutting resources (a
  :class:`~repro.parallel.ParallelExecutor`, a
  :class:`~repro.parallel.CompressionMemoCache`, a
  :class:`~repro.obs.Tracer`, a :class:`~repro.obs.MetricsRegistry`
  and a root :class:`numpy.random.SeedSequence` + robustness policy)
  with a context-manager lifecycle: on exit the pool shuts down,
  stray shared memory is unlinked, the trace exports and metrics
  flush deterministically.
* :func:`add_runtime_args` / :meth:`RuntimeContext.from_args` — one
  shared argparse surface replacing the per-subcommand CLI wiring.
* :func:`current_context` — the child context a process worker
  reconstructs from the driver's pickled spec (spans re-parent and
  seeds derive exactly as the parity tests pin).

Every consumer accepts ``ctx: RuntimeContext | None``; the legacy
``executor=``/``memo=``/``n_jobs=`` keywords keep working through the
deprecation shims in :mod:`repro.runtime.compat`. See
``docs/RUNTIME.md`` for the precedence table and migration notes.
"""

from repro.runtime.args import add_runtime_args, runtime_parent_parser
from repro.runtime.compat import (
    UNSET,
    executor_for_jobs,
    legacy,
    legacy_context,
    reset_deprecation_warnings,
    warn_deprecated,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import RuntimeContext, current_context

__all__ = [
    "RuntimeConfig",
    "RuntimeContext",
    "UNSET",
    "add_runtime_args",
    "current_context",
    "executor_for_jobs",
    "legacy",
    "legacy_context",
    "reset_deprecation_warnings",
    "runtime_parent_parser",
    "warn_deprecated",
]
