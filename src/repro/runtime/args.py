"""Shared argparse surface for the runtime session flags.

Before the runtime layer each CLI subcommand wired its own
``--jobs``/``--trace``/``--metrics``/``--fallback`` copies. The flags
now live in one parent parser; subcommands opt in with
``parents=[runtime_parent_parser()]`` and build their session with
:meth:`repro.runtime.context.RuntimeContext.from_args`.

Every default here is ``None`` (not the resolved value): a flag left
off the command line must fall through to the environment / TOML
profile layers of :meth:`~repro.runtime.config.RuntimeConfig.resolve`.
"""

from __future__ import annotations

import argparse


def add_runtime_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared runtime session flags to ``parser``."""
    group = parser.add_argument_group("runtime")
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker count (1 serial, 0 all CPUs; default from "
        "REPRO_JOBS or 1)",
    )
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans and export them as JSONL to PATH on exit",
    )
    group.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="collect metrics and write Prometheus text to PATH on exit",
    )
    group.add_argument(
        "--fallback",
        choices=("none", "curve", "fraz"),
        default=None,
        help="guarded-inference degradation ladder (default fraz)",
    )
    group.add_argument(
        "--min-confidence",
        type=float,
        default=None,
        metavar="Q",
        help="minimum model confidence before falling back (default 0.5)",
    )
    group.add_argument(
        "--outcome-log",
        default=None,
        metavar="PATH",
        help="append serving outcomes as JSONL to PATH (drives drift "
        "detection and retraining; see docs/LIFECYCLE.md)",
    )
    group.add_argument(
        "--runtime-profile",
        default=None,
        metavar="TOML",
        help="TOML profile with a [runtime] table (overrides REPRO_* env)",
    )


def runtime_parent_parser() -> argparse.ArgumentParser:
    """A fresh ``add_help=False`` parent parser carrying the runtime flags."""
    parent = argparse.ArgumentParser(add_help=False)
    add_runtime_args(parent)
    return parent
