"""Deprecation shims bridging legacy per-layer kwargs to the runtime.

The pre-runtime API threaded ``executor=``, ``memo=`` and ``n_jobs=``
keywords through every layer. Those keywords keep working, but each
public entry point now funnels them through :func:`legacy` (which emits
a :class:`DeprecationWarning` exactly once per process per
``(owner, kwarg)`` pair) and :func:`legacy_context` (which wraps the
legacy resources into a borrowed :class:`~repro.runtime.context.RuntimeContext`
so the inner layers only ever see ``ctx=``).

Internal forwarding between layers never warns: only the boundary the
caller actually touched does.
"""

from __future__ import annotations

import threading
import warnings


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unset>"

    def __bool__(self) -> bool:
        return False


UNSET = _Unset()

_WARNED: set[tuple[str, str]] = set()
_LOCK = threading.Lock()


def warn_deprecated(owner: str, name: str) -> None:
    """Emit the once-per-process DeprecationWarning for ``owner(name=)``."""
    key = (owner, name)
    with _LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(
        f"{owner}: the {name}= keyword is deprecated; pass "
        f"ctx=RuntimeContext(...) instead (see docs/RUNTIME.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which shims already warned (test isolation helper)."""
    with _LOCK:
        _WARNED.clear()


def legacy(owner: str, name: str, value):
    """Normalize a legacy kwarg value, warning when it was actually used.

    Returns ``None`` for :data:`UNSET` and for an explicit ``None``
    (both mean "not provided" to the legacy API); any other value warns
    once and passes through.
    """
    if value is UNSET or value is None:
        return None
    warn_deprecated(owner, name)
    return value


def executor_for_jobs(n_jobs, backend: str = "process"):
    """A ParallelExecutor for a legacy ``n_jobs`` value, or ``None``.

    ``None``/1 mean serial, matching the historical per-layer blocks;
    executors that collapse to serial are discarded.
    """
    from repro.parallel.executor import ParallelExecutor

    if n_jobs is None or n_jobs == 1:
        return None
    executor = ParallelExecutor(n_jobs=n_jobs, backend=backend)
    if executor.backend == "serial":
        return None
    return executor


def legacy_context(base, *, n_jobs=None, memo=None, executor=None):
    """Bridge already-normalized legacy resources into a context.

    ``base`` is the caller's ``ctx`` (possibly ``None``). When no legacy
    value survives normalization the base is returned unchanged; else a
    fresh context is built around the legacy resources, borrowing the
    base's memo/executor where the legacy call did not override them.
    The returned context never reads the environment — legacy callers
    never opted into env/profile resolution.
    """
    if n_jobs is None and memo is None and executor is None:
        return base
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.context import RuntimeContext

    if base is not None:
        jobs = n_jobs if n_jobs is not None else base.config.jobs
        config = base.config.replace(jobs=jobs)
        tracer = base.tracer
        registry = base.registry
        if memo is None:
            memo = base.memo
    else:
        config = RuntimeConfig(jobs=n_jobs if n_jobs is not None else 1)
        tracer = None
        registry = None
    return RuntimeContext(
        config, tracer=tracer, registry=registry, executor=executor, memo=memo
    )
