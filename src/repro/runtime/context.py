"""The runtime session object owning every cross-cutting resource.

A :class:`RuntimeContext` is the single seam through which parallelism,
memoization, tracing, metrics, seeding and robustness policy flow into
the library. Resources are built lazily from the resolved
:class:`~repro.runtime.config.RuntimeConfig` (or injected pre-built),
and the context-manager lifecycle guarantees deterministic teardown:
on exit the executor shuts down (unlinking any stray shared-memory
segments), the trace exports to JSONL, the metrics flush to Prometheus
text, and any process-wide observability install is restored.

Process workers reconstruct a *child* context from the driver's pickled
:meth:`RuntimeContext.spec` (see :mod:`repro.runtime.worker`); inside a
worker :func:`current_context` returns that child, so worker code can
derive seeds and read policy exactly as the driver would.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.errors import InvalidConfiguration
from repro.runtime.config import RuntimeConfig


class RuntimeContext:
    """One session owning the five cross-cutting resources.

    Args:
        config: a pre-resolved :class:`RuntimeConfig`. Mutually
            exclusive with ``profile``/``env``/field overrides.
        tracer: a pre-built :class:`repro.obs.Tracer` to adopt instead
            of building one from ``config.trace``.
        registry: a pre-built :class:`repro.obs.MetricsRegistry` to
            adopt instead of building one from ``config.metrics``.
        executor: a pre-built :class:`repro.parallel.ParallelExecutor`
            to borrow; borrowed executors are not shut down on close.
        memo: a pre-built :class:`repro.parallel.CompressionMemoCache`
            to share instead of lazily creating one.
        outcomes: a pre-built :class:`repro.lifecycle.OutcomeLog` to
            borrow instead of building one from ``config.outcome_log``;
            borrowed logs are not closed on close.
        profile: TOML profile path forwarded to
            :meth:`RuntimeConfig.resolve`.
        env: environment mapping forwarded to
            :meth:`RuntimeConfig.resolve` (tests inject a dict).
        **overrides: explicit :class:`RuntimeConfig` field values
            (``jobs=4``, ``seed=7``, ...); ``None`` means unset.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        *,
        tracer=None,
        registry=None,
        executor=None,
        memo=None,
        outcomes=None,
        profile=None,
        env=None,
        **overrides,
    ) -> None:
        if config is not None:
            if overrides or profile is not None or env is not None:
                raise InvalidConfiguration(
                    "pass either a pre-resolved config or "
                    "profile/env/overrides, not both"
                )
            self.config = config
        else:
            self.config = RuntimeConfig.resolve(profile=profile, env=env, **overrides)
        self._tracer = tracer
        self._registry = registry
        self._executor = executor
        self._owns_executor = executor is None
        self._executor_built = executor is not None
        self._memo = memo
        self._outcomes = outcomes
        self._owns_outcomes = outcomes is None
        self._outcomes_built = outcomes is not None
        self._entered = 0
        self._closed = False
        self._previous_obs = None
        self._shm_lock = threading.Lock()
        self._shm_handles: list = []
        self.exported_spans = 0
        self.teardown_notes: list[str] = []

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        """The session tracer (lazy when ``config.trace`` is set)."""
        if self._tracer is None and self.config.trace:
            self._tracer = obs.Tracer()
        return self._tracer

    @property
    def registry(self):
        """The session metrics registry (lazy when ``config.metrics`` is set)."""
        if self._registry is None and self.config.metrics:
            self._registry = obs.MetricsRegistry()
        return self._registry

    @property
    def executor(self):
        """The session executor, or ``None`` when the config is serial."""
        self._ensure_open("executor")
        if not self._executor_built:
            self._executor_built = True
            if self.config.jobs not in (None, 1):
                from repro.parallel.executor import ParallelExecutor

                executor = ParallelExecutor(
                    n_jobs=self.config.jobs, backend=self.config.backend
                )
                if executor.backend != "serial":
                    executor._ctx = self
                    self._executor = executor
        return self._executor

    @property
    def memo(self):
        """The shared compression memo cache (lazily created once)."""
        self._ensure_open("memo")
        if self._memo is None:
            from repro.parallel.memo import CompressionMemoCache

            self._memo = CompressionMemoCache()
            registry = self.registry
            if registry is not None:
                self._memo.register_metrics(registry)
        return self._memo

    @property
    def lifecycle(self):
        """The session outcome log, or ``None`` when logging is off.

        Built lazily from ``config.outcome_log`` (bound to the session
        metrics registry when one exists). Serving layers that accept
        an ``outcome_log`` argument default to this property, so one
        ``--outcome-log`` flag turns on recording everywhere in the
        session.
        """
        self._ensure_open("lifecycle")
        if not self._outcomes_built:
            self._outcomes_built = True
            if self.config.outcome_log:
                from repro.lifecycle.outcomes import OutcomeLog

                self._outcomes = OutcomeLog(
                    self.config.outcome_log, registry=self.registry
                )
        return self._outcomes

    @property
    def drift_options(self) -> dict:
        """Drift-detector knobs as keyword arguments."""
        return {
            "window": self.config.drift_window,
            "ood_threshold": self.config.drift_ood_threshold,
            "error_threshold": self.config.drift_error_threshold,
            "hysteresis": self.config.drift_hysteresis,
        }

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """A fresh root ``SeedSequence`` over ``config.seed``."""
        return np.random.SeedSequence(self.config.seed)

    def derive_seeds(self, n: int) -> list[int]:
        """``n`` deterministic child seeds of the session master seed."""
        from repro.parallel.executor import derive_seeds

        return derive_seeds(self.config.seed, n)

    @property
    def retry_policy(self):
        """The robustness retry policy built from the config knobs."""
        from repro.robustness.faults import RetryPolicy

        return RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay=self.config.retry_base_delay,
        )

    @property
    def guard_options(self) -> dict:
        """Guarded-inference knobs as keyword arguments."""
        return {
            "fallback": self.config.fallback,
            "min_confidence": self.config.min_confidence,
        }

    @property
    def breaker_options(self) -> dict:
        """Circuit-breaker knobs as keyword arguments."""
        return {
            "failure_threshold": self.config.breaker_failures,
            "reset_seconds": self.config.breaker_reset,
        }

    # ------------------------------------------------------------------
    # shared-memory custody
    # ------------------------------------------------------------------

    def adopt_shm(self, handle) -> None:
        """Register an owned :class:`~repro.parallel.SharedNDArray`.

        Adopted segments are unlinked during :meth:`close`, so a
        segment whose owning map or shard died mid-flight is still
        reclaimed at session teardown instead of leaking in
        ``/dev/shm``. A segment adopted after close is unlinked
        immediately.
        """
        with self._shm_lock:
            if not self._closed:
                self._shm_handles.append(handle)
                return
        handle.close()
        handle.unlink()

    def release_shm(self, handle) -> None:
        """Drop custody of ``handle`` (its owner unlinked it itself)."""
        with self._shm_lock:
            try:
                self._shm_handles.remove(handle)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self, what: str) -> None:
        if self._closed:
            raise InvalidConfiguration(
                f"cannot use {what} of a closed RuntimeContext"
            )

    def __enter__(self) -> "RuntimeContext":
        self._ensure_open("context")
        if self._entered == 0 and (
            self.tracer is not None or self.registry is not None
        ):
            self._previous_obs = (obs.get_tracer(), obs.get_registry())
            obs.install(tracer=self.tracer, registry=self.registry)
        self._entered += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Tear down deterministically; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._owns_executor and self._executor is not None:
                self._executor.shutdown()
            with self._shm_lock:
                leftovers, self._shm_handles = self._shm_handles, []
            for handle in leftovers:
                try:
                    handle.close()
                    handle.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            if leftovers:
                self.teardown_notes.append(
                    f"unlinked {len(leftovers)} leftover shared-memory "
                    "segment(s)"
                )
            if self._tracer is not None and self.config.trace:
                count = self._tracer.export_jsonl(self.config.trace)
                self.exported_spans = count
                self.teardown_notes.append(
                    f"wrote {count} span(s) to {self.config.trace}"
                )
            if self._owns_outcomes and self._outcomes is not None:
                written = self._outcomes.records_written
                self._outcomes.close()
                self.teardown_notes.append(
                    f"closed outcome log {self.config.outcome_log} "
                    f"({written} record(s) this session)"
                )
            if self._registry is not None and self.config.metrics:
                with open(self.config.metrics, "w", encoding="utf-8") as handle:
                    handle.write(self._registry.render_prometheus())
                self.teardown_notes.append(
                    f"wrote metrics to {self.config.metrics}"
                )
        finally:
            if self._previous_obs is not None:
                obs.install(*self._previous_obs)
                self._previous_obs = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_args(cls, args, env=None) -> "RuntimeContext":
        """Build a context from argparse ``args`` (see ``add_runtime_args``).

        Parser defaults are ``None`` so env/profile values from the
        lower layers still apply when a flag is not given on the
        command line.
        """

        def pick(name):
            value = getattr(args, name, None)
            return value if value != "" else None

        return cls(
            profile=pick("runtime_profile"),
            env=env,
            jobs=pick("jobs"),
            trace=pick("trace"),
            metrics=pick("metrics"),
            seed=pick("seed"),
            fallback=pick("fallback"),
            min_confidence=pick("min_confidence"),
            outcome_log=pick("outcome_log"),
        )

    # ------------------------------------------------------------------
    # worker propagation
    # ------------------------------------------------------------------

    def spec(self) -> dict:
        """A picklable spec workers rebuild a child context from.

        The child is forced serial (workers never nest pools) and
        carries no export paths — worker spans ship back to the driver
        through the executor instead of writing files. ``outcome_log``
        is deliberately dropped too: the log is single-writer, so
        forked shard workers must never append to the parent's file
        (the supervisor records shard outcomes parent-side instead).
        """
        return {
            "jobs": 1,
            "backend": "serial",
            "trace": "",
            "metrics": "",
            "seed": self.config.seed,
            "fallback": self.config.fallback,
            "min_confidence": self.config.min_confidence,
            "retry_attempts": self.config.retry_attempts,
            "retry_base_delay": self.config.retry_base_delay,
            "breaker_failures": self.config.breaker_failures,
            "breaker_reset": self.config.breaker_reset,
            "deadline": self.config.deadline,
            "outcome_log": "",
            "drift_window": self.config.drift_window,
            "drift_ood_threshold": self.config.drift_ood_threshold,
            "drift_error_threshold": self.config.drift_error_threshold,
            "drift_hysteresis": self.config.drift_hysteresis,
            "retrain_min_samples": self.config.retrain_min_samples,
            "canary_fraction": self.config.canary_fraction,
            "canary_margin": self.config.canary_margin,
            # Children never run a scrape server of their own; the
            # parent's endpoint is the single operator surface.
            "scrape_port": -1,
            "trace_sample": self.config.trace_sample,
            "slo_availability": self.config.slo_availability,
            "slo_p99_ms": self.config.slo_p99_ms,
            "slo_calibration_error": self.config.slo_calibration_error,
            "slo_window": self.config.slo_window,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "RuntimeContext":
        """Reconstruct the child context a worker runs under."""
        return cls(RuntimeConfig(**spec))


_WORKER_CONTEXT: RuntimeContext | None = None


def current_context() -> RuntimeContext | None:
    """The child context of the current process worker, if any."""
    return _WORKER_CONTEXT


def _set_worker_context(ctx: RuntimeContext | None) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ctx
