"""Layered runtime configuration.

A :class:`RuntimeConfig` is resolved through four layers, later layers
winning:

1. **defaults** — the dataclass field defaults below;
2. **environment** — ``REPRO_<FIELD>`` variables (``REPRO_JOBS``,
   ``REPRO_TRACE``, ``REPRO_METRICS``, ``REPRO_SEED``,
   ``REPRO_FALLBACK``, ``REPRO_MIN_CONFIDENCE``, ...);
3. **TOML profile** — a file passed explicitly or named by
   ``REPRO_PROFILE``, holding a ``[runtime]`` table;
4. **explicit overrides** — keyword arguments to :meth:`resolve` (or
   to :class:`~repro.runtime.context.RuntimeContext`), where ``None``
   means "unset, fall through to the lower layers".

Each resolved field remembers which layer supplied it in
:attr:`RuntimeConfig.provenance`, so tooling (and the tests) can
explain where a value came from.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from dataclasses import dataclass, field

from repro.config import DEFAULT_SEED
from repro.errors import InvalidConfiguration

_ENV_PREFIX = "REPRO_"
_PROFILE_ENV = "REPRO_PROFILE"
_PROFILE_TABLE = "runtime"

_BACKENDS = ("auto", "serial", "thread", "process")
_FALLBACKS = ("none", "curve", "fraz")


@dataclass(frozen=True)
class RuntimeConfig:
    """Frozen knobs of one runtime session.

    Attributes:
        jobs: worker count for the parallel executor (1 = serial,
            0 = all CPUs, negatives count back joblib-style).
        backend: executor backend (``auto``/``serial``/``thread``/
            ``process``).
        trace: JSONL span-log path the context exports on close
            (empty = tracing stays off unless a tracer is injected).
        metrics: Prometheus-text path the context flushes on close
            (empty = metrics stay off unless a registry is injected).
        seed: master seed of the context's root ``SeedSequence``;
            worker child contexts derive per-task seeds from it.
        fallback: terminal rung of the guarded-inference ladder.
        min_confidence: model-tier acceptance threshold in [0, 1].
        retry_attempts: attempt budget of the context retry policy
            (also the shard respawn budget of the sharded service).
        retry_base_delay: base backoff delay of the retry policy.
        breaker_failures: consecutive shard failures that trip a
            serving circuit breaker from closed to open.
        breaker_reset: seconds an open breaker waits before letting a
            half-open probe request through.
        deadline: default per-request deadline in seconds for the
            serving layer (0 = no deadline).
        outcome_log: JSONL path the session's serving outcomes append
            to (empty = outcome logging stays off unless a log is
            injected).
        drift_window: rolling-window length of the drift detector.
        drift_ood_threshold: window OOD fraction that marks an
            observation hot, in (0, 1].
        drift_error_threshold: calibration-error EWMA that marks an
            observation hot.
        drift_hysteresis: consecutive hot (cool) observations required
            to enter (leave) the drifting state.
        retrain_min_samples: fresh trainable outcomes that trigger a
            background retrain on volume alone.
        canary_fraction: most-recent fraction of trainable outcomes
            held out for the canary replay, in (0, 1).
        canary_margin: fractional median-error improvement a candidate
            must show to be promoted, in [0, 1).
        scrape_port: TCP port of the sharded service's embedded
            observability endpoint (``/metrics``, ``/healthz``,
            ``/slo``, ``/spans``); 0 picks an ephemeral port, -1
            disables the server.
        trace_sample: fraction of sharded requests that get a
            distributed trace, in [0, 1] (1 = trace everything; only
            meaningful when a tracer is installed at all).
        slo_availability: availability SLO objective (good-request
            fraction) in (0, 1].
        slo_p99_ms: p99 latency SLO threshold, milliseconds.
        slo_calibration_error: calibration-error EWMA the model SLO
            tolerates before alerting.
        slo_window: rolling SLO evaluation window, seconds.
        provenance: ``field -> layer`` map ("default"/"env"/"profile"/
            "override"); informational, excluded from equality.
    """

    jobs: int = 1
    backend: str = "auto"
    trace: str = ""
    metrics: str = ""
    seed: int = DEFAULT_SEED
    fallback: str = "fraz"
    min_confidence: float = 0.5
    retry_attempts: int = 4
    retry_base_delay: float = 0.5
    breaker_failures: int = 5
    breaker_reset: float = 30.0
    deadline: float = 0.0
    outcome_log: str = ""
    drift_window: int = 256
    drift_ood_threshold: float = 0.5
    drift_error_threshold: float = 0.25
    drift_hysteresis: int = 3
    retrain_min_samples: int = 64
    canary_fraction: float = 0.25
    canary_margin: float = 0.0
    scrape_port: int = -1
    trace_sample: float = 1.0
    slo_availability: float = 0.999
    slo_p99_ms: float = 250.0
    slo_calibration_error: float = 0.25
    slo_window: float = 300.0
    provenance: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise InvalidConfiguration(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.fallback not in _FALLBACKS:
            raise InvalidConfiguration(
                f"fallback must be one of {_FALLBACKS}, got {self.fallback!r}"
            )
        if not 0.0 <= self.min_confidence <= 1.0:
            raise InvalidConfiguration("min_confidence must be in [0, 1]")
        if self.retry_attempts < 1:
            raise InvalidConfiguration("retry_attempts must be >= 1")
        if self.retry_base_delay < 0:
            raise InvalidConfiguration("retry_base_delay must be >= 0")
        if self.breaker_failures < 1:
            raise InvalidConfiguration("breaker_failures must be >= 1")
        if self.breaker_reset < 0:
            raise InvalidConfiguration("breaker_reset must be >= 0")
        if self.deadline < 0:
            raise InvalidConfiguration("deadline must be >= 0")
        if self.drift_window < 1:
            raise InvalidConfiguration("drift_window must be >= 1")
        if not 0.0 < self.drift_ood_threshold <= 1.0:
            raise InvalidConfiguration(
                "drift_ood_threshold must be in (0, 1]"
            )
        if self.drift_error_threshold <= 0:
            raise InvalidConfiguration("drift_error_threshold must be > 0")
        if self.drift_hysteresis < 1:
            raise InvalidConfiguration("drift_hysteresis must be >= 1")
        if self.retrain_min_samples < 1:
            raise InvalidConfiguration("retrain_min_samples must be >= 1")
        if not 0.0 < self.canary_fraction < 1.0:
            raise InvalidConfiguration("canary_fraction must be in (0, 1)")
        if not 0.0 <= self.canary_margin < 1.0:
            raise InvalidConfiguration("canary_margin must be in [0, 1)")
        if not -1 <= self.scrape_port <= 65535:
            raise InvalidConfiguration(
                "scrape_port must be -1 (off), 0 (ephemeral) or a TCP port"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise InvalidConfiguration("trace_sample must be in [0, 1]")
        if not 0.0 < self.slo_availability <= 1.0:
            raise InvalidConfiguration("slo_availability must be in (0, 1]")
        if self.slo_p99_ms <= 0:
            raise InvalidConfiguration("slo_p99_ms must be > 0")
        if self.slo_calibration_error <= 0:
            raise InvalidConfiguration("slo_calibration_error must be > 0")
        if self.slo_window <= 0:
            raise InvalidConfiguration("slo_window must be > 0")

    def replace(self, **changes) -> "RuntimeConfig":
        """A copy with ``changes`` applied (provenance marks them)."""
        provenance = dict(self.provenance)
        for name in changes:
            provenance[name] = "override"
        return dataclasses.replace(self, provenance=provenance, **changes)

    @classmethod
    def resolve(
        cls,
        profile: str | os.PathLike | None = None,
        env: dict | None = None,
        **overrides,
    ) -> "RuntimeConfig":
        """Resolve defaults -> env -> TOML profile -> overrides.

        Args:
            profile: TOML profile path; defaults to ``$REPRO_PROFILE``.
            env: environment mapping (defaults to ``os.environ``;
                tests inject a dict).
            **overrides: explicit field values; ``None`` means unset.
        """
        env = os.environ if env is None else env
        fields = {
            f.name: f.default
            for f in dataclasses.fields(cls)
            if f.name != "provenance"
        }
        values = dict(fields)
        provenance = {name: "default" for name in values}
        for name in values:
            raw = env.get(_ENV_PREFIX + name.upper())
            if raw is not None:
                values[name] = _coerce(
                    name,
                    raw,
                    f"environment variable {_ENV_PREFIX}{name.upper()}",
                )
                provenance[name] = "env"
        path = profile if profile is not None else env.get(_PROFILE_ENV) or None
        if path:
            for name, value in _load_profile(path).items():
                values[name] = value
                provenance[name] = "profile"
        for name, value in overrides.items():
            if name not in values:
                raise InvalidConfiguration(
                    f"unknown runtime option {name!r} "
                    f"(known: {', '.join(sorted(values))})"
                )
            if value is None:
                continue
            values[name] = _coerce(name, value, f"override {name!r}")
            provenance[name] = "override"
        return cls(provenance=provenance, **values)


def _coerce(name: str, value, source: str):
    """Parse ``value`` into the field's type, blaming ``source``."""
    target = {
        "jobs": int,
        "backend": str,
        "trace": str,
        "metrics": str,
        "seed": int,
        "fallback": str,
        "min_confidence": float,
        "retry_attempts": int,
        "retry_base_delay": float,
        "breaker_failures": int,
        "breaker_reset": float,
        "deadline": float,
        "outcome_log": str,
        "drift_window": int,
        "drift_ood_threshold": float,
        "drift_error_threshold": float,
        "drift_hysteresis": int,
        "retrain_min_samples": int,
        "canary_fraction": float,
        "canary_margin": float,
        "scrape_port": int,
        "trace_sample": float,
        "slo_availability": float,
        "slo_p99_ms": float,
        "slo_calibration_error": float,
        "slo_window": float,
    }[name]
    try:
        if target is str:
            if not isinstance(value, str):
                raise ValueError(f"expected a string, got {type(value).__name__}")
            return value
        return target(value)
    except (TypeError, ValueError) as exc:
        raise InvalidConfiguration(
            f"{source}: cannot read {value!r} as {name} ({exc})"
        ) from exc


def _load_profile(path: str | os.PathLike) -> dict:
    """The ``[runtime]`` table of a TOML profile, values coerced."""
    import tomllib

    profile_path = pathlib.Path(path)
    try:
        with open(profile_path, "rb") as handle:
            document = tomllib.load(handle)
    except OSError as exc:
        raise InvalidConfiguration(
            f"cannot read runtime profile {profile_path}: {exc}"
        ) from exc
    except tomllib.TOMLDecodeError as exc:
        raise InvalidConfiguration(
            f"invalid TOML in runtime profile {profile_path}: {exc}"
        ) from exc
    table = document.get(_PROFILE_TABLE, {})
    if not isinstance(table, dict):
        raise InvalidConfiguration(
            f"runtime profile {profile_path}: [runtime] must be a table"
        )
    known = {
        f.name for f in dataclasses.fields(RuntimeConfig) if f.name != "provenance"
    }
    out = {}
    for name, value in table.items():
        if name not in known:
            raise InvalidConfiguration(
                f"runtime profile {profile_path}: unknown option {name!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        out[name] = _coerce(name, value, f"profile {profile_path}")
    return out
