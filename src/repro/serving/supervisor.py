"""Fault-tolerant sharded estimation serving.

:class:`ShardedEstimationService` runs N worker-process shards (see
:mod:`repro.serving.shard`), each holding a warm model replica, behind
a supervisor that keeps the service answering through crashes, hangs
and overload:

* **Backpressure** — admission goes through a bounded queue; a full
  queue sheds the request immediately with
  :class:`~repro.errors.ServiceOverloadedError` carrying a
  ``retry_after`` hint instead of building an unbounded backlog.
* **Deadlines** — every request may carry one; an expired request is
  failed with :class:`~repro.errors.DeadlineExceededError` wherever it
  happens to be (queued, piped, in flight), never served late into a
  future nobody is waiting on.
* **Supervision** — a monitor thread health-checks each shard through
  heartbeat/busy timestamps and process liveness, kills wedged shards,
  and respawns dead ones on the
  :class:`~repro.robustness.faults.RetryPolicy` backoff schedule while
  their in-flight requests are redistributed to surviving shards.
* **Circuit breaking** — each shard sits behind a
  :class:`CircuitBreaker` (closed → open → half-open); a tripped
  shard's traffic routes to the remaining shards or, when none can
  take it, down the PR-1 degradation ladder (model → curve → FRaZ) run
  in-process — degraded answers instead of failures.

The invariant the chaos tests pin down: **every admitted request's
future resolves** — with a result, a typed error, or a deadline — no
matter which shards die when. Resolution is single-owner by
construction: whichever thread pops a request from the live table is
the one that resolves its future; late replies from killed shards find
the table empty and are counted, not raised.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import multiprocessing
import os
import queue
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from multiprocessing import connection, resource_tracker

import numpy as np

from repro import obs
from repro.core.persistence import save_pipeline
from repro.obs.trace import Span, SpanContext, _new_id
from repro.errors import (
    DeadlineExceededError,
    InvalidConfiguration,
    NotFittedError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
)
from repro.parallel.shm import SharedNDArray
from repro.robustness.faults import RetryPolicy, backoff_schedule
from repro.core.objective import Objective, RatioTarget
from repro.serving.cache import dataset_fingerprint
from repro.serving.metrics import MetricsRecorder, MetricsSnapshot
from repro.serving.service import (
    EstimateRequest,
    ServedEstimate,
    resolved_objective,
)
from repro.serving.shard import shard_main

#: Shard lifecycle states.
STARTING = "starting"
READY = "ready"
DEAD = "dead"      # awaiting respawn
FAILED = "failed"  # respawn budget exhausted; permanently out
STOPPED = "stopped"


class CircuitBreaker:
    """Per-shard failure gate: closed → open → half-open → closed.

    Consecutive *infrastructure* failures (crashes, hang kills — never
    request-level engine errors) trip the breaker open; after
    ``reset_seconds`` one probe request is allowed through
    (half-open). The probe's success closes the breaker, its failure
    reopens it for another full reset window.

    Thread-safe; all transitions happen under an internal lock.
    """

    def __init__(
        self, failure_threshold: int = 5, reset_seconds: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise InvalidConfiguration("failure_threshold must be >= 1")
        if reset_seconds < 0:
            raise InvalidConfiguration("reset_seconds must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.reset_seconds:
                return "half-open"
            return "open"

    def would_allow(self) -> bool:
        """Whether a request *could* pass now, without consuming the probe."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # probe already in flight
            return time.monotonic() - self._opened_at >= self.reset_seconds

    def allow(self) -> bool:
        """Admit one request; consumes the half-open probe slot."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False
            if time.monotonic() - self._opened_at >= self.reset_seconds:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()
                self._probing = False

    def retry_after(self) -> float:
        """Seconds until the next probe may pass (0 when passable now)."""
        with self._lock:
            if self._opened_at is None or self._probing is False and (
                time.monotonic() - self._opened_at >= self.reset_seconds
            ):
                return 0.0
            return max(
                0.0,
                self.reset_seconds - (time.monotonic() - self._opened_at),
            )


@dataclass(frozen=True)
class SupervisorStats:
    """Counters describing what supervision did (snapshot, immutable).

    Attributes:
        admitted: requests accepted past the admission queue.
        completed: futures resolved with a result (any tier).
        failed: futures resolved with an engine/fallback error.
        shed: submissions rejected by backpressure.
        expired: requests failed on their deadline.
        redelivered: in-flight requests redistributed off dead shards.
        fallbacks: requests answered by the in-process degradation
            ladder because no shard could take them.
        respawns: shard processes restarted after death.
        kills: shards the supervisor killed (hangs, lost heartbeats).
        late_replies: replies from shards for requests already resolved
            elsewhere (deadline, redelivery) — counted, never raised.
    """

    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    expired: int = 0
    redelivered: int = 0
    fallbacks: int = 0
    respawns: int = 0
    kills: int = 0
    late_replies: int = 0


@dataclass
class _Inflight:
    seq: int
    request: EstimateRequest
    future: Future
    dataset_key: str
    descriptor: object
    submitted: float
    deadline: float | None
    request_id: str
    shard: int = -1
    redeliveries: int = 0
    # Distributed-tracing state: the request span's own coordinates
    # (``trace``), the span it parents under (``parent_span``; None for
    # a root trace), and the wall-clock admit instant the request span
    # starts at. ``generation`` is the incarnation of the last shard
    # this request was dispatched to.
    trace: SpanContext | None = None
    parent_span: int | None = None
    start_unix: float = 0.0
    generation: int = -1
    objective: Objective | None = None


class _ShardSlot:
    """Mutable supervisor-side record of one shard index."""

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.breaker = breaker
        self.generation = 0
        self.state = DEAD
        self.process = None
        self.req_conn = None  # parent write end
        self.res_conn = None  # parent read end
        self.beat = None
        self.busy = None
        self.inflight: set[int] = set()
        self.strikes = 0       # consecutive deaths without reaching READY
        self.respawn_at = 0.0
        self.started_at = 0.0
        self.last_death_reason = ""


class ShardedEstimationService:
    """Supervised multi-process estimation service.

    Args:
        pipeline: a fitted :class:`~repro.core.pipeline.FXRZ`; the
            parent keeps it for the degradation-ladder fallback while
            each shard loads its own warm replica from ``model_path``.
        shards: worker-process count.
        queue_depth: admission-queue bound; beyond it submissions shed
            with :class:`~repro.errors.ServiceOverloadedError`.
        model_path: serialized pipeline the shards load. ``None`` saves
            ``pipeline`` to a temporary file owned (and deleted) by the
            service.
        guarded: shards serve through the guarded engine (degradation
            ladder inside the shard) instead of the plain one.
        guard_options: forwarded to :meth:`FXRZ.guarded` in each shard
            and in the parent fallback engine.
        default_deadline: deadline applied to requests without their
            own ``deadline_seconds``; ``None`` resolves from the
            context's :attr:`RuntimeConfig.deadline` (0 = none).
        max_inflight_per_shard: dispatch cap per shard, so queueing
            happens in the supervisor (where it can shed and expire)
            rather than invisibly inside shard pipes.
        max_redeliveries: how many times one request may be
            redistributed off dead shards before it is answered by the
            fallback ladder instead (the poison-request escape hatch).
        heartbeat_timeout: an *idle* shard whose beat is older than
            this is presumed wedged and killed.
        hang_timeout: a *busy* shard serving one request for longer
            than this is killed (its requests redistribute).
        hang_grace: extra seconds past a busy request's own deadline
            before the shard holding it is declared hung.
        retry_policy: backoff schedule for shard respawns; defaults to
            the context's policy. ``max_attempts`` bounds *consecutive
            failed spawns* — a shard that keeps dying before reaching
            readiness is marked failed and taken out of rotation.
        faults: optional :class:`~repro.robustness.faults.FaultSpec`
            with serving faults, injected inside the shards (chaos
            harness).
        fallback: whether the in-process degradation ladder backstops
            requests no shard can take; ``False`` fails them with
            :class:`~repro.errors.ShardFailedError` instead.
        breaker_options: ``failure_threshold``/``reset_seconds`` for
            the per-shard breakers; defaults to the context's
            :attr:`RuntimeContext.breaker_options`.
        poll_interval: monitor/dispatcher tick.
        trace_sample: fraction of requests traced end to end when a
            tracer is available, in [0, 1]; defaults to the context's
            :attr:`RuntimeConfig.trace_sample` (1.0 without a context).
            Sampling is deterministic in the admission sequence number,
            so reruns trace the same requests.
        scrape_port: when >= 0, start the embedded observability
            endpoint (``/metrics``, ``/healthz``, ``/slo``, ``/spans``)
            on this port (0 = ephemeral; read :attr:`scrape_url`).
            Defaults to the context's :attr:`RuntimeConfig.scrape_port`
            (-1 = off without a context).
        ctx: a :class:`~repro.runtime.RuntimeContext`; supplies config
            defaults, adopts the shared-memory segments, and its spec
            seeds each shard's child context.
        outcome_log: a :class:`~repro.lifecycle.OutcomeLog` the
            supervisor records completions to, **parent-side only** —
            shard estimates travel back over the reply pipe and are
            recorded here, never by the forked workers themselves, so
            the JSONL log has exactly one writer (the shard child
            contexts drop ``outcome_log`` in
            :meth:`~repro.runtime.context.RuntimeContext.spec`).
            ``None`` defaults to the context's
            :attr:`RuntimeContext.lifecycle`.
    """

    def __init__(
        self,
        pipeline,
        *,
        shards: int = 2,
        queue_depth: int = 64,
        model_path=None,
        guarded: bool = True,
        guard_options: dict | None = None,
        default_deadline: float | None = None,
        max_inflight_per_shard: int = 4,
        max_redeliveries: int = 2,
        heartbeat_timeout: float = 5.0,
        hang_timeout: float = 10.0,
        hang_grace: float = 0.5,
        retry_policy: RetryPolicy | None = None,
        faults=None,
        fallback: bool = True,
        breaker_options: dict | None = None,
        poll_interval: float = 0.02,
        latency_window: int = 4096,
        max_datasets: int = 64,
        trace_sample: float | None = None,
        scrape_port: int | None = None,
        ctx=None,
        outcome_log=None,
    ) -> None:
        if not pipeline.is_fitted:
            raise NotFittedError("sharded serving needs a fitted pipeline")
        if shards < 1:
            raise InvalidConfiguration("shards must be >= 1")
        if queue_depth < 1:
            raise InvalidConfiguration("queue_depth must be >= 1")
        if max_inflight_per_shard < 1:
            raise InvalidConfiguration("max_inflight_per_shard must be >= 1")
        if max_redeliveries < 0:
            raise InvalidConfiguration("max_redeliveries must be >= 0")
        self.pipeline = pipeline
        self.ctx = ctx
        if outcome_log is None and ctx is not None:
            outcome_log = ctx.lifecycle
        self.outcome_log = outcome_log
        self.n_shards = int(shards)
        self.queue_depth = int(queue_depth)
        self.max_inflight_per_shard = int(max_inflight_per_shard)
        self.max_redeliveries = int(max_redeliveries)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.hang_timeout = float(hang_timeout)
        self.hang_grace = float(hang_grace)
        self.poll_interval = float(poll_interval)
        self.max_datasets = int(max_datasets)
        self.faults = faults
        self._fallback_enabled = bool(fallback)
        if default_deadline is None and ctx is not None:
            configured = float(getattr(ctx.config, "deadline", 0.0))
            default_deadline = configured if configured > 0 else None
        if default_deadline is not None and default_deadline <= 0:
            raise InvalidConfiguration("default_deadline must be positive")
        self.default_deadline = default_deadline
        if retry_policy is None:
            retry_policy = (
                ctx.retry_policy if ctx is not None else RetryPolicy()
            )
        self.retry_policy = retry_policy
        if breaker_options is None:
            breaker_options = (
                dict(ctx.breaker_options)
                if ctx is not None
                else {"failure_threshold": 5, "reset_seconds": 30.0}
            )
        self._breaker_options = breaker_options
        if trace_sample is None:
            trace_sample = (
                float(ctx.config.trace_sample) if ctx is not None else 1.0
            )
        if not 0.0 <= trace_sample <= 1.0:
            raise InvalidConfiguration("trace_sample must be in [0, 1]")
        self.trace_sample = float(trace_sample)
        if scrape_port is None:
            scrape_port = (
                int(ctx.config.scrape_port) if ctx is not None else -1
            )
        if not -1 <= int(scrape_port) <= 65535:
            raise InvalidConfiguration(
                "scrape_port must be -1 (off), 0 (ephemeral) or a TCP port"
            )

        self._owns_model = model_path is None
        if model_path is None:
            fd, model_path = tempfile.mkstemp(
                prefix="fxrz-shard-", suffix=".fxrz"
            )
            os.close(fd)
            save_pipeline(pipeline, model_path)
        self.model_path = str(model_path)

        guard_opts = dict(guard_options or {})
        guard_opts.pop("ctx", None)
        self._shard_spec = {
            "runtime": ctx.spec() if ctx is not None else None,
            "model_path": self.model_path,
            "guarded": bool(guarded),
            "guard_options": guard_opts,
            "faults": faults,
            # Shards run a local tracer only when the parent has a sink
            # to absorb their spans into (and tracing is not sampled
            # fully off).
            "trace": self._trace_sink() is not None
            and self.trace_sample > 0.0,
        }
        # The fallback rung runs in the parent, so it always terminates
        # in FRaZ — it is the last line of defense, not a mirror of the
        # shard's (possibly weaker) ladder.
        self._fallback_engine = (
            pipeline.guarded(ctx=ctx, **{**guard_opts, "fallback": "fraz"})
            if self._fallback_enabled
            else None
        )
        self._fallback_analyses: dict[str, object] = {}
        self._fallback_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="fxrz-fallback"
        )

        self._mp = multiprocessing.get_context("fork")
        registry = ctx.registry if ctx is not None else obs.get_registry()
        if registry is None and int(scrape_port) >= 0:
            # A scrape endpoint needs something behind /metrics: when
            # neither the context nor the ambient install provides a
            # registry, the service owns one.
            registry = obs.MetricsRegistry()
        self._registry = registry
        self._metrics = MetricsRecorder(
            latency_window=latency_window, registry=registry
        )
        self._stats = SupervisorStats()
        self._ewma_latency = 0.05
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._live: dict[int, _Inflight] = {}
        self._admit: queue.Queue[_Inflight] = queue.Queue(maxsize=queue_depth)
        self._redeliver: deque[_Inflight] = deque()
        self._segments: dict[str, SharedNDArray] = {}
        self._closed = False
        self._stop = threading.Event()
        self._backoff_rng = np.random.default_rng(
            ctx.config.seed if ctx is not None else 0
        )
        self.slots = [
            _ShardSlot(i, CircuitBreaker(**breaker_options))
            for i in range(self.n_shards)
        ]
        self._bind_gauges(registry)
        for slot in self.slots:
            self._spawn(slot)
        self._threads = [
            threading.Thread(
                target=target, daemon=True, name=f"fxrz-supervisor-{name}"
            )
            for name, target in (
                ("dispatch", self._dispatcher),
                ("collect", self._collector),
                ("monitor", self._monitor),
            )
        ]
        for thread in self._threads:
            thread.start()
        self._ts_buffer = None
        self._slo_tracker = None
        self._obs_server = None
        if int(scrape_port) >= 0:
            self._start_telemetry(int(scrape_port), registry)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_pipeline(cls, pipeline, **options) -> "ShardedEstimationService":
        """A sharded service over a fitted pipeline (temp model file)."""
        if "ctx" not in options:
            options["ctx"] = getattr(pipeline, "ctx", None)
        return cls(pipeline, **options)

    @classmethod
    def for_registry(
        cls,
        registry,
        compressor: str,
        fingerprint: str | None = None,
        version="latest",
        **options,
    ) -> "ShardedEstimationService":
        """A sharded service over a registry-published model.

        The shards load the published artifact directly — no temp copy
        — and the parent keeps the registry-warm pipeline for the
        fallback ladder.
        """
        coordinate = registry.resolve(compressor, fingerprint, version)
        pipeline = registry.load(
            coordinate.compressor, coordinate.fingerprint, coordinate.version
        )
        return cls(pipeline, model_path=coordinate.path, **options)

    # -- client API ------------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Future:
        """Admit one request; the future resolves to a :class:`ServedEstimate`.

        Raises:
            ServiceOverloadedError: the admission queue is full.
            ServiceClosedError: the service was closed.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "sharded estimation service is closed; "
                    "no new requests accepted"
                )
        relative = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.default_deadline
        )
        if relative is not None and relative <= 0:
            raise InvalidConfiguration("deadline_seconds must be positive")
        objective = resolved_objective(request)  # validates at admission
        key = self._dataset_key(request)
        descriptor = self._segment_for(key, request.data).descriptor
        now = time.monotonic()
        inf = _Inflight(
            seq=next(self._seq),
            request=request,
            future=Future(),
            dataset_key=key,
            descriptor=descriptor,
            submitted=now,
            deadline=None if relative is None else now + relative,
            request_id=request.request_id or f"req-{next(self._ids)}",
            objective=objective,
        )
        if self._trace_sink() is not None and self._sampled(inf.seq):
            # Join the caller's trace (explicit on the request, or the
            # ambient context) or start a new root one; the request
            # span itself is closed at resolution time.
            parent = (
                request.trace
                if request.trace is not None
                else obs.current_context()
            )
            inf.trace = SpanContext(
                parent.trace_id if parent is not None else _new_id(),
                _new_id(),
            )
            inf.parent_span = parent.span_id if parent is not None else None
            inf.start_unix = time.time()
        with self._lock:
            # Re-checked here atomically with the insertion: a close
            # racing this submit either sees the entry (and rejects it
            # in its leftover sweep) or we see the flag and refuse.
            if self._closed:
                raise ServiceClosedError(
                    "sharded estimation service is closed; "
                    "no new requests accepted"
                )
            self._live[inf.seq] = inf
        try:
            self._admit.put_nowait(inf)
        except queue.Full:
            with self._lock:
                self._live.pop(inf.seq, None)
                self._stats = replace(self._stats, shed=self._stats.shed + 1)
            raise ServiceOverloadedError(
                f"admission queue full ({self.queue_depth} deep); "
                "request shed",
                retry_after=self._retry_after_hint(),
            ) from None
        with self._lock:
            self._stats = replace(
                self._stats, admitted=self._stats.admitted + 1
            )
        if inf.trace is not None:
            self._trace_event(
                "supervisor.admit",
                trace=inf.trace,
                request_id=inf.request_id,
                queue_depth=self._admit.qsize(),
            )
        return inf.future

    def submit_many(self, requests: list[EstimateRequest]) -> list[Future]:
        return [self.submit(request) for request in requests]

    def run_batch(
        self, requests: list[EstimateRequest], timeout: float | None = None
    ) -> list[ServedEstimate]:
        """Submit ``requests`` and wait for every result, in order."""
        results = []
        for future in self.submit_many(requests):
            try:
                results.append(future.result(timeout=timeout))
            except FuturesTimeoutError as exc:
                raise DeadlineExceededError(
                    f"no result within {timeout:.3f}s wait budget"
                ) from exc
        return results

    def estimate(
        self, data, target_ratio: float | None = None, *, objective=None
    ) -> ServedEstimate:
        """Synchronous single-request convenience."""
        if objective is not None:
            request = EstimateRequest(data=data, objective=objective)
        else:
            request = EstimateRequest(
                data=data, target_ratio=float(target_ratio)
            )
        return self.submit(request).result()

    @property
    def metrics(self) -> MetricsSnapshot:
        """Latency/tier counters, same shape as :class:`EstimationService`."""
        return self._metrics.snapshot()

    @property
    def stats(self) -> SupervisorStats:
        """A frozen snapshot of the supervision counters."""
        with self._lock:
            return self._stats

    def shard_states(self) -> list[dict]:
        """Per-shard view: state, generation, breaker, inflight depth."""
        with self._lock:
            return [
                {
                    "shard": slot.index,
                    "state": slot.state,
                    "generation": slot.generation,
                    "breaker": slot.breaker.state,
                    "inflight": len(slot.inflight),
                    "pid": slot.process.pid if slot.process else None,
                }
                for slot in self.slots
            ]

    _BREAKER_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

    def _bind_gauges(self, registry) -> None:
        """Export supervision state as pull-model ``repro_serving_*`` gauges."""
        if registry is None:
            return
        events = registry.gauge(
            "repro_serving_supervisor_events",
            "supervision counters, by event",
        )
        late = registry.gauge(
            "repro_serving_late_replies",
            "shard replies for requests already resolved elsewhere",
        )
        breaker = registry.gauge(
            "repro_serving_breaker_state",
            "per-shard breaker state (0 closed, 1 half-open, 2 open)",
        )
        ready = registry.gauge(
            "repro_serving_shard_ready", "per-shard readiness (1 ready)"
        )

        def collect() -> None:
            stats = self.stats
            for event in (
                "admitted", "completed", "failed", "shed", "expired",
                "redelivered", "fallbacks", "respawns", "kills",
            ):
                events.set(float(getattr(stats, event)), event=event)
            late.set(float(stats.late_replies))
            for state in self.shard_states():
                shard = str(state["shard"])
                breaker.set(
                    self._BREAKER_CODES.get(state["breaker"], -1.0),
                    shard=shard,
                )
                ready.set(
                    1.0 if state["state"] == READY else 0.0, shard=shard
                )

        registry.register_collector(collect)

    # -- telemetry plane -------------------------------------------------------

    def _start_telemetry(self, scrape_port: int, registry) -> None:
        """Stand up the ring sampler, SLO tracker and scrape endpoint."""
        config = self.ctx.config if self.ctx is not None else None
        window = float(getattr(config, "slo_window", 300.0))
        self._ts_buffer = obs.TimeSeriesBuffer(
            registry,
            # one frame per second across the SLO window, plus slack so
            # the window never outruns the ring
            capacity=max(int(window) + 60, 120),
            interval=1.0,
        )
        self._slo_tracker = obs.SLOTracker(
            self._ts_buffer,
            obs.default_serving_slos(
                availability=float(
                    getattr(config, "slo_availability", 0.999)
                ),
                p99_seconds=float(getattr(config, "slo_p99_ms", 250.0))
                / 1000.0,
                calibration_error=float(
                    getattr(config, "slo_calibration_error", 0.25)
                ),
                window=window,
            ),
        )
        self._ts_buffer.sample()  # a baseline frame so deltas exist early
        self._ts_buffer.start()
        self._obs_server = obs.ObservabilityServer(
            registry,
            tracer=self._trace_sink(),
            slo_tracker=self._slo_tracker,
            health=self._health,
            port=scrape_port,
        )

    @property
    def scrape_url(self) -> str | None:
        """Base URL of the embedded scrape endpoint (None when off)."""
        return self._obs_server.url if self._obs_server is not None else None

    def _health(self) -> dict:
        """The ``/healthz`` body: shard states, breakers, stats."""
        states = self.shard_states()
        with self._lock:
            closed = self._closed
        return {
            "healthy": not closed
            and any(state["state"] == READY for state in states),
            "closed": closed,
            "shards": states,
            "breakers": {
                str(state["shard"]): state["breaker"] for state in states
            },
            "stats": dataclasses.asdict(self.stats),
        }

    # -- tracing ---------------------------------------------------------------

    def _trace_sink(self):
        """The tracer supervisor-side spans land in (None = untraced)."""
        if self.ctx is not None:
            tracer = self.ctx.tracer
            if tracer is not None:
                return tracer
        return obs.get_tracer()

    def _sampled(self, seq: int) -> bool:
        """Deterministic per-request sampling decision (keyed on seq)."""
        if self.trace_sample >= 1.0:
            return True
        if self.trace_sample <= 0.0:
            return False
        return ((seq * 0x9E3779B1) & 0xFFFF) / 65536.0 < self.trace_sample

    def _trace_event(
        self, name: str, trace: SpanContext | None = None, **attributes
    ) -> None:
        """Record a zero-duration event span (child of ``trace`` or root)."""
        tracer = self._trace_sink()
        if tracer is None:
            return
        if trace is not None:
            trace_id, parent_id = trace.trace_id, trace.span_id
        else:
            trace_id, parent_id = _new_id(), None
        tracer.absorb(
            [
                Span(
                    name=name,
                    trace_id=trace_id,
                    span_id=_new_id(),
                    parent_id=parent_id,
                    start_unix=time.time(),
                    pid=os.getpid(),
                    attributes=attributes,
                )
            ]
        )

    def _finish_request_span(
        self, inf: _Inflight, status: str, error: str = "", **attributes
    ) -> None:
        """Close the per-request root span (built by hand: the request
        crosses threads and processes, so no ``with`` block can hold it)."""
        if inf.trace is None:
            return
        tracer = self._trace_sink()
        if tracer is None:
            return
        tracer.absorb(
            [
                Span(
                    name="serving.sharded.request",
                    trace_id=inf.trace.trace_id,
                    span_id=inf.trace.span_id,
                    parent_id=inf.parent_span,
                    start_unix=inf.start_unix,
                    wall_seconds=time.monotonic() - inf.submitted,
                    status=status,
                    error=error,
                    pid=os.getpid(),
                    attributes={
                        "request_id": inf.request_id,
                        "dataset_key": inf.dataset_key,
                        "redeliveries": inf.redeliveries,
                        "objective": (
                            inf.objective.canonical
                            if inf.objective is not None
                            else ""
                        ),
                        **attributes,
                    },
                )
            ]
        )

    def kill_shard(self, index: int) -> None:
        """Kill one shard process outright (chaos/bench hook).

        The monitor detects the death, redistributes the shard's
        in-flight requests and respawns it on the backoff schedule —
        exactly as for an organic crash.
        """
        with self._lock:
            slot = self.slots[index]
            process = slot.process
            self._stats = replace(self._stats, kills=self._stats.kills + 1)
        self._trace_event(
            "supervisor.kill", shard=index, reason="kill_shard"
        )
        if process is not None and process.is_alive():
            process.kill()

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop everything; **no future is left unresolved** (idempotent).

        ``drain=True`` waits (up to ``timeout``) for in-flight and
        queued requests to finish; anything still live after that — or
        everything queued, when ``drain=False`` — is failed with
        :class:`~repro.errors.ServiceClosedError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        give_up = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        if drain:
            while True:
                with self._lock:
                    if not self._live:
                        break
                if give_up is not None and time.monotonic() > give_up:
                    break
                time.sleep(self.poll_interval)
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._obs_server is not None:
            self._obs_server.close()
        if self._ts_buffer is not None:
            self._ts_buffer.stop()
        for slot in self.slots:
            with self._lock:
                process, req_conn = slot.process, slot.req_conn
                slot.state = STOPPED
            if req_conn is not None:
                try:
                    req_conn.send({"kind": "stop"})
                except (BrokenPipeError, OSError):
                    pass
            if process is not None:
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=0.5)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
                    process.join(timeout=0.5)
            self._close_conns(slot)
        with self._lock:
            leftovers = list(self._live.values())
            self._live.clear()
            self._redeliver.clear()
        while True:  # anything still sitting in the admission queue
            try:
                leftovers.append(self._admit.get_nowait())
            except queue.Empty:
                break
        seen = set()
        for inf in leftovers:
            if inf.seq in seen:
                continue
            seen.add(inf.seq)
            if not inf.future.done():
                inf.future.set_exception(
                    ServiceClosedError(
                        f"service closed before serving {inf.request_id}"
                    )
                )
        self._fallback_pool.shutdown(wait=drain, cancel_futures=not drain)
        with self._lock:
            segments, self._segments = self._segments, {}
        for handle in segments.values():
            if self.ctx is not None:
                self.ctx.release_shm(handle)
            handle.close()
            handle.unlink()
        if self._owns_model:
            try:
                os.unlink(self.model_path)
            except OSError:
                pass

    def __enter__(self) -> "ShardedEstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission internals ---------------------------------------------------

    def _dataset_key(self, request: EstimateRequest) -> str:
        if request.dataset_id:
            return f"id:{request.dataset_id}"
        stride = getattr(self.pipeline.config, "sampling_stride", 1)
        return dataset_fingerprint(request.data, stride=stride)

    def _segment_for(self, key: str, data) -> SharedNDArray:
        """The shared segment carrying ``key``'s dataset (LRU-bounded)."""
        with self._lock:
            handle = self._segments.get(key)
            if handle is not None:
                return handle
        # from_array already makes its own contiguous copy; an extra
        # ascontiguousarray here would copy non-contiguous data twice.
        handle = SharedNDArray.from_array(data)
        if self.ctx is not None:
            self.ctx.adopt_shm(handle)
        evicted = []
        with self._lock:
            raced = self._segments.get(key)
            if raced is not None:
                evicted.append(handle)
                handle = raced
            else:
                self._segments[key] = handle
                while len(self._segments) > self.max_datasets:
                    # dict preserves insertion order; the oldest key is
                    # the least recently *created*, which is close
                    # enough for an overflow valve.
                    old_key = next(iter(self._segments))
                    if old_key == key:
                        break
                    evicted.append(self._segments.pop(old_key))
        for old in evicted:
            if self.ctx is not None:
                self.ctx.release_shm(old)
            old.close()
            old.unlink()
        return handle

    def _retry_after_hint(self) -> float:
        with self._lock:
            ready = sum(1 for slot in self.slots if slot.state == READY)
            ewma = self._ewma_latency
        return max(0.05, self.queue_depth * ewma / max(1, ready))

    # -- resolution (single-owner: pop from _live first) -----------------------

    def _pop_live(self, seq: int):
        with self._lock:
            inf = self._live.pop(seq, None)
            if inf is not None and 0 <= inf.shard < len(self.slots):
                self.slots[inf.shard].inflight.discard(seq)
            self._cond.notify_all()
        return inf

    def _bump(self, **deltas) -> None:
        with self._lock:
            updates = {
                name: getattr(self._stats, name) + delta
                for name, delta in deltas.items()
            }
            self._stats = replace(self._stats, **updates)

    def _breaker_success(self, slot: _ShardSlot) -> None:
        """Record a request-level success, tracing a breaker close."""
        was = slot.breaker.state
        slot.breaker.record_success()
        if was != "closed":
            self._trace_event(
                "supervisor.breaker_close", shard=slot.index, from_state=was
            )

    def _complete(
        self, inf: _Inflight, estimate, cache_hit: bool, source: str = "shard"
    ) -> None:
        latency = time.monotonic() - inf.submitted
        if inf.trace is not None:
            estimate = replace(estimate, trace_id=inf.trace.trace_id)
        with self._lock:
            self._ewma_latency = 0.8 * self._ewma_latency + 0.2 * latency
        self._metrics.record_request(
            latency,
            tier=estimate.tier,
            analysis_seconds=estimate.analysis_seconds,
        )
        self._bump(completed=1)
        if self.outcome_log is not None:
            # Parent-side, single-writer: the estimate already crossed
            # the reply pipe, so this append never interleaves with a
            # forked worker's writes.
            try:
                self.outcome_log.record_estimate(
                    estimate,
                    dataset_key=inf.dataset_key,
                    compressor=self.pipeline.compressor.name,
                    source=source,
                )
            except OSError:
                pass  # a full disk must not fail the request
        # Close the request span *before* resolving the future, so a
        # caller that inspects the tracer right after .result() sees a
        # complete tree.
        self._finish_request_span(
            inf,
            "ok",
            source=source,
            cache_hit=bool(cache_hit),
            tier=estimate.tier,
            shard=inf.shard,
        )
        inf.future.set_result(
            ServedEstimate(
                request_id=inf.request_id,
                dataset_key=inf.dataset_key,
                estimate=estimate,
                latency_seconds=latency,
                cache_hit=cache_hit,
                batch_size=1,
                trace_id=inf.trace.trace_id if inf.trace is not None else 0,
            )
        )

    def _fail(self, inf: _Inflight, exc: Exception, *, expired=False) -> None:
        self._metrics.record_request(
            time.monotonic() - inf.submitted, failed=True
        )
        self._bump(expired=1) if expired else self._bump(failed=1)
        self._finish_request_span(
            inf,
            "error",
            error=f"{type(exc).__name__}: {exc}",
            expired=bool(expired),
        )
        inf.future.set_exception(exc)

    def _expire(self, inf: _Inflight) -> None:
        self._fail(
            inf,
            DeadlineExceededError(
                f"request {inf.request_id} missed its "
                f"{inf.deadline - inf.submitted:.3f}s deadline"
            ),
            expired=True,
        )

    # -- dispatcher ------------------------------------------------------------

    def _next_item(self) -> _Inflight | None:
        with self._lock:
            if self._redeliver:
                return self._redeliver.popleft()
        try:
            return self._admit.get(timeout=self.poll_interval)
        except queue.Empty:
            return None

    def _dispatcher(self) -> None:
        while True:
            item = self._next_item()
            if item is None:
                if self._stop.is_set():
                    return
                continue
            self._place(item)

    def _place(self, item: _Inflight) -> None:
        """Drive one request to a shard, the fallback ladder, or expiry."""
        while not self._stop.is_set():
            with self._lock:
                if item.seq not in self._live:
                    return  # already resolved (deadline, close)
            if item.deadline is not None and time.monotonic() > item.deadline:
                if self._pop_live(item.seq) is not None:
                    self._expire(item)
                return
            action = self._try_dispatch(item)
            if action == "dispatched":
                return
            if action == "fallback":
                self._send_to_fallback(item)
                return
            with self._cond:  # wait: capacity frees or topology changes
                self._cond.wait(timeout=self.poll_interval)

    def _try_dispatch(self, item: _Inflight) -> str:
        """``"dispatched"`` | ``"wait"`` | ``"fallback"``."""
        with self._lock:
            passable = [
                slot
                for slot in self.slots
                if slot.state == READY and slot.breaker.would_allow()
            ]
            open_slots = [
                slot
                for slot in passable
                if len(slot.inflight) < self.max_inflight_per_shard
            ]
            if not open_slots:
                if passable:
                    return "wait"  # healthy shards exist, all at capacity
                if any(
                    slot.state in (STARTING, DEAD) for slot in self.slots
                ):
                    return "wait"  # a shard is (re)spawning
                # Everything ready is breaker-open (or permanently
                # failed): tripped traffic degrades, it does not queue.
                return "fallback"
            slot = min(open_slots, key=lambda s: len(s.inflight))
            if not slot.breaker.allow():  # pragma: no cover - raced probe
                return "wait"
            slot.inflight.add(item.seq)
            item.shard = slot.index
            item.generation = slot.generation
            conn = slot.req_conn
        objective = item.objective or resolved_objective(item.request)
        message = {
            "kind": "request",
            "seq": item.seq,
            "request_id": item.request_id,
            "descriptor": item.descriptor,
            "dataset_key": item.dataset_key,
            # Both forms ride the message: ``objective`` is the source
            # of truth; ``target_ratio`` keeps pre-objective shards (and
            # message-level tooling) working for ratio requests.
            "target_ratio": (
                objective.tcr
                if isinstance(objective, RatioTarget)
                else 0.0
            ),
            "objective": objective.canonical,
            "deadline": item.deadline or 0.0,
        }
        if item.trace is not None:
            # The propagated context: the shard's spans re-parent under
            # the request span on the other side of the fork boundary.
            message["trace"] = (item.trace.trace_id, item.trace.span_id)
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            # The shard died under us; the monitor will respawn it.
            with self._lock:
                slot.inflight.discard(item.seq)
                item.shard = -1
            return "wait"
        if item.trace is not None:
            self._trace_event(
                "supervisor.dispatch",
                trace=item.trace,
                shard=item.shard,
                generation=item.generation,
                redeliveries=item.redeliveries,
            )
        return "dispatched"

    # -- fallback ladder -------------------------------------------------------

    def _send_to_fallback(self, item: _Inflight) -> None:
        if self._fallback_engine is None:
            inf = self._pop_live(item.seq)
            if inf is not None:
                self._fail(
                    inf,
                    ShardFailedError(
                        f"no shard available for {item.request_id} and the "
                        "fallback ladder is disabled",
                        shard=item.shard,
                        redeliveries=item.redeliveries,
                    ),
                )
            return
        self._fallback_pool.submit(self._run_fallback, item)

    def _run_fallback(self, item: _Inflight) -> None:
        inf = self._pop_live(item.seq)
        if inf is None:
            return
        if inf.deadline is not None and time.monotonic() > inf.deadline:
            self._expire(inf)
            return
        tracer = self._trace_sink()
        span = (
            tracer.span(
                "serving.sharded.fallback",
                parent=inf.trace,
                shard=inf.shard,
                generation=inf.generation,
                redeliveries=inf.redeliveries,
                request_id=inf.request_id,
            )
            if tracer is not None and inf.trace is not None
            else contextlib.nullcontext(obs.NULL_SPAN)
        )
        try:
            with span as sp:
                key = inf.dataset_key
                analysis = self._fallback_analyses.get(key)
                hit = analysis is not None
                if not hit:
                    analysis = self._fallback_engine.analyze(inf.request.data)
                    if len(self._fallback_analyses) < self.max_datasets:
                        self._fallback_analyses[key] = analysis
                objective = inf.objective or resolved_objective(inf.request)
                if isinstance(objective, RatioTarget):
                    estimate = self._fallback_engine.estimate(
                        inf.request.data,
                        objective.tcr,
                        analysis=analysis,
                    )
                else:
                    estimate = self._fallback_engine.estimate(
                        inf.request.data,
                        analysis=analysis,
                        objective=objective,
                    )
                sp.set_attributes(
                    cache_hit=hit,
                    tier=estimate.tier,
                    objective=objective.canonical,
                )
        except Exception as exc:  # noqa: BLE001 — future carries it
            self._fail(inf, exc)
            return
        self._bump(fallbacks=1)
        self._complete(inf, estimate, hit, source="fallback")

    # -- collector -------------------------------------------------------------

    def _collector(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                conns = {
                    slot.res_conn: slot
                    for slot in self.slots
                    if slot.res_conn is not None
                    and slot.state in (STARTING, READY)
                }
            if not conns:
                time.sleep(self.poll_interval)
                continue
            try:
                readable = connection.wait(list(conns), timeout=0.1)
            except OSError:  # a conn was closed under us mid-wait
                continue
            for conn in readable:
                slot = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Shard end closed: the process died (or is dying);
                    # the monitor's liveness check owns the respawn.
                    # The dead conn stays readable-at-EOF until then,
                    # so pause instead of spinning on it.
                    time.sleep(self.poll_interval)
                    continue
                self._handle_message(slot, message)

    def _handle_message(self, slot: _ShardSlot, message: dict) -> None:
        kind = message.get("kind")
        if kind == "ready":
            with self._lock:
                if message.get("generation") == slot.generation:
                    slot.state = READY
                    slot.strikes = 0
                self._cond.notify_all()
            return
        if kind == "init_error":
            with self._lock:
                stale = message.get("generation") != slot.generation
            if not stale:
                self._mark_dead(
                    slot, f"failed to initialize: {message.get('error')}"
                )
            return
        seq = message.get("seq")
        spans = message.get("spans")
        if spans:
            # Absorb the shard-local spans shipped with the reply, even
            # for late replies — the work happened; the trace shows it.
            tracer = self._trace_sink()
            if tracer is not None:
                tracer.absorb(spans)
        if kind == "result":
            self._breaker_success(slot)
            inf = self._pop_live(seq)
            if inf is None:
                self._bump(late_replies=1)
                return
            self._complete(inf, message["estimate"], message["cache_hit"])
        elif kind == "error":
            # Request-level engine error: the shard is healthy (it
            # answered), so the breaker records success, not failure.
            self._breaker_success(slot)
            inf = self._pop_live(seq)
            if inf is None:
                self._bump(late_replies=1)
                return
            exc = message.get("exception")
            if exc is None:
                exc = ReproError(message.get("error", "shard engine error"))
            self._fail(inf, exc)
        elif kind == "expired":
            inf = self._pop_live(seq)
            if inf is None:
                self._bump(late_replies=1)
                return
            self._expire(inf)

    # -- monitor ---------------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.is_set():
            self._expire_deadlines()
            self._check_health()
            self._respawn_due()
            time.sleep(self.poll_interval)

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [
                seq
                for seq, inf in self._live.items()
                if inf.deadline is not None and now > inf.deadline
            ]
        for seq in due:
            inf = self._pop_live(seq)
            if inf is not None:
                self._expire(inf)

    def _check_health(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            with self._lock:
                state = slot.state
                process = slot.process
            if state == STARTING:
                if process is not None and not process.is_alive():
                    self._mark_dead(slot, "died during startup")
            elif state == READY:
                if process is None or not process.is_alive():
                    self._mark_dead(slot, "process exited")
                    continue
                busy_since = slot.busy.value
                if busy_since:
                    allowed = self.hang_timeout
                    deadline = self._earliest_deadline(slot)
                    if deadline is not None:
                        allowed = min(
                            allowed, (deadline - busy_since) + self.hang_grace
                        )
                    if now - busy_since > max(allowed, self.hang_grace):
                        self._kill(slot, "hung mid-request")
                elif now - slot.beat.value > self.heartbeat_timeout:
                    self._kill(slot, "heartbeat lost")

    def _earliest_deadline(self, slot: _ShardSlot) -> float | None:
        with self._lock:
            deadlines = [
                self._live[seq].deadline
                for seq in slot.inflight
                if seq in self._live
                and self._live[seq].deadline is not None
            ]
        return min(deadlines) if deadlines else None

    def _kill(self, slot: _ShardSlot, reason: str) -> None:
        self._bump(kills=1)
        self._trace_event("supervisor.kill", shard=slot.index, reason=reason)
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=1.0)
        self._mark_dead(slot, reason)

    def _mark_dead(self, slot: _ShardSlot, reason: str) -> None:
        """Record a shard death: trip breaker, redistribute, schedule."""
        with self._lock:
            if slot.state in (DEAD, FAILED, STOPPED):
                return
            slot.state = DEAD
            breaker_was = slot.breaker.state
            slot.breaker.record_failure()
            breaker_now = slot.breaker.state
            slot.strikes += 1
            orphans = [
                self._live[seq]
                for seq in slot.inflight
                if seq in self._live
            ]
            slot.inflight.clear()
            delay = float(
                backoff_schedule(
                    self.retry_policy, slot.strikes, rng=self._backoff_rng
                )[-1]
            )
            slot.respawn_at = time.monotonic() + delay
            slot.last_death_reason = reason
            to_fallback = []
            for inf in orphans:
                inf.shard = -1
                inf.redeliveries += 1
                if inf.redeliveries > self.max_redeliveries:
                    to_fallback.append(inf)
                else:
                    self._redeliver.append(inf)
            self._stats = replace(
                self._stats,
                redelivered=self._stats.redelivered + len(orphans),
            )
            self._cond.notify_all()
        if breaker_now == "open" and breaker_was != "open":
            self._trace_event(
                "supervisor.breaker_open", shard=slot.index, reason=reason
            )
        for inf in orphans:
            if inf.trace is not None:
                self._trace_event(
                    "supervisor.redeliver",
                    trace=inf.trace,
                    shard=slot.index,
                    generation=inf.generation,
                    reason=reason,
                    redeliveries=inf.redeliveries,
                )
        process = slot.process
        if process is not None and not process.is_alive():
            process.join(timeout=0.5)
        self._close_conns(slot)
        for inf in to_fallback:
            self._send_to_fallback(inf)

    def _respawn_due(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            with self._lock:
                # Respawning continues while a close() drains: in-flight
                # requests may need a live shard to complete.
                due = slot.state == DEAD and now >= slot.respawn_at
                if due and slot.strikes >= self.retry_policy.max_attempts:
                    # Only *consecutive pre-ready* failures reach here:
                    # a shard that served requests resets its strikes
                    # on every successful spawn.
                    slot.state = FAILED
                    due = False
                    self._cond.notify_all()
            if due:
                self._bump(respawns=1)
                self._trace_event(
                    "supervisor.respawn",
                    shard=slot.index,
                    strikes=slot.strikes,
                    reason=slot.last_death_reason,
                )
                self._spawn(slot)

    # -- spawning --------------------------------------------------------------

    def _close_conns(self, slot: _ShardSlot) -> None:
        with self._lock:
            conns = (slot.req_conn, slot.res_conn)
            slot.req_conn = slot.res_conn = None
        for conn in conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def _spawn(self, slot: _ShardSlot) -> None:
        """Start the next incarnation of one shard (fresh pipes/stream)."""
        # The shard must inherit the parent's resource tracker: a child
        # forked before the tracker exists starts its *own* on first
        # shm attach, and that orphan tracker reports (and re-unlinks)
        # the parent's segments as leaks at shutdown.
        resource_tracker.ensure_running()
        req_read, req_write = self._mp.Pipe(duplex=False)
        res_read, res_write = self._mp.Pipe(duplex=False)
        beat = self._mp.Value("d", time.monotonic(), lock=False)
        busy = self._mp.Value("d", 0.0, lock=False)
        with self._lock:
            slot.generation += 1
            generation = slot.generation
        process = self._mp.Process(
            target=shard_main,
            args=(
                slot.index,
                generation,
                self._shard_spec,
                req_read,
                res_write,
                beat,
                busy,
            ),
            daemon=True,
            name=f"fxrz-shard-{slot.index}g{generation}",
        )
        process.start()
        # The parent must not hold the child's pipe ends: EOF detection
        # on the reply pipe only works when the child's write end lives
        # in exactly one process.
        req_read.close()
        res_write.close()
        with self._lock:
            slot.process = process
            slot.req_conn = req_write
            slot.res_conn = res_read
            slot.beat = beat
            slot.busy = busy
            slot.state = STARTING
            slot.started_at = time.monotonic()
