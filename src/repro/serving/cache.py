"""Dataset fingerprinting and the per-dataset analysis cache.

FXRZ inference splits cleanly into a per-dataset half (sampled feature
extraction + constant-block classification — the expensive part) and a
per-target half (one model query — microseconds). Serving many targets
against the same snapshot therefore wants the analysis computed once
and reused, which is exactly what :class:`FeatureCache` provides:

* :func:`dataset_fingerprint` content-hashes the dataset's *sampled
  view* (the stride-K lattice the features are computed on) together
  with its full shape/dtype — cheap even for large fields, since only
  ~stride^-d of the points are touched;
* :class:`FeatureCache` maps fingerprint -> analysis with LRU eviction,
  hit/miss counters, and in-flight deduplication: concurrent requests
  for the same uncached dataset trigger exactly one analysis, with the
  latecomers blocking on the first worker's future.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable

import numpy as np

from repro.core.features import uniform_sample
from repro.errors import InvalidConfiguration


def dataset_fingerprint(data: np.ndarray, stride: int = 1) -> str:
    """Content-hash the stride-K sampled view of ``data``.

    Two arrays with identical sampled lattices (and identical full
    shape/dtype) share a fingerprint; anything that would change the
    extracted features changes the hash. The full shape and dtype are
    folded in so a sub-sampled copy of a dataset never aliases its
    parent.
    """
    array = np.asarray(data)
    if array.size == 0:
        raise InvalidConfiguration("cannot fingerprint an empty dataset")
    sampled = uniform_sample(np.asarray(array, dtype=np.float64), stride)
    digest = hashlib.blake2b(digest_size=8)
    meta = f"{array.shape}|{array.dtype.str}|{stride}".encode("ascii")
    digest.update(meta)
    digest.update(np.ascontiguousarray(sampled).tobytes())
    return digest.hexdigest()


class FeatureCache:
    """LRU cache of per-dataset analyses, safe for concurrent workers.

    Values are whatever the owning engine's ``analyze`` returns
    (:class:`~repro.core.inference.DatasetAnalysis` or
    :class:`~repro.robustness.guarded.GuardedAnalysis`); the cache never
    inspects them.

    Args:
        max_entries: LRU capacity; the least recently used analysis is
            dropped past this (waiters already holding its future still
            receive the value).
        ctx: a :class:`~repro.runtime.RuntimeContext`; when it carries
            a metrics registry the cache binds its hit/miss/eviction
            gauges there.
    """

    def __init__(self, max_entries: int = 128, *, ctx=None) -> None:
        if max_entries < 1:
            raise InvalidConfiguration("cache needs at least one entry")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, Future] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if ctx is not None and ctx.registry is not None:
            from repro import obs

            obs.bind_cache_gauges(ctx.registry, "serving_feature_cache", self)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(
        self, key: str, factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """``(analysis, hit)`` under ``key``, computing on first use.

        A concurrent miss on the same key runs ``factory`` exactly once;
        every other caller blocks on the in-flight future (and counts as
        a hit — it did not pay for the computation). A factory that
        raises propagates to all waiters and leaves the key uncached, so
        a later request retries.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                owner = False
            else:
                entry = Future()
                self._entries[key] = entry
                self._misses += 1
                owner = True
                while len(self._entries) > self.max_entries:
                    # The just-inserted key is the newest, so the popped
                    # head is always some other entry.
                    self._entries.popitem(last=False)
                    self._evictions += 1
        if not owner:
            return entry.result(), True
        try:
            value = factory()
        except BaseException as exc:
            entry.set_exception(exc)
            with self._lock:
                if self._entries.get(key) is entry:
                    del self._entries[key]
            raise
        entry.set_result(value)
        return value, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
