"""Service metrics: counters, latency distribution, tier accounting.

The serving layer records every request's outcome into a thread-safe
:class:`MetricsRecorder`; :meth:`MetricsRecorder.snapshot` freezes the
current state into an immutable :class:`MetricsSnapshot` that the CLI
``--stats`` view and the throughput benchmark render. Latencies keep a
bounded window (the most recent ``latency_window`` requests) so a
long-lived service never grows without bound.

Two representation rules worth spelling out:

* **No data is not zero.** The latency aggregates are ``None`` (and
  render as ``n/a``) when the window is empty — a service that has only
  ever failed requests must not report a 0.00 ms p95.
* **Failures are labeled, not folded in.** A failed request counts
  toward ``requests_total``/``requests_failed`` only; its latency never
  enters the window, so the percentiles describe successful service
  latency exclusively.

When a process-wide :class:`repro.obs.MetricsRegistry` is installed
(or passed as ``registry=``), the recorder mirrors every event into
namespaced metrics — ``repro_serving_requests_total{outcome=}``,
``repro_serving_latency_seconds{outcome=}`` (histogram),
``repro_serving_batches_total``, ``repro_serving_batched_requests_total``,
``repro_serving_tier_total{tier=}``,
``repro_serving_analysis_seconds_total`` — so the serving numbers
export alongside the rest of the pipeline's.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro import obs

#: Ladder tiers a request can be answered from (plus "error").
TIERS = ("model", "curve", "fraz")


def _ms(value: "float | None") -> str:
    return "n/a" if value is None else f"{value:.2f}ms"


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of a service's counters at one instant.

    Attributes:
        requests_total: completed requests (successes + failures).
        requests_failed: requests whose engine raised.
        batches: dataset-coalesced batches processed.
        mean_batch_size: requests per batch on average.
        cache_hits / cache_misses: feature-cache lookups.
        cache_hit_ratio: hits / lookups (0.0 before any lookup).
        cache_evictions: analyses dropped by the LRU.
        tier_counts: requests answered per ladder tier.
        fallback_count: requests the model tier did *not* answer
            (degraded to curve/fraz) — the guarded ladder's degradation
            counter.
        latency_count: successful requests inside the retained latency
            window (failures never enter it).
        latency_mean_ms / latency_p50_ms / latency_p95_ms /
        latency_max_ms: submit-to-completion latency over that window,
            or ``None`` when no successful request has been recorded —
            "no data" is distinct from a true 0 ms.
        analysis_seconds_total: engine-reported per-request analysis
            time, summed (the amortized-cost numerator).
        uptime_seconds: service age at snapshot time.
    """

    requests_total: int
    requests_failed: int
    batches: int
    mean_batch_size: float
    cache_hits: int
    cache_misses: int
    cache_hit_ratio: float
    cache_evictions: int
    tier_counts: dict[str, int]
    fallback_count: int
    latency_count: int
    latency_mean_ms: float | None
    latency_p50_ms: float | None
    latency_p95_ms: float | None
    latency_max_ms: float | None
    analysis_seconds_total: float
    uptime_seconds: float

    def lines(self) -> list[str]:
        """Human-readable key/value lines (the CLI ``--stats`` view)."""
        tiers = ", ".join(
            f"{name}={count}" for name, count in sorted(self.tier_counts.items())
        ) or "none"
        return [
            f"requests        {self.requests_total} "
            f"({self.requests_failed} failed)",
            f"batches         {self.batches} "
            f"(mean size {self.mean_batch_size:.1f})",
            f"feature cache   {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"(hit ratio {self.cache_hit_ratio:.0%}, "
            f"{self.cache_evictions} evicted)",
            f"tiers           {tiers} (fallbacks {self.fallback_count})",
            f"latency         mean {_ms(self.latency_mean_ms)}, "
            f"p50 {_ms(self.latency_p50_ms)}, p95 {_ms(self.latency_p95_ms)}, "
            f"max {_ms(self.latency_max_ms)} over {self.latency_count} requests",
            f"analysis time   {self.analysis_seconds_total * 1e3:.1f}ms total",
            f"uptime          {self.uptime_seconds:.1f}s",
        ]


class MetricsRecorder:
    """Thread-safe accumulator behind a service's ``metrics`` property.

    Args:
        latency_window: successful-request latencies retained for the
            percentile view.
        registry: a :class:`repro.obs.MetricsRegistry` to mirror events
            into; defaults to the process-wide installed registry (or
            no mirroring when none is installed).
    """

    def __init__(
        self, latency_window: int = 4096, registry=None
    ) -> None:
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self._requests_total = 0
        self._requests_failed = 0
        self._batches = 0
        self._batched_requests = 0
        self._tier_counts: Counter[str] = Counter()
        self._fallbacks = 0
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self._analysis_seconds = 0.0
        if registry is None:
            registry = obs.get_registry()
        self._requests_metric = self._latency_metric = None
        self._batches_metric = self._batched_metric = None
        self._tier_metric = self._analysis_metric = None
        if registry is not None:
            self._requests_metric = registry.counter(
                "repro_serving_requests_total",
                "estimation requests by outcome",
            )
            self._latency_metric = registry.histogram(
                "repro_serving_latency_seconds",
                "request submit-to-completion latency",
            )
            self._batches_metric = registry.counter(
                "repro_serving_batches_total",
                "dataset-coalesced batches processed",
            )
            self._batched_metric = registry.counter(
                "repro_serving_batched_requests_total",
                "requests processed through batches",
            )
            self._tier_metric = registry.counter(
                "repro_serving_tier_total",
                "successful requests by answering tier",
            )
            self._analysis_metric = registry.counter(
                "repro_serving_analysis_seconds_total",
                "engine-reported analysis seconds, summed",
            )
            # Pre-bound series handles: the per-request mirror runs on
            # the serving hot path, so the label keys are resolved once
            # here instead of on every event.
            self._requests_ok = self._requests_metric.bind(outcome="ok")
            self._requests_error = self._requests_metric.bind(outcome="error")
            self._latency_ok = self._latency_metric.bind(outcome="ok")
            self._latency_error = self._latency_metric.bind(outcome="error")
            self._tier_bound = {
                tier: self._tier_metric.bind(tier=tier) for tier in TIERS
            }
            self._analysis_bound = self._analysis_metric.bind()
            self._batches_bound = self._batches_metric.bind()
            self._batched_bound = self._batched_metric.bind()

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(size)
        if self._batches_metric is not None:
            self._batches_bound.inc()
            self._batched_bound.inc(int(size))

    def record_request(
        self,
        latency_seconds: float,
        tier: str = "",
        analysis_seconds: float = 0.0,
        failed: bool = False,
    ) -> None:
        with self._lock:
            self._requests_total += 1
            if failed:
                # Failures are counted, not timed: folding their
                # latency into the window would let errors skew (or
                # fabricate) the service's latency percentiles.
                self._requests_failed += 1
            else:
                self._latencies.append(float(latency_seconds))
                self._analysis_seconds += float(analysis_seconds)
                if tier:
                    self._tier_counts[tier] += 1
                    if tier != "model":
                        self._fallbacks += 1
        if self._requests_metric is not None:
            if failed:
                self._requests_error.inc()
                self._latency_error.observe(float(latency_seconds))
            else:
                self._requests_ok.inc()
                self._latency_ok.observe(float(latency_seconds))
                if tier:
                    bound = self._tier_bound.get(tier)
                    if bound is not None:
                        bound.inc()
                    else:
                        self._tier_metric.inc(tier=tier)
                self._analysis_bound.inc(float(analysis_seconds))

    def snapshot(self, cache=None) -> MetricsSnapshot:
        """Freeze the counters; ``cache`` supplies hit/miss/eviction."""
        with self._lock:
            latencies = np.array(self._latencies, dtype=np.float64)
            tier_counts = dict(self._tier_counts)
            requests_total = self._requests_total
            requests_failed = self._requests_failed
            batches = self._batches
            batched = self._batched_requests
            fallbacks = self._fallbacks
            analysis_seconds = self._analysis_seconds
            uptime = time.perf_counter() - self._start
        hits = int(getattr(cache, "hits", 0))
        misses = int(getattr(cache, "misses", 0))
        evictions = int(getattr(cache, "evictions", 0))
        lookups = hits + misses
        has_latency = latencies.size > 0
        return MetricsSnapshot(
            requests_total=requests_total,
            requests_failed=requests_failed,
            batches=batches,
            mean_batch_size=batched / batches if batches else 0.0,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_ratio=hits / lookups if lookups else 0.0,
            cache_evictions=evictions,
            tier_counts=tier_counts,
            fallback_count=fallbacks,
            latency_count=int(latencies.size),
            latency_mean_ms=float(latencies.mean() * 1e3) if has_latency else None,
            latency_p50_ms=(
                float(np.percentile(latencies, 50) * 1e3) if has_latency else None
            ),
            latency_p95_ms=(
                float(np.percentile(latencies, 95) * 1e3) if has_latency else None
            ),
            latency_max_ms=float(latencies.max() * 1e3) if has_latency else None,
            analysis_seconds_total=analysis_seconds,
            uptime_seconds=uptime,
        )
