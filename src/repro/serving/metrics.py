"""Service metrics: counters, latency distribution, tier accounting.

The serving layer records every request's outcome into a thread-safe
:class:`MetricsRecorder`; :meth:`MetricsRecorder.snapshot` freezes the
current state into an immutable :class:`MetricsSnapshot` that the CLI
``--stats`` view and the throughput benchmark render. Latencies keep a
bounded window (the most recent ``latency_window`` requests) so a
long-lived service never grows without bound.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

#: Ladder tiers a request can be answered from (plus "error").
TIERS = ("model", "curve", "fraz")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of a service's counters at one instant.

    Attributes:
        requests_total: completed requests (successes + failures).
        requests_failed: requests whose engine raised.
        batches: dataset-coalesced batches processed.
        mean_batch_size: requests per batch on average.
        cache_hits / cache_misses: feature-cache lookups.
        cache_hit_ratio: hits / lookups (0.0 before any lookup).
        cache_evictions: analyses dropped by the LRU.
        tier_counts: requests answered per ladder tier.
        fallback_count: requests the model tier did *not* answer
            (degraded to curve/fraz) — the guarded ladder's degradation
            counter.
        latency_count: requests inside the retained latency window.
        latency_mean_ms / latency_p50_ms / latency_p95_ms /
        latency_max_ms: submit-to-completion latency over that window.
        analysis_seconds_total: engine-reported per-request analysis
            time, summed (the amortized-cost numerator).
        uptime_seconds: service age at snapshot time.
    """

    requests_total: int
    requests_failed: int
    batches: int
    mean_batch_size: float
    cache_hits: int
    cache_misses: int
    cache_hit_ratio: float
    cache_evictions: int
    tier_counts: dict[str, int]
    fallback_count: int
    latency_count: int
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_max_ms: float
    analysis_seconds_total: float
    uptime_seconds: float

    def lines(self) -> list[str]:
        """Human-readable key/value lines (the CLI ``--stats`` view)."""
        tiers = ", ".join(
            f"{name}={count}" for name, count in sorted(self.tier_counts.items())
        ) or "none"
        return [
            f"requests        {self.requests_total} "
            f"({self.requests_failed} failed)",
            f"batches         {self.batches} "
            f"(mean size {self.mean_batch_size:.1f})",
            f"feature cache   {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"(hit ratio {self.cache_hit_ratio:.0%}, "
            f"{self.cache_evictions} evicted)",
            f"tiers           {tiers} (fallbacks {self.fallback_count})",
            f"latency         mean {self.latency_mean_ms:.2f}ms, "
            f"p50 {self.latency_p50_ms:.2f}ms, p95 {self.latency_p95_ms:.2f}ms, "
            f"max {self.latency_max_ms:.2f}ms over {self.latency_count} requests",
            f"analysis time   {self.analysis_seconds_total * 1e3:.1f}ms total",
            f"uptime          {self.uptime_seconds:.1f}s",
        ]


class MetricsRecorder:
    """Thread-safe accumulator behind a service's ``metrics`` property."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self._requests_total = 0
        self._requests_failed = 0
        self._batches = 0
        self._batched_requests = 0
        self._tier_counts: Counter[str] = Counter()
        self._fallbacks = 0
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self._analysis_seconds = 0.0

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(size)

    def record_request(
        self,
        latency_seconds: float,
        tier: str = "",
        analysis_seconds: float = 0.0,
        failed: bool = False,
    ) -> None:
        with self._lock:
            self._requests_total += 1
            self._latencies.append(float(latency_seconds))
            if failed:
                self._requests_failed += 1
                return
            self._analysis_seconds += float(analysis_seconds)
            if tier:
                self._tier_counts[tier] += 1
                if tier != "model":
                    self._fallbacks += 1

    def snapshot(self, cache=None) -> MetricsSnapshot:
        """Freeze the counters; ``cache`` supplies hit/miss/eviction."""
        with self._lock:
            latencies = np.array(self._latencies, dtype=np.float64)
            tier_counts = dict(self._tier_counts)
            requests_total = self._requests_total
            requests_failed = self._requests_failed
            batches = self._batches
            batched = self._batched_requests
            fallbacks = self._fallbacks
            analysis_seconds = self._analysis_seconds
            uptime = time.perf_counter() - self._start
        hits = int(getattr(cache, "hits", 0))
        misses = int(getattr(cache, "misses", 0))
        evictions = int(getattr(cache, "evictions", 0))
        lookups = hits + misses
        has_latency = latencies.size > 0
        return MetricsSnapshot(
            requests_total=requests_total,
            requests_failed=requests_failed,
            batches=batches,
            mean_batch_size=batched / batches if batches else 0.0,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_ratio=hits / lookups if lookups else 0.0,
            cache_evictions=evictions,
            tier_counts=tier_counts,
            fallback_count=fallbacks,
            latency_count=int(latencies.size),
            latency_mean_ms=float(latencies.mean() * 1e3) if has_latency else 0.0,
            latency_p50_ms=(
                float(np.percentile(latencies, 50) * 1e3) if has_latency else 0.0
            ),
            latency_p95_ms=(
                float(np.percentile(latencies, 95) * 1e3) if has_latency else 0.0
            ),
            latency_max_ms=float(latencies.max() * 1e3) if has_latency else 0.0,
            analysis_seconds_total=analysis_seconds,
            uptime_seconds=uptime,
        )
