"""The in-process estimation service: batched, concurrent, cached.

FXRZ's pitch (and Table VIII's headline) is that inference is
compressor-free and cheap; this module amortizes it further for the
request-serving workload the ROADMAP targets. Clients ``submit``
individual :class:`EstimateRequest`\\ s and receive futures; a pool of
worker threads drains the queue, **coalescing requests that target the
same dataset** into one batch so the expensive per-dataset analysis
(sampled features + constant-block classification) runs once and every
target in the batch reuses it via the :class:`~repro.serving.cache.FeatureCache`.

The engine is pluggable: the plain
:class:`~repro.core.inference.InferenceEngine` gives answers identical
to direct calls, while the PR-1
:class:`~repro.robustness.guarded.GuardedInferenceEngine` plugs its
degradation ladder into the service so every curve/FRaZ fallback is
*counted* in the metrics, not just returned.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.inference import Estimate, InferenceEngine
from repro.core.objective import Objective, RatioTarget, as_objective
from repro.core.pipeline import FXRZ
from repro.errors import (
    DeadlineExceededError,
    InvalidConfiguration,
    NotFittedError,
    ReproError,
    ServiceClosedError,
)
from repro.runtime.compat import UNSET, legacy, legacy_context
from repro.serving.cache import FeatureCache, dataset_fingerprint
from repro.serving.metrics import MetricsRecorder, MetricsSnapshot


@dataclass
class EstimateRequest:
    """One estimation query.

    Attributes:
        data: the dataset to answer for.
        target_ratio: the requested TCR — the pre-objective calling
            convention; leave at ``0.0`` when ``objective`` is given.
        request_id: caller-chosen identifier echoed in the result
            (auto-assigned ``req-N`` when empty).
        dataset_id: optional explicit dataset key; requests sharing it
            are coalesced without content-hashing the array. Leave empty
            to let the service fingerprint the sampled view.
        deadline_seconds: per-request deadline relative to submission;
            a request still unserved past it fails with
            :class:`~repro.errors.DeadlineExceededError` instead of
            waiting forever. ``None`` falls back to the service's
            ``default_deadline``.
        trace: an explicit :class:`~repro.obs.SpanContext` to serve the
            request under — the sharded supervisor parents its request
            span (and every shard-side span) there. ``None`` lets the
            service mint a fresh trace when tracing is on.
        objective: the estimation target — an
            :class:`~repro.core.objective.Objective`, canonical string
            (``"psnr:60"``) or bare ratio. Mutually exclusive with a
            non-zero ``target_ratio``.
    """

    data: np.ndarray
    target_ratio: float = 0.0
    request_id: str = ""
    dataset_id: str = ""
    deadline_seconds: float | None = None
    trace: "obs.SpanContext | None" = None
    objective: "Objective | float | str | None" = None


def resolved_objective(request: EstimateRequest) -> Objective:
    """The request's :class:`Objective`, from whichever field carried it."""
    if request.objective is not None:
        if request.target_ratio:
            raise InvalidConfiguration(
                "request carries both target_ratio and objective"
            )
        return as_objective(request.objective)
    return RatioTarget(float(request.target_ratio))


@dataclass(frozen=True)
class ServedEstimate:
    """A completed request: the estimate plus serving bookkeeping.

    ``trace_id`` is the distributed-trace id the request was served
    under (0 when tracing was off), matching ``estimate.trace_id``.
    """

    request_id: str
    dataset_key: str
    estimate: Estimate
    latency_seconds: float
    cache_hit: bool
    batch_size: int
    trace_id: int = 0


@dataclass
class _Pending:
    request: EstimateRequest
    future: Future
    submitted: float
    request_id: str
    deadline: float | None = None  # absolute, on the ``submitted`` clock
    objective: Objective | None = None
    dataset_key: str = ""


class EstimationService:
    """Batched concurrent front-end over one inference engine.

    Args:
        engine: anything exposing ``analyze(data)`` and
            ``estimate(data, ratio, analysis=...)`` — the plain or the
            guarded engine.
        workers: worker threads draining the queue.
        max_batch: cap on how many same-dataset requests one worker
            coalesces into a single batch.
        cache_entries: LRU capacity of the per-dataset analysis cache.
        latency_window: how many recent request latencies the metrics
            retain for percentile reporting.
        default_deadline: deadline (seconds) applied to requests that do
            not carry their own ``deadline_seconds``. ``None`` resolves
            from the context's :attr:`RuntimeConfig.deadline` (0 there
            means "no deadline"); an expired request fails with
            :class:`~repro.errors.DeadlineExceededError` instead of
            being served late or waited on forever.
        ctx: a :class:`~repro.runtime.RuntimeContext`; its registry (or
            the ambient installed one when no context is given) gets
            the feature-cache gauges bound.
        outcome_log: a :class:`~repro.lifecycle.OutcomeLog` every served
            estimate is recorded to (source ``"service"``); ``None``
            defaults to the context's :attr:`RuntimeContext.lifecycle`.
    """

    def __init__(
        self,
        engine,
        *,
        workers: int = 4,
        max_batch: int = 32,
        cache_entries: int = 128,
        latency_window: int = 4096,
        default_deadline: float | None = None,
        ctx=None,
        outcome_log=None,
    ) -> None:
        if workers < 1:
            raise InvalidConfiguration("service needs at least one worker")
        if max_batch < 1:
            raise InvalidConfiguration("max_batch must be >= 1")
        self.engine = engine
        self.ctx = ctx
        if outcome_log is None and ctx is not None:
            outcome_log = ctx.lifecycle
        self.outcome_log = outcome_log
        if default_deadline is None and ctx is not None:
            configured = float(getattr(ctx.config, "deadline", 0.0))
            default_deadline = configured if configured > 0 else None
        if default_deadline is not None and default_deadline <= 0:
            raise InvalidConfiguration("default_deadline must be positive")
        self.default_deadline = default_deadline
        self.max_batch = int(max_batch)
        self.cache = FeatureCache(max_entries=cache_entries, ctx=ctx)
        self._metrics = MetricsRecorder(latency_window=latency_window)
        if ctx is None:
            registry = obs.get_registry()
            if registry is not None:
                obs.bind_cache_gauges(
                    registry, "serving_feature_cache", self.cache
                )
        self._pending: OrderedDict[str, deque[_Pending]] = OrderedDict()
        self._cond = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker, daemon=True, name=f"fxrz-serve-{i}"
            )
            for i in range(int(workers))
        ]
        for thread in self._workers:
            thread.start()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_pipeline(
        cls,
        pipeline: FXRZ,
        guarded: bool = False,
        guard_options: dict | None = None,
        memo=UNSET,
        *,
        ctx=None,
        **service_options,
    ) -> "EstimationService":
        """A service over a fitted pipeline.

        ``guarded=False`` serves through the plain engine (answers
        identical to ``pipeline.estimate_config``); ``guarded=True``
        builds the robustness ladder with ``guard_options`` forwarded to
        :meth:`FXRZ.guarded`, so degradations show up in the metrics.
        ``ctx`` (a :class:`~repro.runtime.RuntimeContext`, defaulting
        to the pipeline's own) supplies the shared memo of the guarded
        engine's FRaZ rung, so fallback searches across requests share
        compressor runs. ``memo=`` is deprecated.
        """
        if not pipeline.is_fitted:
            raise NotFittedError("serve needs a fitted pipeline")
        if ctx is None:
            ctx = getattr(pipeline, "ctx", None)
        ctx = legacy_context(ctx, memo=legacy("for_pipeline", "memo", memo))
        if guarded:
            options = dict(guard_options or {})
            options.setdefault("ctx", ctx)
            engine = pipeline.guarded(**options)
        else:
            engine = InferenceEngine(
                pipeline.model, pipeline.compressor, config=pipeline.config,
                ctx=ctx,
            )
        return cls(engine, ctx=ctx, **service_options)

    # -- client API ------------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Future:
        """Queue one request; the future resolves to a :class:`ServedEstimate`."""
        future = self._enqueue(request)
        with self._cond:
            self._cond.notify()
        return future

    def submit_many(self, requests: list[EstimateRequest]) -> list[Future]:
        """Queue a whole batch before waking the workers.

        Enqueueing everything under one lock maximizes same-dataset
        coalescing: workers see the full groups, not a trickle.
        """
        futures = [self._enqueue(request) for request in requests]
        with self._cond:
            self._cond.notify_all()
        return futures

    def run_batch(
        self, requests: list[EstimateRequest], timeout: float | None = None
    ) -> list[ServedEstimate]:
        """Submit ``requests`` and wait for every result, in order.

        ``timeout`` bounds the wait for *each* future; a wait that runs
        out raises :class:`~repro.errors.DeadlineExceededError` rather
        than the bare :class:`concurrent.futures.TimeoutError`, keeping
        every timeout surface of the service under one exception type.
        """
        results = []
        for future in self.submit_many(requests):
            try:
                results.append(future.result(timeout=timeout))
            except FuturesTimeoutError as exc:
                raise DeadlineExceededError(
                    f"no result within {timeout:.3f}s wait budget"
                ) from exc
        return results

    def estimate(
        self,
        data: np.ndarray,
        target_ratio: float | None = None,
        *,
        objective=None,
    ) -> ServedEstimate:
        """Synchronous single-request convenience."""
        if objective is not None:
            request = EstimateRequest(data=data, objective=objective)
        else:
            request = EstimateRequest(
                data=data, target_ratio=float(target_ratio)
            )
        return self.submit(request).result()

    @property
    def metrics(self) -> MetricsSnapshot:
        """A frozen snapshot of the service counters."""
        return self._metrics.snapshot(cache=self.cache)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers (idempotent).

        ``drain=True`` (the default) serves everything already queued
        first. ``drain=False`` rejects every queued request immediately
        with :class:`~repro.errors.ServiceClosedError` so no caller is
        left blocked on a future that will never resolve. ``timeout``
        bounds the per-worker join either way; workers are daemons, so
        a join that times out leaks no process-exit hazard.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                rejected = [
                    item
                    for queue in self._pending.values()
                    for item in queue
                ]
                self._pending.clear()
            else:
                rejected = []
            self._cond.notify_all()
        for item in rejected:
            self._metrics.record_request(
                time.perf_counter() - item.submitted, failed=True
            )
            item.future.set_exception(
                ServiceClosedError(
                    f"estimation service closed before serving "
                    f"{item.request_id}"
                )
            )
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _dataset_key(self, request: EstimateRequest) -> str:
        if request.dataset_id:
            return f"id:{request.dataset_id}"
        stride = getattr(self.engine.config, "sampling_stride", 1)
        return dataset_fingerprint(request.data, stride=stride)

    def _enqueue(self, request: EstimateRequest) -> Future:
        objective = resolved_objective(request)  # validates at submit time
        key = self._dataset_key(request)
        future: Future = Future()
        submitted = time.perf_counter()
        relative = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.default_deadline
        )
        if relative is not None and relative <= 0:
            raise InvalidConfiguration("deadline_seconds must be positive")
        item = _Pending(
            request=request,
            future=future,
            submitted=submitted,
            request_id=request.request_id or f"req-{next(self._ids)}",
            deadline=None if relative is None else submitted + relative,
            objective=objective,
            dataset_key=key,
        )
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "estimation service is closed; no new requests accepted"
                )
            # Coalesce by (objective kind, dataset): same-dataset batches
            # share one analysis either way, but quality batches run the
            # compressor and must not head-of-line-block ratio batches.
            self._pending.setdefault(
                f"{objective.kind}|{key}", deque()
            ).append(item)
        return future

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                key, queue = next(iter(self._pending.items()))
                batch = [
                    queue.popleft()
                    for _ in range(min(len(queue), self.max_batch))
                ]
                if queue:
                    # Leftovers go to the back so other datasets get a
                    # turn before this one's next chunk.
                    self._pending.move_to_end(key)
                else:
                    del self._pending[key]
            self._serve_batch(key, batch)

    def _serve_batch(self, key: str, batch: list[_Pending]) -> None:
        self._metrics.record_batch(len(batch))
        with obs.span("serving.batch", batch_size=len(batch)):
            for item in batch:
                self._serve_one(item.dataset_key or key, item, len(batch))

    def _serve_one(self, key: str, item: _Pending, batch_size: int) -> None:
        if item.deadline is not None and time.perf_counter() > item.deadline:
            # Serving an already-expired request wastes engine time the
            # caller will never see; fail fast instead.
            self._metrics.record_request(
                time.perf_counter() - item.submitted, failed=True
            )
            item.future.set_exception(
                DeadlineExceededError(
                    f"request {item.request_id} expired in queue "
                    f"(deadline {item.deadline - item.submitted:.3f}s)"
                )
            )
            return
        objective = item.objective or resolved_objective(item.request)
        with obs.span(
            "serving.request",
            target_ratio=(
                objective.tcr if isinstance(objective, RatioTarget) else 0.0
            ),
            objective=objective.canonical,
        ) as span:
            try:
                analysis, hit = self.cache.get_or_compute(
                    key, lambda: self.engine.analyze(item.request.data)
                )
                span.set_attribute("cache_hit", hit)
                if isinstance(objective, RatioTarget):
                    estimate = self.engine.estimate(
                        item.request.data,
                        objective.tcr,
                        analysis=analysis,
                    )
                else:
                    estimate = self.engine.estimate(
                        item.request.data,
                        analysis=analysis,
                        objective=objective,
                    )
            except Exception as exc:  # noqa: BLE001 — future carries it
                latency = time.perf_counter() - item.submitted
                self._metrics.record_request(latency, failed=True)
                item.future.set_exception(exc)
                return
            span.set_attribute("tier", estimate.tier)
            latency = time.perf_counter() - item.submitted
            self._metrics.record_request(
                latency,
                tier=estimate.tier,
                analysis_seconds=estimate.analysis_seconds,
            )
            if self.outcome_log is not None:
                try:
                    self.outcome_log.record_estimate(
                        estimate,
                        dataset_key=key,
                        compressor=getattr(
                            getattr(self.engine, "compressor", None),
                            "name",
                            "",
                        ),
                        source="service",
                    )
                except OSError:
                    pass  # a full disk must not fail the request
            item.future.set_result(
                ServedEstimate(
                    request_id=item.request_id,
                    dataset_key=key,
                    estimate=estimate,
                    latency_seconds=latency,
                    cache_hit=hit,
                    batch_size=batch_size,
                )
            )
