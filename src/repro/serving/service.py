"""The in-process estimation service: batched, concurrent, cached.

FXRZ's pitch (and Table VIII's headline) is that inference is
compressor-free and cheap; this module amortizes it further for the
request-serving workload the ROADMAP targets. Clients ``submit``
individual :class:`EstimateRequest`\\ s and receive futures; a pool of
worker threads drains the queue, **coalescing requests that target the
same dataset** into one batch so the expensive per-dataset analysis
(sampled features + constant-block classification) runs once and every
target in the batch reuses it via the :class:`~repro.serving.cache.FeatureCache`.

The engine is pluggable: the plain
:class:`~repro.core.inference.InferenceEngine` gives answers identical
to direct calls, while the PR-1
:class:`~repro.robustness.guarded.GuardedInferenceEngine` plugs its
degradation ladder into the service so every curve/FRaZ fallback is
*counted* in the metrics, not just returned.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.inference import Estimate, InferenceEngine
from repro.core.pipeline import FXRZ
from repro.errors import InvalidConfiguration, NotFittedError, ReproError
from repro.runtime.compat import UNSET, legacy, legacy_context
from repro.serving.cache import FeatureCache, dataset_fingerprint
from repro.serving.metrics import MetricsRecorder, MetricsSnapshot


@dataclass
class EstimateRequest:
    """One estimation query.

    Attributes:
        data: the dataset to answer for.
        target_ratio: the requested TCR.
        request_id: caller-chosen identifier echoed in the result
            (auto-assigned ``req-N`` when empty).
        dataset_id: optional explicit dataset key; requests sharing it
            are coalesced without content-hashing the array. Leave empty
            to let the service fingerprint the sampled view.
    """

    data: np.ndarray
    target_ratio: float
    request_id: str = ""
    dataset_id: str = ""


@dataclass(frozen=True)
class ServedEstimate:
    """A completed request: the estimate plus serving bookkeeping."""

    request_id: str
    dataset_key: str
    estimate: Estimate
    latency_seconds: float
    cache_hit: bool
    batch_size: int


@dataclass
class _Pending:
    request: EstimateRequest
    future: Future
    submitted: float
    request_id: str


class EstimationService:
    """Batched concurrent front-end over one inference engine.

    Args:
        engine: anything exposing ``analyze(data)`` and
            ``estimate(data, ratio, analysis=...)`` — the plain or the
            guarded engine.
        workers: worker threads draining the queue.
        max_batch: cap on how many same-dataset requests one worker
            coalesces into a single batch.
        cache_entries: LRU capacity of the per-dataset analysis cache.
        latency_window: how many recent request latencies the metrics
            retain for percentile reporting.
        ctx: a :class:`~repro.runtime.RuntimeContext`; its registry (or
            the ambient installed one when no context is given) gets
            the feature-cache gauges bound.
    """

    def __init__(
        self,
        engine,
        *,
        workers: int = 4,
        max_batch: int = 32,
        cache_entries: int = 128,
        latency_window: int = 4096,
        ctx=None,
    ) -> None:
        if workers < 1:
            raise InvalidConfiguration("service needs at least one worker")
        if max_batch < 1:
            raise InvalidConfiguration("max_batch must be >= 1")
        self.engine = engine
        self.ctx = ctx
        self.max_batch = int(max_batch)
        self.cache = FeatureCache(max_entries=cache_entries, ctx=ctx)
        self._metrics = MetricsRecorder(latency_window=latency_window)
        if ctx is None:
            registry = obs.get_registry()
            if registry is not None:
                obs.bind_cache_gauges(
                    registry, "serving_feature_cache", self.cache
                )
        self._pending: OrderedDict[str, deque[_Pending]] = OrderedDict()
        self._cond = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker, daemon=True, name=f"fxrz-serve-{i}"
            )
            for i in range(int(workers))
        ]
        for thread in self._workers:
            thread.start()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_pipeline(
        cls,
        pipeline: FXRZ,
        guarded: bool = False,
        guard_options: dict | None = None,
        memo=UNSET,
        *,
        ctx=None,
        **service_options,
    ) -> "EstimationService":
        """A service over a fitted pipeline.

        ``guarded=False`` serves through the plain engine (answers
        identical to ``pipeline.estimate_config``); ``guarded=True``
        builds the robustness ladder with ``guard_options`` forwarded to
        :meth:`FXRZ.guarded`, so degradations show up in the metrics.
        ``ctx`` (a :class:`~repro.runtime.RuntimeContext`, defaulting
        to the pipeline's own) supplies the shared memo of the guarded
        engine's FRaZ rung, so fallback searches across requests share
        compressor runs. ``memo=`` is deprecated.
        """
        if not pipeline.is_fitted:
            raise NotFittedError("serve needs a fitted pipeline")
        if ctx is None:
            ctx = getattr(pipeline, "ctx", None)
        ctx = legacy_context(ctx, memo=legacy("for_pipeline", "memo", memo))
        if guarded:
            options = dict(guard_options or {})
            options.setdefault("ctx", ctx)
            engine = pipeline.guarded(**options)
        else:
            engine = InferenceEngine(
                pipeline.model, pipeline.compressor, config=pipeline.config,
                ctx=ctx,
            )
        return cls(engine, ctx=ctx, **service_options)

    # -- client API ------------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Future:
        """Queue one request; the future resolves to a :class:`ServedEstimate`."""
        future = self._enqueue(request)
        with self._cond:
            self._cond.notify()
        return future

    def submit_many(self, requests: list[EstimateRequest]) -> list[Future]:
        """Queue a whole batch before waking the workers.

        Enqueueing everything under one lock maximizes same-dataset
        coalescing: workers see the full groups, not a trickle.
        """
        futures = [self._enqueue(request) for request in requests]
        with self._cond:
            self._cond.notify_all()
        return futures

    def run_batch(
        self, requests: list[EstimateRequest], timeout: float | None = None
    ) -> list[ServedEstimate]:
        """Submit ``requests`` and wait for every result, in order."""
        return [
            future.result(timeout=timeout)
            for future in self.submit_many(requests)
        ]

    def estimate(self, data: np.ndarray, target_ratio: float) -> ServedEstimate:
        """Synchronous single-request convenience."""
        return self.submit(
            EstimateRequest(data=data, target_ratio=float(target_ratio))
        ).result()

    @property
    def metrics(self) -> MetricsSnapshot:
        """A frozen snapshot of the service counters."""
        return self._metrics.snapshot(cache=self.cache)

    def close(self) -> None:
        """Drain queued work, then stop the workers (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for thread in self._workers:
            thread.join()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _dataset_key(self, request: EstimateRequest) -> str:
        if request.dataset_id:
            return f"id:{request.dataset_id}"
        stride = getattr(self.engine.config, "sampling_stride", 1)
        return dataset_fingerprint(request.data, stride=stride)

    def _enqueue(self, request: EstimateRequest) -> Future:
        key = self._dataset_key(request)
        future: Future = Future()
        item = _Pending(
            request=request,
            future=future,
            submitted=time.perf_counter(),
            request_id=request.request_id or f"req-{next(self._ids)}",
        )
        with self._cond:
            if self._closed:
                raise InvalidConfiguration(
                    "estimation service is closed; no new requests accepted"
                )
            self._pending.setdefault(key, deque()).append(item)
        return future

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                key, queue = next(iter(self._pending.items()))
                batch = [
                    queue.popleft()
                    for _ in range(min(len(queue), self.max_batch))
                ]
                if queue:
                    # Leftovers go to the back so other datasets get a
                    # turn before this one's next chunk.
                    self._pending.move_to_end(key)
                else:
                    del self._pending[key]
            self._serve_batch(key, batch)

    def _serve_batch(self, key: str, batch: list[_Pending]) -> None:
        self._metrics.record_batch(len(batch))
        with obs.span("serving.batch", batch_size=len(batch)):
            for item in batch:
                self._serve_one(key, item, len(batch))

    def _serve_one(self, key: str, item: _Pending, batch_size: int) -> None:
        with obs.span(
            "serving.request",
            target_ratio=float(item.request.target_ratio),
        ) as span:
            try:
                analysis, hit = self.cache.get_or_compute(
                    key, lambda: self.engine.analyze(item.request.data)
                )
                span.set_attribute("cache_hit", hit)
                estimate = self.engine.estimate(
                    item.request.data,
                    float(item.request.target_ratio),
                    analysis=analysis,
                )
            except Exception as exc:  # noqa: BLE001 — future carries it
                latency = time.perf_counter() - item.submitted
                self._metrics.record_request(latency, failed=True)
                item.future.set_exception(exc)
                return
            span.set_attribute("tier", estimate.tier)
            latency = time.perf_counter() - item.submitted
            self._metrics.record_request(
                latency,
                tier=estimate.tier,
                analysis_seconds=estimate.analysis_seconds,
            )
            item.future.set_result(
                ServedEstimate(
                    request_id=item.request_id,
                    dataset_key=key,
                    estimate=estimate,
                    latency_seconds=latency,
                    cache_hit=hit,
                    batch_size=batch_size,
                )
            )
