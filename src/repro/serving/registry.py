"""Versioned on-disk registry of trained FXRZ pipelines.

The paper's deployment story (Sec. III-A) is that one user's training
run serves many later users; a serving process therefore needs a place
where trained models *live* — versioned, addressable, and kept warm.
The registry stores pipelines under::

    <root>/<compressor>/<corpus-fingerprint>/
        v1.fxrz
        v2.fxrz
        manifest.json        # {"latest": 2, "versions": {"1": {...}}}

Keys are the compressor name plus the training-corpus fingerprint
(:func:`~repro.core.persistence.pipeline_fingerprint`), so retraining
on the same corpus publishes a new *version* of the same entry, while a
different corpus (or different framework knobs) creates a sibling
entry. Every entry keeps a ``latest`` alias in its manifest; loads go
through :func:`~repro.core.persistence.load_pipeline` and land in a
bounded in-memory LRU so a serving process keeps its hot models
deserialized.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.objective import QualityModel
from repro.core.persistence import (
    load_pipeline,
    pipeline_fingerprint,
    save_pipeline,
)
from repro.core.pipeline import FXRZ
from repro.errors import CorruptStreamError, InvalidConfiguration

_MANIFEST = "manifest.json"
_SUFFIX = ".fxrz"
_QUALITY_SUFFIX = ".json"
_QUALITY_PREFIX = "q"
_LOCK = ".publish.lock"

#: The version alias resolving to an entry's newest published version.
LATEST = "latest"

#: A publish lock older than this is presumed abandoned (crashed holder).
_LOCK_STALE_SECONDS = 30.0

#: How long a publisher waits for a contended entry lock before failing.
_LOCK_TIMEOUT_SECONDS = 10.0


@contextlib.contextmanager
def _entry_lock(entry_dir: pathlib.Path):
    """Cross-process mutual exclusion over one registry entry.

    ``O_CREAT | O_EXCL`` makes lockfile creation atomic on every
    filesystem the registry targets; a lockfile whose mtime is older
    than :data:`_LOCK_STALE_SECONDS` is broken as abandoned (the holder
    crashed between creating it and unlinking it).
    """
    lock_path = entry_dir / _LOCK
    deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                age = time.time() - lock_path.stat().st_mtime
            except OSError:
                continue  # holder released between open() and stat()
            if age > _LOCK_STALE_SECONDS:
                with contextlib.suppress(OSError):
                    lock_path.unlink()
                continue
            if time.monotonic() >= deadline:
                raise InvalidConfiguration(
                    f"registry entry {entry_dir} is publish-locked by "
                    f"another process ({lock_path}, {age:.1f}s old)"
                ) from None
            time.sleep(0.02)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        yield
    finally:
        with contextlib.suppress(OSError):
            lock_path.unlink()


@dataclass(frozen=True)
class ModelVersion:
    """One published pipeline version."""

    compressor: str
    fingerprint: str
    version: int
    path: pathlib.Path

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.compressor, self.fingerprint, self.version)


@dataclass(frozen=True)
class QualityVersion:
    """One published quality-model artifact (``q<N>.json``).

    Lives in the *same* entry directory as the ratio models it was
    calibrated beside — one fingerprint, two artifact families — so a
    serving process resolving a model can pick up its quality companion
    without a second coordinate.
    """

    compressor: str
    fingerprint: str
    version: int
    path: pathlib.Path

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.compressor, self.fingerprint, f"q{self.version}")


class ModelRegistry:
    """Filesystem-backed model store with an in-memory LRU of hot models.

    Args:
        root: registry directory (created on first publish).
        max_loaded: how many deserialized pipelines to keep in memory;
            the least recently used is evicted past this.
        ctx: a :class:`~repro.runtime.RuntimeContext`; when it carries
            a metrics registry the LRU hit/miss/eviction gauges are
            bound there.
    """

    def __init__(
        self, root: str | pathlib.Path, max_loaded: int = 4, *, ctx=None
    ) -> None:
        if max_loaded < 1:
            raise InvalidConfiguration("max_loaded must be >= 1")
        self.root = pathlib.Path(root)
        self.max_loaded = int(max_loaded)
        self.ctx = ctx
        self._loaded: OrderedDict[tuple[str, str, int], FXRZ] = OrderedDict()
        self._lock = threading.Lock()
        self.load_hits = 0
        self.load_misses = 0
        self.evictions = 0
        if ctx is not None and ctx.registry is not None:
            metrics = ctx.registry
            hits = metrics.gauge(
                "repro_model_registry_load_hits", "in-memory model LRU hits"
            )
            misses = metrics.gauge(
                "repro_model_registry_load_misses",
                "in-memory model LRU misses (disk loads)",
            )
            evictions = metrics.gauge(
                "repro_model_registry_evictions", "in-memory model LRU evictions"
            )

            def collect() -> None:
                hits.set(self.load_hits)
                misses.set(self.load_misses)
                evictions.set(self.evictions)

            metrics.register_collector(collect)

    # -- publishing ------------------------------------------------------------

    def publish(
        self,
        pipeline: FXRZ,
        fingerprint: str | None = None,
        *,
        promote: bool = True,
    ) -> ModelVersion:
        """Persist a fitted pipeline as the entry's next version.

        With ``promote=True`` (the default) the new version becomes the
        entry's ``latest``; ``promote=False`` publishes a *candidate*
        that loads by explicit version number but leaves the alias —
        and therefore every ``latest`` serving path — untouched until
        :meth:`promote` flips it. Version allocation and the manifest
        update happen under a per-entry ``O_EXCL`` lockfile, so
        concurrent publishers (e.g. a background retrainer racing an
        operator) get distinct version numbers instead of overwriting
        each other. The published pipeline is also placed in the
        in-memory LRU, already warm.
        """
        fingerprint = fingerprint or pipeline_fingerprint(pipeline)
        entry_dir = self.root / pipeline.compressor.name / fingerprint
        entry_dir.mkdir(parents=True, exist_ok=True)
        # Serialization is the slow part; do it outside the lock into a
        # writer-unique temp file, then claim a version atomically.
        tmp = entry_dir / (
            f".publish-{os.getpid()}-{threading.get_ident()}{_SUFFIX}.tmp"
        )
        try:
            save_pipeline(pipeline, tmp)
            with _entry_lock(entry_dir):
                manifest = self._read_manifest(entry_dir)
                try:
                    latest = int(manifest.get("latest", 0))
                except (TypeError, ValueError):
                    latest = 0
                on_disk = [
                    int(p.stem[1:])
                    for p in entry_dir.glob(f"v*{_SUFFIX}")
                    if p.stem[1:].isdigit()
                ]
                # A corrupt manifest must not reset the version counter
                # and silently overwrite published artifacts; the
                # on-disk files are the ground truth for "next version".
                version = max([latest, *on_disk], default=0) + 1
                path = entry_dir / f"v{version}{_SUFFIX}"
                tmp.replace(path)
                manifest.setdefault("versions", {})[str(version)] = {
                    "n_records": len(pipeline._training.records),
                    "compressor": pipeline.compressor.name,
                }
                if promote:
                    manifest["latest"] = version
                manifest.setdefault("history", []).append(
                    {
                        "action": "publish",
                        "version": version,
                        "promoted": bool(promote),
                        "previous": latest,
                        "time": time.time(),
                    }
                )
                self._write_manifest(entry_dir, manifest)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        published = ModelVersion(
            compressor=pipeline.compressor.name,
            fingerprint=fingerprint,
            version=version,
            path=path,
        )
        with self._lock:
            self._cache_locked(published.key, pipeline)
        return published

    def promote(
        self,
        compressor: str,
        fingerprint: str | None,
        version: int,
        *,
        note: str = "",
    ) -> ModelVersion:
        """Flip the entry's ``latest`` alias to ``version``.

        The flip is recorded in the manifest history with the previous
        alias, which is what :meth:`rollback` restores. Raises
        :class:`~repro.errors.InvalidConfiguration` when the version
        does not exist on disk.
        """
        coordinate = self.resolve(compressor, fingerprint, int(version))
        entry_dir = self.root / coordinate.compressor / coordinate.fingerprint
        with _entry_lock(entry_dir):
            manifest = self._read_manifest(entry_dir)
            try:
                previous = int(manifest.get("latest", 0))
            except (TypeError, ValueError):
                previous = 0
            manifest["latest"] = coordinate.version
            manifest.setdefault("history", []).append(
                {
                    "action": "promote",
                    "version": coordinate.version,
                    "previous": previous,
                    "note": str(note),
                    "time": time.time(),
                }
            )
            self._write_manifest(entry_dir, manifest)
        return coordinate

    def rollback(
        self, compressor: str, fingerprint: str | None = None, *, note: str = ""
    ) -> ModelVersion:
        """Restore the ``latest`` alias the most recent flip replaced.

        Walks the manifest history for the promote/publish entry that
        set the current alias and restores its recorded ``previous``
        version; raises :class:`~repro.errors.InvalidConfiguration`
        when there is nothing to roll back to.
        """
        current = self.resolve(compressor, fingerprint, LATEST)
        entry_dir = self.root / current.compressor / current.fingerprint
        with _entry_lock(entry_dir):
            manifest = self._read_manifest(entry_dir)
            previous = None
            for event in reversed(manifest.get("history", [])):
                if event.get("action") not in ("publish", "promote"):
                    continue
                if event.get("action") == "publish" and not event.get(
                    "promoted", True
                ):
                    continue
                if int(event.get("version", 0)) == current.version:
                    previous = int(event.get("previous", 0))
                    break
            if previous is None or previous < 1:
                raise InvalidConfiguration(
                    f"entry {current.compressor}/{current.fingerprint} has "
                    f"no recorded version before v{current.version} to "
                    f"roll back to"
                )
            path = entry_dir / f"v{previous}{_SUFFIX}"
            if not path.is_file():
                raise InvalidConfiguration(
                    f"rollback target v{previous} of "
                    f"{current.compressor}/{current.fingerprint} is gone"
                )
            manifest["latest"] = previous
            manifest.setdefault("history", []).append(
                {
                    "action": "rollback",
                    "version": previous,
                    "previous": current.version,
                    "note": str(note),
                    "time": time.time(),
                }
            )
            self._write_manifest(entry_dir, manifest)
        return ModelVersion(
            compressor=current.compressor,
            fingerprint=current.fingerprint,
            version=previous,
            path=path,
        )

    def history(
        self, compressor: str, fingerprint: str | None = None
    ) -> list[dict]:
        """The entry's publish/promote/rollback event log, oldest first."""
        coordinate = self.resolve(compressor, fingerprint, LATEST)
        entry_dir = self.root / coordinate.compressor / coordinate.fingerprint
        history = self._read_manifest(entry_dir).get("history", [])
        return list(history) if isinstance(history, list) else []

    # -- quality artifacts -----------------------------------------------------

    def publish_quality(
        self,
        quality: QualityModel,
        compressor: str,
        fingerprint: str,
        *,
        promote: bool = True,
    ) -> QualityVersion:
        """Persist a quality model beside the entry's ratio models.

        The artifact lands in the same ``<compressor>/<fingerprint>``
        directory as ``q<N>.json``, versioned independently of the
        ratio models under the manifest's ``quality_latest`` /
        ``quality_versions`` keys, with the same per-entry lock
        discipline. Pre-objective manifests simply lack those keys, so
        old entries keep loading and serving unchanged.
        """
        entry_dir = self.root / compressor / fingerprint
        entry_dir.mkdir(parents=True, exist_ok=True)
        tmp = entry_dir / (
            f".publish-q-{os.getpid()}-{threading.get_ident()}.tmp"
        )
        try:
            quality.save(tmp)
            with _entry_lock(entry_dir):
                manifest = self._read_manifest(entry_dir)
                try:
                    latest = int(manifest.get("quality_latest", 0))
                except (TypeError, ValueError):
                    latest = 0
                on_disk = [
                    int(p.stem[1:])
                    for p in entry_dir.glob(
                        f"{_QUALITY_PREFIX}*{_QUALITY_SUFFIX}"
                    )
                    if p.stem[1:].isdigit()
                ]
                version = max([latest, *on_disk], default=0) + 1
                path = entry_dir / (
                    f"{_QUALITY_PREFIX}{version}{_QUALITY_SUFFIX}"
                )
                tmp.replace(path)
                manifest.setdefault("quality_versions", {})[str(version)] = {
                    "compressor": quality.compressor or compressor,
                    "offset_db": quality.offset_db,
                    "calibrated": quality.calibrated,
                }
                if promote:
                    manifest["quality_latest"] = version
                manifest.setdefault("history", []).append(
                    {
                        "action": "publish_quality",
                        "version": version,
                        "promoted": bool(promote),
                        "previous": latest,
                        "time": time.time(),
                    }
                )
                self._write_manifest(entry_dir, manifest)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        return QualityVersion(
            compressor=compressor,
            fingerprint=fingerprint,
            version=version,
            path=path,
        )

    def resolve_quality(
        self,
        compressor: str,
        fingerprint: str | None = None,
        version: int | str = LATEST,
    ) -> QualityVersion:
        """Resolve a quality-artifact coordinate (see :meth:`resolve`).

        Raises :class:`~repro.errors.InvalidConfiguration` when the
        entry has no published quality model — the caller should fall
        back to an uncalibrated analytic prior.
        """
        if fingerprint is None:
            fingerprint = self.resolve(compressor, None, LATEST).fingerprint
        entry_dir = self.root / compressor / fingerprint
        if not entry_dir.is_dir():
            raise InvalidConfiguration(
                f"registry has no entry {compressor}/{fingerprint}"
            )
        if version == LATEST:
            manifest = self._read_manifest(entry_dir, warn=True)
            try:
                resolved = int(manifest.get("quality_latest", 0))
            except (TypeError, ValueError):
                resolved = 0
            if resolved < 1:
                versions = sorted(
                    int(p.stem[1:])
                    for p in entry_dir.glob(
                        f"{_QUALITY_PREFIX}*{_QUALITY_SUFFIX}"
                    )
                    if p.stem[1:].isdigit()
                )
                if not versions:
                    raise InvalidConfiguration(
                        f"entry {compressor}/{fingerprint} has no "
                        f"published quality model"
                    )
                resolved = versions[-1]
        else:
            try:
                resolved = int(version)
            except (TypeError, ValueError) as exc:
                raise InvalidConfiguration(
                    f"quality version must be an integer or {LATEST!r}, "
                    f"got {version!r}"
                ) from exc
        path = entry_dir / f"{_QUALITY_PREFIX}{resolved}{_QUALITY_SUFFIX}"
        if not path.is_file():
            raise InvalidConfiguration(
                f"entry {compressor}/{fingerprint} has no quality "
                f"version {resolved}"
            )
        return QualityVersion(
            compressor=compressor,
            fingerprint=fingerprint,
            version=resolved,
            path=path,
        )

    def load_quality(
        self,
        compressor: str,
        fingerprint: str | None = None,
        version: int | str = LATEST,
    ) -> QualityModel:
        """A deserialized quality model (small JSON; no LRU needed)."""
        coordinate = self.resolve_quality(compressor, fingerprint, version)
        return QualityModel.load(coordinate.path)

    # -- lookup ----------------------------------------------------------------

    def entries(self) -> list[ModelVersion]:
        """Every published version on disk, sorted."""
        found: list[ModelVersion] = []
        if not self.root.is_dir():
            return found
        for comp_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for entry_dir in sorted(p for p in comp_dir.iterdir() if p.is_dir()):
                for path in sorted(entry_dir.glob(f"v*{_SUFFIX}")):
                    try:
                        version = int(path.stem[1:])
                    except ValueError:
                        continue
                    found.append(
                        ModelVersion(
                            compressor=comp_dir.name,
                            fingerprint=entry_dir.name,
                            version=version,
                            path=path,
                        )
                    )
        return found

    def fingerprints(self, compressor: str) -> list[str]:
        """Corpus fingerprints published for ``compressor``."""
        comp_dir = self.root / compressor
        if not comp_dir.is_dir():
            return []
        return sorted(p.name for p in comp_dir.iterdir() if p.is_dir())

    def resolve(
        self,
        compressor: str,
        fingerprint: str | None = None,
        version: int | str = LATEST,
    ) -> ModelVersion:
        """Resolve a (compressor, fingerprint, version) coordinate.

        ``fingerprint=None`` is accepted when the compressor has exactly
        one published entry; ``version`` is an integer or the
        ``"latest"`` alias.
        """
        if fingerprint is None:
            candidates = self.fingerprints(compressor)
            if not candidates:
                raise InvalidConfiguration(
                    f"registry {self.root} has no models for "
                    f"compressor {compressor!r}"
                )
            if len(candidates) > 1:
                raise InvalidConfiguration(
                    f"compressor {compressor!r} has {len(candidates)} "
                    f"entries ({', '.join(candidates)}); pass a fingerprint"
                )
            fingerprint = candidates[0]
        entry_dir = self.root / compressor / fingerprint
        if not entry_dir.is_dir():
            raise InvalidConfiguration(
                f"registry has no entry {compressor}/{fingerprint}"
            )
        if version == LATEST:
            manifest = self._read_manifest(entry_dir, warn=True)
            try:
                resolved = int(manifest.get("latest", 0))
            except (TypeError, ValueError):
                resolved = 0
            if resolved < 1:
                versions = sorted(
                    int(p.stem[1:])
                    for p in entry_dir.glob(f"v*{_SUFFIX}")
                    if p.stem[1:].isdigit()
                )
                if not versions:
                    raise InvalidConfiguration(
                        f"entry {compressor}/{fingerprint} has no versions"
                    )
                if (entry_dir / _MANIFEST).is_file():
                    warnings.warn(
                        f"registry entry {compressor}/{fingerprint}: "
                        f"manifest carries no usable 'latest' alias; "
                        f"falling back to newest on-disk version "
                        f"v{versions[-1]}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                resolved = versions[-1]
        else:
            try:
                resolved = int(version)
            except (TypeError, ValueError) as exc:
                raise InvalidConfiguration(
                    f"version must be an integer or {LATEST!r}, "
                    f"got {version!r}"
                ) from exc
        path = entry_dir / f"v{resolved}{_SUFFIX}"
        if not path.is_file():
            raise InvalidConfiguration(
                f"entry {compressor}/{fingerprint} has no version {resolved}"
            )
        return ModelVersion(
            compressor=compressor,
            fingerprint=fingerprint,
            version=resolved,
            path=path,
        )

    def load(
        self,
        compressor: str,
        fingerprint: str | None = None,
        version: int | str = LATEST,
    ) -> FXRZ:
        """A deserialized pipeline, through the in-memory LRU.

        A ``latest`` load whose resolved archive turns out corrupt
        (truncated, bit-flipped) degrades to the newest *readable*
        older version with a :class:`RuntimeWarning` instead of taking
        the serving process down; explicit integer versions still fail
        loudly — the caller asked for that exact artifact.
        """
        coordinate = self.resolve(compressor, fingerprint, version)
        with self._lock:
            cached = self._loaded.get(coordinate.key)
            if cached is not None:
                self._loaded.move_to_end(coordinate.key)
                self.load_hits += 1
                return cached
            self.load_misses += 1
        try:
            pipeline = load_pipeline(coordinate.path)
        except CorruptStreamError as exc:
            if version != LATEST:
                raise
            pipeline, coordinate = self._load_newest_readable(
                compressor, coordinate.fingerprint, coordinate.version, exc
            )
        with self._lock:
            self._cache_locked(coordinate.key, pipeline)
        return pipeline

    def _load_newest_readable(
        self,
        compressor: str,
        fingerprint: str,
        bad_version: int,
        cause: CorruptStreamError,
    ) -> tuple[FXRZ, ModelVersion]:
        """Walk versions below ``bad_version`` until one deserializes."""
        entry_dir = self.root / compressor / fingerprint
        older = sorted(
            (
                int(p.stem[1:])
                for p in entry_dir.glob(f"v*{_SUFFIX}")
                if p.stem[1:].isdigit() and int(p.stem[1:]) < bad_version
            ),
            reverse=True,
        )
        for candidate in older:
            path = entry_dir / f"v{candidate}{_SUFFIX}"
            try:
                pipeline = load_pipeline(path)
            except CorruptStreamError:
                continue
            warnings.warn(
                f"registry entry {compressor}/{fingerprint}: latest "
                f"version v{bad_version} is corrupt ({cause}); serving "
                f"older readable version v{candidate}",
                RuntimeWarning,
                stacklevel=4,
            )
            return pipeline, ModelVersion(
                compressor=compressor,
                fingerprint=fingerprint,
                version=candidate,
                path=path,
            )
        raise cause

    # -- internals -------------------------------------------------------------

    def _cache_locked(self, key: tuple[str, str, int], pipeline: FXRZ) -> None:
        self._loaded[key] = pipeline
        self._loaded.move_to_end(key)
        while len(self._loaded) > self.max_loaded:
            self._loaded.popitem(last=False)
            self.evictions += 1

    @staticmethod
    def _write_manifest(entry_dir: pathlib.Path, manifest: dict) -> None:
        """Atomic manifest replace: a reader never sees a half-write."""
        path = entry_dir / _MANIFEST
        tmp = entry_dir / f".{_MANIFEST}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(manifest, indent=2))
        tmp.replace(path)

    @staticmethod
    def _read_manifest(entry_dir: pathlib.Path, warn: bool = False) -> dict:
        path = entry_dir / _MANIFEST
        if not path.is_file():
            return {}
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            if warn:
                warnings.warn(
                    f"registry manifest {path} is unreadable ({exc}); "
                    "treating the entry as alias-less",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return {}
        return manifest if isinstance(manifest, dict) else {}
