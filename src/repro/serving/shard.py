"""Worker-process side of the sharded estimation service.

One shard is one forked process owning a warm model replica and a
serial child :class:`~repro.runtime.RuntimeContext` rebuilt from the
supervisor's :meth:`~repro.runtime.context.RuntimeContext.spec`. The
supervisor talks to it over two single-writer pipes — requests in,
replies out — because pipes survive ``Process.terminate`` cleanly: a
shard killed mid-``send`` can corrupt at most its *own* reply stream,
never a lock shared with healthy shards (the failure mode of a shared
``multiprocessing.Queue``).

Liveness is reported out-of-band through two shared doubles:

* ``beat`` — refreshed on every idle poll tick, so a shard blocked in
  its request wait still proves its event loop is alive;
* ``busy`` — the monotonic instant the in-flight request started
  (``0.0`` when idle), letting the supervisor distinguish "slow but
  working" from "wedged past the deadline".

Chaos injection (see :class:`~repro.robustness.faults.FaultSpec`) runs
*inside* the shard: per-request draws come from the shard incarnation's
seeded stream, and poison detection is keyed on the request id so the
same request kills every shard it is redelivered to. Every request
consumes a fixed-width draw (crash, hang, slow) whether or not a fault
fires, keeping the stream aligned across fault-probability settings.
"""

from __future__ import annotations

import contextlib
import os
import time
from collections import OrderedDict

from repro import obs
from repro.core.inference import InferenceEngine
from repro.core.persistence import load_pipeline
from repro.errors import ReproError
from repro.obs.trace import SpanContext, attach, detach
from repro.parallel.shm import SharedNDArray
from repro.runtime.worker import attach_worker_runtime

#: Exit code used by injected crashes, so tests can tell a chaos kill
#: from a genuine interpreter fault.
CRASH_EXIT_CODE = 3

#: Per-shard LRU capacity of cached :class:`DatasetAnalysis` results.
ANALYSIS_CACHE_ENTRIES = 32


def _send(conn, message: dict) -> None:
    """Best-effort reply; a vanished supervisor is not a shard error."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        os._exit(0)


def _apply_chaos(faults, rng, request_id: str) -> None:
    """Draw and apply this request's injected faults, if any.

    The draw is fixed-width (three uniforms) so the shard's fault
    stream stays aligned whatever mix of probabilities is enabled.
    Crashes use ``os._exit`` — an abrupt death with no teardown, which
    is exactly what the supervisor must survive.
    """
    if faults is None or not faults.has_serving_faults:
        return
    if faults.is_poison(request_id):
        os._exit(CRASH_EXIT_CODE)
    crash, hang, slow = rng.uniform(size=3)
    if crash < faults.worker_crash_prob:
        os._exit(CRASH_EXIT_CODE)
    if hang < faults.worker_hang_prob:
        # A wedge, not a crash: the loop stops beating and ``busy``
        # ages until the supervisor's hang detector kills us.
        time.sleep(faults.hang_seconds)
    if slow < faults.slow_reply_prob:
        time.sleep(faults.slow_reply_seconds)


def shard_main(
    shard: int,
    generation: int,
    spec: dict,
    req_conn,
    res_conn,
    beat,
    busy,
) -> None:
    """Entry point of one shard process (runs until ``stop`` or death).

    Args:
        shard: stable shard index (survives respawns).
        generation: incarnation counter; folded into the fault stream
            so a respawn does not replay the draws that killed it.
        spec: picklable setup — ``runtime`` (context spec), ``model_path``,
            ``guarded``/``guard_options``, optional ``faults``, and a
            ``trace`` flag turning the shard-local tracer on.
        req_conn: read end of the request pipe.
        res_conn: write end of the reply pipe.
        beat / busy: shared doubles for liveness reporting (see module
            docstring).
    """
    attach_worker_runtime({"runtime": spec.get("runtime")})
    if spec.get("trace"):
        # The shard runs its own tracer; spans ship home inside each
        # reply and re-parent under the supervisor's request span (the
        # executor re-parenting idiom, across the fork boundary). The
        # worker-runtime attach above uninstalled any inherited obs
        # state, so this install is the shard's whole obs surface.
        obs.install(tracer=obs.Tracer())
    faults = spec.get("faults")
    rng = faults.serving_rng(shard, generation) if faults is not None else None
    try:
        pipeline = load_pipeline(spec["model_path"])
        from repro.runtime.context import current_context

        ctx = current_context()
        if spec.get("guarded", True):
            options = dict(spec.get("guard_options") or {})
            options.setdefault("ctx", ctx)
            engine = pipeline.guarded(**options)
        else:
            engine = InferenceEngine(
                pipeline.model,
                pipeline.compressor,
                config=pipeline.config,
                ctx=ctx,
            )
    except Exception as exc:  # noqa: BLE001 — reported, not raised
        _send(
            res_conn,
            {
                "kind": "init_error",
                "shard": shard,
                "generation": generation,
                "error": f"{type(exc).__name__}: {exc}",
            },
        )
        return

    _send(
        res_conn,
        {
            "kind": "ready",
            "shard": shard,
            "generation": generation,
            "pid": os.getpid(),
        },
    )

    analyses: OrderedDict[str, object] = OrderedDict()
    segments: dict[str, SharedNDArray] = {}
    try:
        while True:
            beat.value = time.monotonic()
            if not req_conn.poll(0.2):
                continue
            try:
                message = req_conn.recv()
            except (EOFError, OSError):  # supervisor went away
                break
            if message.get("kind") == "stop":
                break
            if message.get("kind") != "request":  # pragma: no cover
                continue
            busy.value = time.monotonic()
            try:
                _serve(message, engine, analyses, segments, res_conn,
                       faults, rng, shard, generation)
            finally:
                busy.value = 0.0
    finally:
        for handle in segments.values():
            handle.close()


def _drained_spans(tracer) -> list | None:
    """The shard tracer's spans as picklable dicts (``None`` untraced)."""
    if tracer is None:
        return None
    return [span.to_dict() for span in tracer.drain()]


def _serve(
    message: dict,
    engine,
    analyses: OrderedDict,
    segments: dict,
    res_conn,
    faults,
    rng,
    shard: int,
    generation: int,
) -> None:
    seq = message["seq"]
    deadline = message.get("deadline") or 0.0
    tracer = obs.get_tracer()
    trace = message.get("trace")
    token = None
    if tracer is not None and trace is not None:
        # Re-parent everything this request does under the supervisor's
        # request span: the attached context makes the supervisor's
        # (trace_id, span_id) the ambient parent in this process.
        token = attach(SpanContext(int(trace[0]), int(trace[1])))
    try:
        if deadline and time.monotonic() > deadline:
            # Expired in the pipe; answering would waste engine time
            # the caller already gave up on.
            reply = {"kind": "expired", "seq": seq}
            spans = _drained_spans(tracer)
            if spans is not None:
                reply["spans"] = spans
            _send(res_conn, reply)
            return
        _apply_chaos(faults, rng, message["request_id"])
        span = (
            tracer.span(
                "shard.serve",
                shard=shard,
                generation=generation,
                request_id=message["request_id"],
            )
            if tracer is not None
            else contextlib.nullcontext(obs.NULL_SPAN)
        )
        try:
            with span as sp:
                descriptor = message["descriptor"]
                handle = segments.get(descriptor.name)
                if handle is None:
                    handle = SharedNDArray.attach(descriptor)
                    segments[descriptor.name] = handle
                data = handle.asarray()
                key = message["dataset_key"]
                analysis = analyses.get(key)
                hit = analysis is not None
                if hit:
                    analyses.move_to_end(key)
                else:
                    analysis = engine.analyze(data)
                    analyses[key] = analysis
                    while len(analyses) > ANALYSIS_CACHE_ENTRIES:
                        analyses.popitem(last=False)
                objective = message.get("objective")
                if objective and not objective.startswith("ratio:"):
                    estimate = engine.estimate(
                        data, analysis=analysis, objective=objective
                    )
                else:
                    # Ratio requests (and messages from pre-objective
                    # supervisors) take the legacy float path unchanged.
                    estimate = engine.estimate(
                        data,
                        float(message["target_ratio"]),
                        analysis=analysis,
                    )
                sp.set_attributes(
                    cache_hit=hit,
                    tier=estimate.tier,
                    objective=objective or f"ratio:{message['target_ratio']:g}",
                )
        except Exception as exc:  # noqa: BLE001 — shipped to the future
            reply = {
                "kind": "error",
                "seq": seq,
                "error": f"{type(exc).__name__}: {exc}",
                "retriable": not isinstance(exc, ReproError),
            }
            spans = _drained_spans(tracer)
            if spans is not None:
                reply["spans"] = spans
            try:
                res_conn.send({**reply, "exception": exc})
            except Exception:  # noqa: BLE001 — unpicklable exception
                _send(res_conn, reply)
            return
        reply = {
            "kind": "result",
            "seq": seq,
            "estimate": estimate,
            "cache_hit": hit,
        }
        spans = _drained_spans(tracer)
        if spans is not None:
            reply["spans"] = spans
        _send(res_conn, reply)
    finally:
        if token is not None:
            detach(token)
