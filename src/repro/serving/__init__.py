"""Estimation serving subsystem: registry, cache, batched service.

FXRZ inference is compressor-free and cheap — exactly the workload a
request-serving layer amortizes further. This package owns the full
request lifecycle:

* :class:`ModelRegistry` — versioned persisted pipelines keyed by
  compressor + training-corpus fingerprint, with a ``latest`` alias and
  an LRU of deserialized models;
* :class:`FeatureCache` / :func:`dataset_fingerprint` — content-hash a
  dataset's sampled view once, reuse its extracted features and
  non-constant block fraction across all subsequent targets;
* :class:`EstimationService` — submit :class:`EstimateRequest`\\ s
  individually, a worker pool coalesces same-dataset requests so the
  analysis runs once per batch, results come back as futures;
* :class:`MetricsSnapshot` — per-request latency, cache hit/miss
  counters, and tier/fallback counts from the guarded engine;
* :class:`ShardedEstimationService` — the fault-tolerant multi-process
  front-end: supervised worker shards with circuit breakers, bounded
  admission (load shedding), per-request deadlines, crash/hang
  detection with respawn, and a degradation-ladder fallback (see
  ``docs/ROBUSTNESS.md``).

See ``docs/API.md`` ("Estimation serving") for the on-disk registry
layout and cache keying semantics.
"""

from repro.serving.cache import FeatureCache, dataset_fingerprint
from repro.serving.metrics import MetricsRecorder, MetricsSnapshot
from repro.serving.registry import (
    LATEST,
    ModelRegistry,
    ModelVersion,
    QualityVersion,
)
from repro.serving.service import (
    EstimateRequest,
    EstimationService,
    ServedEstimate,
    resolved_objective,
)
from repro.serving.supervisor import (
    CircuitBreaker,
    ShardedEstimationService,
    SupervisorStats,
)

__all__ = [
    "CircuitBreaker",
    "EstimateRequest",
    "EstimationService",
    "FeatureCache",
    "LATEST",
    "MetricsRecorder",
    "MetricsSnapshot",
    "ModelRegistry",
    "ModelVersion",
    "QualityVersion",
    "ServedEstimate",
    "ShardedEstimationService",
    "SupervisorStats",
    "dataset_fingerprint",
    "resolved_objective",
]
