"""Digit-rounding ("bit grooming") lossy compressor.

A third error-control paradigm alongside absolute bounds and mantissa
precision: keep a number of *significant decimal digits* (Zender's Bit
Grooming / DigitRounding, widely used in climate archives via NetCDF).
The config is the digit count 1..7 (float32 carries ~7.2 decimal
digits); retention is implemented as mantissa bit masking with the bit
budget derived from the requested digits, after which the groomed
values are coded losslessly with the same exact integer-Lorenzo +
byteplane pipeline as the FPZIP-like compressor.

Registered as ``"digit"``. Like FPZIP, the knob is an integer on a
linear axis and the distortion contract is value-relative — exercising
FXRZ's compressor-agnostic handling of a third config family.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena
from repro.compressors.predictors import lorenzo_reconstruct, lorenzo_residuals
from repro.encoding import HuffmanCodec
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError, ErrorBoundViolation

_MIN_DIGITS = 1
_MAX_DIGITS = 7

#: Mantissa bits needed per decimal digit: log2(10) ~ 3.33.
_BITS_PER_DIGIT = 3.32192809488736


def _keep_bits(digits: int) -> int:
    """Mantissa bits retained for ``digits`` significant digits.

    One extra guard bit keeps the worst-case decimal rounding error
    below half an ulp of the last kept digit.
    """
    return min(23, int(np.ceil(digits * _BITS_PER_DIGIT)) + 1)


@register_compressor
class DigitRoundingCompressor(Compressor):
    """Keep N significant decimal digits, code the rest away."""

    name = "digit"
    error_mode = "precision"
    config_scale = "linear"

    def config_domain(self, array: np.ndarray | None = None) -> tuple[float, float]:
        """Valid digit counts (inclusive)."""
        return float(_MIN_DIGITS), float(_MAX_DIGITS)

    def normalize_config(self, config: float) -> float:
        snapped = int(round(config))
        if snapped < _MIN_DIGITS or snapped > _MAX_DIGITS:
            from repro.errors import InvalidConfiguration

            raise InvalidConfiguration(
                f"digits must be in [{_MIN_DIGITS}, {_MAX_DIGITS}], got {config}"
            )
        return float(snapped)

    def _verify_precision(
        self, original: np.ndarray, reconstruction: np.ndarray, config: float
    ) -> None:
        """Each value keeps ``digits`` significant decimal digits."""
        digits = int(config)
        orig32 = np.asarray(original, dtype=np.float32).astype(np.float64)
        recon = np.asarray(reconstruction).astype(np.float64)
        scale = np.maximum(np.abs(orig32), np.finfo(np.float32).tiny)
        rel = np.abs(orig32 - recon) / scale
        # Keeping k significant digits bounds relative error by
        # ~10**(1-k)/2; allow binary-truncation slack.
        limit = 10.0 ** (1 - digits)
        max_rel = float(rel.max())
        if max_rel > limit:
            raise ErrorBoundViolation(
                f"digit: max relative error {max_rel:g} exceeds "
                f"{digits}-digit limit {limit:g}"
            )

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        digits = int(config)
        drop = 23 - _keep_bits(digits)
        as_f32 = array.astype(np.float32)
        bits = as_f32.view(np.uint32)
        if drop > 0:
            # Round-to-nearest grooming: add half of the dropped range
            # before masking, clamping the carry into the exponent is
            # fine (it rounds up to the next binade's smallest value).
            half = np.uint32(1 << (drop - 1))
            mask = np.uint32(0xFFFFFFFF) << np.uint32(drop)
            magnitude = bits & np.uint32(0x7FFFFFFF)
            sign = bits & np.uint32(0x80000000)
            # Clamp the round-up carry at the largest finite magnitude
            # so values in the top binade never groom into +-inf.
            groomed = np.minimum(magnitude + half, np.uint32(0x7F7FFFFF)) & mask
            bits = sign | groomed
        signed = bits.view(np.int32).astype(np.int64)
        ordered = np.where(signed < 0, -(signed & 0x7FFFFFFF), signed & 0x7FFFFFFF)
        residuals = lorenzo_residuals(ordered)
        zz = ((residuals << 1) ^ (residuals >> 63)).astype(np.uint64).ravel()

        huffman = HuffmanCodec()
        sections = [encode_section(bytes([digits]))]
        for plane in range(5):
            plane_bytes = (
                (zz >> np.uint64(8 * plane)) & np.uint64(0xFF)
            ).astype(np.int64)
            sections.append(encode_section(huffman.encode(plane_bytes)))
        return b"".join(sections)

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 1:
            raise CorruptStreamError("bad digit-rounding header")
        huffman = HuffmanCodec()
        count = int(np.prod(blob.original_shape))
        zz = np.zeros(count, dtype=np.uint64)
        for plane in range(5):
            payload, offset = decode_section(blob.data, offset)
            plane_bytes = huffman.decode(payload)
            if plane_bytes.size != count:
                raise CorruptStreamError("digit byteplane size mismatch")
            zz |= plane_bytes.astype(np.uint64) << np.uint64(8 * plane)
        residuals = (zz >> np.uint64(1)).astype(np.int64) ^ -(
            zz & np.uint64(1)
        ).astype(np.int64)
        ordered = lorenzo_reconstruct(residuals.reshape(blob.original_shape))
        negative = ordered < 0
        magnitude = np.abs(ordered).astype(np.int64)
        as_int = np.where(negative, magnitude | np.int64(1 << 31), magnitude)
        values = as_int.astype(np.uint64).astype(np.uint32).view(np.float32)
        return values.astype(blob.original_dtype).ravel()
