"""Batched compressor kernels: scratch arenas and fused passes.

The SZ-family hot path used to materialize a fresh intermediate array
for every refinement step — residuals, scaled residuals, codes,
dequantized residuals — and concatenate per-step code fragments at the
end. This module provides the batched seam that removes those
allocations:

* :class:`KernelArena` — a pool of preallocated scratch buffers keyed
  by ``(tag, dtype)`` and grown monotonically, so a compressor reuses
  the same memory across refinement steps, across blocks, and (through
  :class:`~repro.compressors.base.CompressionStream`) across the
  timesteps of an in-situ stream.
* :class:`KernelBackend` — the fused predict→quantize→code-emit and
  code→residual→reconstruct passes behind a small registry. The
  ``"numpy"`` backend fuses each pass into in-place vector ops writing
  quantization codes straight into an arena slice; the ``"reference"``
  backend reproduces the original unfused semantics through
  :class:`~repro.compressors.quantizer.LinearQuantizer` and exists so
  parity suites can pin the fused path bit-for-bit against it. A
  numba/GPU backend drops in by registering a third implementation —
  the contract is pure ndarray-in/ndarray-out with explicit ``out``
  buffers, nothing touches Python object state inside the pass.

Both backends are bit-identical by contract: same codes, same
reconstruction, same blob bytes. ``REPRO_KERNEL_BACKEND`` selects the
process-wide default (tests use :func:`use_kernel_backend` instead).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.compressors.quantizer import LinearQuantizer
from repro.errors import CorruptStreamError, InvalidConfiguration


@dataclass(frozen=True)
class ArenaStats:
    """Counters describing how well an arena's buffers are reused.

    Attributes:
        requests: total scratch requests served.
        reuses: requests satisfied from an already-allocated buffer.
        buffers: distinct ``(tag, dtype)`` buffers held.
        nbytes: bytes currently allocated across all buffers.
    """

    requests: int
    reuses: int
    buffers: int
    nbytes: int

    @property
    def reuse_ratio(self) -> float:
        return self.reuses / self.requests if self.requests else 0.0


class KernelArena:
    """Pool of reusable scratch buffers keyed by ``(tag, dtype)``.

    Each tag owns one flat buffer that only ever grows; ``scratch``
    returns an *uninitialized* view of the requested shape carved from
    it, so repeated calls with stable shapes allocate nothing. Views
    with the same tag alias each other — callers pick distinct tags for
    buffers that must live at the same time. Not thread-safe: one arena
    belongs to one stream of compressor calls.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}
        self._requests = 0
        self._reuses = 0

    def scratch(
        self,
        tag: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """An uninitialized C-contiguous view of ``shape`` under ``tag``."""
        if isinstance(shape, int):
            shape = (shape,)
        count = 1
        for dim in shape:
            count *= int(dim)
        dtype = np.dtype(dtype)
        key = (tag, dtype.str)
        self._requests += 1
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < count:
            self._buffers[key] = buffer = np.empty(count, dtype=dtype)
        else:
            self._reuses += 1
        return buffer[:count].reshape(shape)

    def zeros(
        self,
        tag: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Like :meth:`scratch` but zero-filled."""
        view = self.scratch(tag, shape, dtype)
        view[...] = 0
        return view

    @property
    def stats(self) -> ArenaStats:
        return ArenaStats(
            requests=self._requests,
            reuses=self._reuses,
            buffers=len(self._buffers),
            nbytes=sum(b.nbytes for b in self._buffers.values()),
        )

    def clear(self) -> None:
        """Drop every buffer (counters survive for post-mortems)."""
        self._buffers.clear()


class KernelBackend:
    """Interface of the fused encode/decode passes.

    ``encode_block`` consumes a target block and its prediction and
    must (a) write the quantization codes of ``target - pred`` into
    ``codes_out`` (outliers carry the quantizer's sentinel), (b) turn
    ``pred`` into the reconstruction the decoder will also compute
    (outlier positions patched with the exact target values), and (c)
    return the outlier values in block order. ``decode_block`` is the
    inverse: codes plus the outlier tail rebuild the reconstruction
    into ``pred``. Implementations must be bit-identical to the
    ``"reference"`` backend — the parity suite enforces it.
    """

    name = "abstract"

    def encode_block(
        self,
        target: np.ndarray,
        pred: np.ndarray,
        quantizer: LinearQuantizer,
        codes_out: np.ndarray,
        arena: KernelArena,
    ) -> np.ndarray:
        raise NotImplementedError

    def decode_block(
        self,
        codes: np.ndarray,
        pred: np.ndarray,
        quantizer: LinearQuantizer,
        outliers: np.ndarray,
        out_pos: int,
        arena: KernelArena,
    ) -> int:
        """Reconstruct into ``pred``; returns outliers consumed."""
        raise NotImplementedError


class NumpyKernelBackend(KernelBackend):
    """Fused in-place vector passes (the production backend)."""

    name = "numpy"

    def encode_block(self, target, pred, quantizer, codes_out, arena):
        bin_width = quantizer.bin_width
        scaled = arena.scratch("kernel.scaled", target.shape, np.float64)
        np.subtract(target, pred, out=scaled)
        # Overflow to inf is fine: it lands in the outlier path.
        with np.errstate(over="ignore"):
            np.divide(scaled, bin_width, out=scaled)
        mask = arena.scratch("kernel.mask", target.shape, np.bool_)
        np.greater(np.abs(scaled), quantizer.max_code, out=mask)
        has_outliers = bool(mask.any())
        if has_outliers:
            # Park a finite value so the int cast below cannot trip a
            # RuntimeWarning; the sentinel overwrites it anyway.
            scaled[mask] = 0.0
        np.rint(scaled, out=scaled)
        codes_out[...] = scaled  # float64 -> int64, exact for |c| <= 2**53
        if has_outliers:
            codes_out[mask] = quantizer.sentinel
            outlier_values = target[mask].astype(np.float64, copy=True)
        else:
            outlier_values = _EMPTY_F64
        np.multiply(codes_out, bin_width, out=scaled)
        np.add(pred, scaled, out=pred)
        if has_outliers:
            pred[mask] = target[mask]
        return outlier_values

    def decode_block(self, codes, pred, quantizer, outliers, out_pos, arena):
        mask = arena.scratch("kernel.mask", codes.shape, np.bool_)
        np.equal(codes, quantizer.sentinel, out=mask)
        scaled = arena.scratch("kernel.scaled", codes.shape, np.float64)
        np.multiply(codes, quantizer.bin_width, out=scaled)
        np.add(pred, scaled, out=pred)
        n_out = int(mask.sum())
        if n_out:
            if out_pos + n_out > outliers.size:
                raise CorruptStreamError("outlier stream underflow")
            pred[mask] = outliers[out_pos : out_pos + n_out]
        return n_out


class ReferenceKernelBackend(KernelBackend):
    """The original unfused passes, kept as the parity oracle."""

    name = "reference"

    def encode_block(self, target, pred, quantizer, codes_out, arena):
        quant = quantizer.quantize(target - pred)
        codes_out[...] = quant.codes
        recon_block = pred + quant.dequantized
        recon_block[quant.outlier_mask] = target[quant.outlier_mask]
        pred[...] = recon_block
        return np.asarray(
            target[quant.outlier_mask], dtype=np.float64
        ).ravel()

    def decode_block(self, codes, pred, quantizer, outliers, out_pos, arena):
        residuals, mask = quantizer.dequantize(codes)
        recon_block = pred + residuals
        n_out = int(mask.sum())
        if out_pos + n_out > outliers.size:
            raise CorruptStreamError("outlier stream underflow")
        recon_block[mask] = outliers[out_pos : out_pos + n_out]
        pred[...] = recon_block
        return n_out


_EMPTY_F64 = np.zeros(0, dtype=np.float64)

_BACKENDS: dict[str, KernelBackend] = {}
_active_backend: KernelBackend | None = None


def register_kernel_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (numba/GPU implementations hook in here)."""
    if not isinstance(backend, KernelBackend):
        raise InvalidConfiguration("expected a KernelBackend instance")
    _BACKENDS[backend.name] = backend
    return backend


register_kernel_backend(NumpyKernelBackend())
register_kernel_backend(ReferenceKernelBackend())


def available_kernel_backends() -> list[str]:
    return sorted(_BACKENDS)


def get_kernel_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend: explicit name > active override > env > numpy."""
    if name is None:
        if _active_backend is not None:
            return _active_backend
        name = os.environ.get("REPRO_KERNEL_BACKEND", "numpy")
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_kernel_backends())
        raise InvalidConfiguration(
            f"unknown kernel backend {name!r}; available: {known}"
        ) from None


class use_kernel_backend:
    """Context manager pinning the process-wide default backend.

    >>> with use_kernel_backend("reference"):
    ...     blob = compressor.compress(data, eb)   # unfused oracle path
    """

    def __init__(self, name: str) -> None:
        self._backend = get_kernel_backend(name)
        self._previous: KernelBackend | None = None

    def __enter__(self) -> KernelBackend:
        global _active_backend
        self._previous = _active_backend
        _active_backend = self._backend
        return self._backend

    def __exit__(self, *exc) -> None:
        global _active_backend
        _active_backend = self._previous
