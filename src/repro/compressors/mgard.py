"""MGARD-like multigrid error-bounded lossy compressor.

MGARD(+) expresses a field as a hierarchy of multigrid levels: the
coefficient of a node at level ``l`` is the difference between its value
and the multilinear interpolation of the surrounding coarser-level
nodes, and coefficients are quantized with level-dependent steps before
entropy coding. This re-implementation keeps that structure:

* the same power-of-two refinement pyramid as the SZ-like compressor,
  but with strictly **linear** (multilinear, axis-factored)
  interpolation — MGARD's piecewise-linear basis;
* **level-dependent quantization**: finer levels get geometrically
  smaller bins (``eb * (1 - r) * r**depth`` with ``r = 1/2``), MGARD's
  error-budget distribution across levels, summing below ``eb``;
* coefficients are entropy coded **per level** (one Huffman stream per
  pyramid level), mirroring MGARD+'s level-grouped encoding.

Compared to the SZ-like compressor this trades prediction quality
(linear vs cubic) for finer bins at fine levels, which yields a visibly
different CR-vs-error-bound curve — exactly the behavioural difference
the paper's compressor-agnostic framework has to absorb.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena
from repro.compressors.predictors import interp_prediction_linear
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.sz import _initial_stride, _plan_steps
from repro.encoding import HuffmanCodec, zero_rle_decode, zero_rle_encode
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError

#: Geometric ratio of the per-level error budget.
_LEVEL_RATIO = 0.5


def _level_bins(error_bound: float, n_levels: int) -> list[float]:
    """Per-level quantizer bounds, coarse -> fine, each <= error_bound.

    The budget of depth ``d`` is ``eb * (1 - r) * r**d`` normalized so
    the *maximum* (not the sum) stays below ``eb`` — every point is
    quantized exactly once in the recon-based scheme, so its error is
    its own level's bin, not an accumulation.
    """
    if n_levels <= 1:
        return [error_bound]
    # Coarse levels may use the full bound; fine levels shrink so that
    # high-frequency detail is kept crisper (MGARD's s>0 flavor).
    return [
        error_bound * (_LEVEL_RATIO ** (depth / 2.0))
        for depth in range(n_levels)
    ]


@register_compressor
class MGARDCompressor(Compressor):
    """Multigrid hierarchy compressor with level-scaled quantization."""

    name = "mgard"
    error_mode = "abs"
    config_scale = "log"

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        data = array.astype(np.float64)
        mean = float(data.mean())
        recon = np.zeros_like(data)

        s0 = _initial_stride(data.shape)
        steps = _plan_steps(data.shape, s0)
        n_levels = 1 + len({step.cur for step in steps})
        bins = _level_bins(config, n_levels)

        level_codes: list[list[np.ndarray]] = [[] for _ in range(n_levels)]
        outlier_parts: list[np.ndarray] = []

        coarse_key = tuple(slice(0, None, s0) for _ in data.shape)
        quantizer = LinearQuantizer(bins[0])
        target = data[coarse_key]
        quant = quantizer.quantize(target - mean)
        recon_block = mean + quant.dequantized
        recon_block[quant.outlier_mask] = target[quant.outlier_mask]
        recon[coarse_key] = recon_block
        level_codes[0].append(quant.codes.ravel())
        outlier_parts.append(target[quant.outlier_mask].ravel())

        stride_depth = {
            cur: depth + 1
            for depth, cur in enumerate(sorted({s.cur for s in steps}, reverse=True))
        }
        for step in steps:
            depth = stride_depth[step.cur]
            quantizer = LinearQuantizer(bins[depth])
            sub_recon = recon[step.key]
            sub_data = data[step.key]
            pred = interp_prediction_linear(
                sub_recon, step.axis, step.new_idx, step.half
            )
            target = np.take(sub_data, step.new_idx, axis=step.axis)
            quant = quantizer.quantize(target - pred)
            recon_block = pred + quant.dequantized
            recon_block[quant.outlier_mask] = target[quant.outlier_mask]
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = recon_block
            level_codes[depth].append(quant.codes.ravel())
            outlier_parts.append(target[quant.outlier_mask].ravel())

        huffman = HuffmanCodec()
        header = np.array([config, mean], dtype=np.float64).tobytes() + bytes(
            [n_levels]
        )
        sections = [encode_section(header)]
        for depth in range(n_levels):
            codes = (
                np.concatenate(level_codes[depth])
                if level_codes[depth]
                else np.zeros(0, dtype=np.int64)
            )
            tokens, literals = zero_rle_encode(codes)
            sections.append(encode_section(huffman.encode(tokens)))
            sections.append(encode_section(huffman.encode(literals)))
        outliers = (
            np.concatenate(outlier_parts)
            if outlier_parts
            else np.zeros(0, dtype=np.float64)
        )
        sections.append(encode_section(outliers.astype(np.float64).tobytes()))
        return b"".join(sections)

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 17:
            raise CorruptStreamError("bad MGARD header")
        config, mean = np.frombuffer(header[:16], dtype=np.float64)
        n_levels = header[16]

        huffman = HuffmanCodec()
        level_streams: list[np.ndarray] = []
        for _ in range(n_levels):
            tokens_blob, offset = decode_section(blob.data, offset)
            literals_blob, offset = decode_section(blob.data, offset)
            level_streams.append(
                zero_rle_decode(
                    huffman.decode(tokens_blob), huffman.decode(literals_blob)
                )
            )
        outlier_blob, offset = decode_section(blob.data, offset)
        outliers = np.frombuffer(outlier_blob, dtype=np.float64)

        shape = blob.original_shape
        s0 = _initial_stride(shape)
        steps = _plan_steps(shape, s0)
        expected_levels = 1 + len({step.cur for step in steps})
        if expected_levels != n_levels:
            raise CorruptStreamError("MGARD level count mismatch")
        bins = _level_bins(float(config), n_levels)

        recon = np.zeros(shape, dtype=np.float64)
        level_pos = [0] * n_levels
        out_pos = 0

        coarse_key = tuple(slice(0, None, s0) for _ in shape)
        coarse_shape = recon[coarse_key].shape
        count = int(np.prod(coarse_shape))
        quantizer = LinearQuantizer(bins[0])
        block_codes = level_streams[0][:count].reshape(coarse_shape)
        level_pos[0] = count
        residuals, mask = quantizer.dequantize(block_codes)
        recon_block = mean + residuals
        n_out = int(mask.sum())
        recon_block[mask] = outliers[out_pos : out_pos + n_out]
        out_pos += n_out
        recon[coarse_key] = recon_block

        stride_depth = {
            cur: depth + 1
            for depth, cur in enumerate(sorted({s.cur for s in steps}, reverse=True))
        }
        for step in steps:
            depth = stride_depth[step.cur]
            quantizer = LinearQuantizer(bins[depth])
            sub_recon = recon[step.key]
            pred = interp_prediction_linear(
                sub_recon, step.axis, step.new_idx, step.half
            )
            count = pred.size
            stream = level_streams[depth]
            pos = level_pos[depth]
            if pos + count > stream.size:
                raise CorruptStreamError("MGARD code stream underflow")
            block_codes = stream[pos : pos + count].reshape(pred.shape)
            level_pos[depth] = pos + count
            residuals, mask = quantizer.dequantize(block_codes)
            recon_block = pred + residuals
            n_out = int(mask.sum())
            if out_pos + n_out > outliers.size:
                raise CorruptStreamError("MGARD outlier stream underflow")
            recon_block[mask] = outliers[out_pos : out_pos + n_out]
            out_pos += n_out
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = recon_block

        return recon.astype(blob.original_dtype).ravel()
