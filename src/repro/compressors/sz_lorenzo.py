"""Classic SZ (1.4/2.x)-style Lorenzo-predictive compressor.

Before SZ3's interpolation hierarchy, SZ predicted each point from its
already-reconstructed preceding neighbors with the Lorenzo predictor
(paper Eqs. 1-2) and quantized the residual. The data dependency makes
a naive implementation sequential, but the dependencies only ever point
to neighbors with a strictly smaller index sum — so all points on one
anti-diagonal *wavefront* (i + j + k = s) are mutually independent and
can be coded as one vectorized batch. A d-D array needs only
``sum(shape)`` wavefront steps regardless of size.

Registered as ``"sz2"``; the SZ3-style interpolation compressor
(``"sz"``) remains the default. Comparing the two reproduces the known
SZ2-vs-SZ3 trade-off on smooth fields.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena, get_kernel_backend
from repro.compressors.quantizer import LinearQuantizer
from repro.encoding import HuffmanCodec, zero_rle_decode, zero_rle_encode
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError

#: Neighbor offsets and inclusion-exclusion signs of the Lorenzo
#: predictor per rank: offset tuples subtract 1 from some axes.
def _lorenzo_stencil(ndim: int) -> list[tuple[tuple[int, ...], int]]:
    stencil = []
    for mask in range(1, 1 << ndim):
        offset = tuple((mask >> a) & 1 for a in range(ndim))
        sign = -1 if bin(mask).count("1") % 2 == 0 else 1
        stencil.append((offset, sign))
    return stencil


@lru_cache(maxsize=32)
def _wavefronts(shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Flat indices sorted by wavefront, plus wavefront boundaries.

    Returns:
        ``(order, starts)``: ``order`` holds all flat indices sorted by
        index-sum; ``starts[s] : starts[s+1]`` slices wavefront ``s``.
    """
    grids = np.indices(shape)
    sums = np.sum(grids, axis=0).ravel()
    order = np.argsort(sums, kind="stable")
    max_sum = int(sums.max())
    starts = np.searchsorted(sums[order], np.arange(max_sum + 2))
    return order.astype(np.int64), starts.astype(np.int64)


@register_compressor
class SZLorenzoCompressor(Compressor):
    """Wavefront-vectorized Lorenzo compressor (classic SZ style)."""

    name = "sz2"
    error_mode = "abs"
    config_scale = "log"

    def _traverse(
        self,
        shape: tuple[int, ...],
        quantizer: LinearQuantizer,
        data: np.ndarray | None,
        codes_in: np.ndarray | None,
        outliers_in: np.ndarray | None,
        arena: KernelArena,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared encoder/decoder wavefront sweep.

        In encode mode (``data`` given) produces codes and outlier
        values; in decode mode (``codes_in`` given) consumes them. Both
        modes build the identical reconstruction, guaranteeing
        encoder/decoder prediction agreement. Each wavefront batch runs
        through the fused kernel backend writing codes into one
        arena-backed buffer at a running offset.
        """
        ndim = len(shape)
        backend = get_kernel_backend()
        stencil = _lorenzo_stencil(ndim)
        # Zero-padded reconstruction: border cells stand in for the
        # phantom zero neighbors of SZ's convention.
        padded_shape = tuple(n + 1 for n in shape)
        recon = arena.zeros("sz2.recon", padded_shape, np.float64)
        order, starts = _wavefronts(shape)
        padded_strides = np.array(
            np.zeros(padded_shape).strides, dtype=np.int64
        ) // 8
        flat_recon = recon.ravel()
        coords = np.unravel_index(order, shape)
        # Padded-array flat position of every point, in wavefront order.
        positions = arena.zeros("sz2.positions", order.size, np.int64)
        for a in range(ndim):
            positions += (coords[a] + 1) * padded_strides[a]
        data_flat = data.ravel() if data is not None else None

        total = order.size
        codes = (
            arena.scratch("sz2.codes", total, np.int64)
            if data is not None
            else codes_in
        )
        outliers_out: list[np.ndarray] = []
        out_pos = 0
        for s in range(starts.size - 1):
            lo, hi = int(starts[s]), int(starts[s + 1])
            if lo == hi:
                continue
            base = positions[lo:hi]
            pred = arena.zeros("sz2.pred", hi - lo, np.float64)
            shifted = arena.scratch("sz2.shifted", hi - lo, np.int64)
            gather = arena.scratch("sz2.gather", hi - lo, np.float64)
            for offset, sign in stencil:
                shift = sum(
                    offset[a] * padded_strides[a] for a in range(ndim)
                )
                np.subtract(base, shift, out=shifted)
                np.take(flat_recon, shifted, out=gather)
                if sign > 0:
                    pred += gather
                else:
                    pred -= gather

            if data is not None:
                target = arena.scratch("sz2.target", hi - lo, np.float64)
                np.take(data_flat, order[lo:hi], out=target)
                block_outliers = backend.encode_block(
                    target, pred, quantizer, codes[lo:hi], arena
                )
                if block_outliers.size:
                    outliers_out.append(block_outliers)
            else:
                out_pos += backend.decode_block(
                    codes_in[lo:hi], pred, quantizer,
                    outliers_in, out_pos, arena,
                )
            flat_recon[base] = pred

        inner = tuple(slice(1, None) for _ in shape)
        result = recon[inner]
        outliers = (
            np.concatenate(outliers_out)
            if outliers_out
            else np.zeros(0, np.float64)
        )
        return result, codes if data is not None else codes_in, outliers

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        if arena is None:
            arena = KernelArena()
        data = array.astype(np.float64)
        quantizer = LinearQuantizer(config)
        _, codes, outliers = self._traverse(
            data.shape, quantizer, data, None, None, arena
        )
        huffman = HuffmanCodec()
        tokens, literals = zero_rle_encode(codes, arena=arena)
        header = np.array([config], dtype=np.float64).tobytes()
        return b"".join(
            (
                encode_section(header),
                encode_section(huffman.encode(tokens)),
                encode_section(huffman.encode(literals)),
                encode_section(outliers.astype(np.float64).tobytes()),
            )
        )

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        if arena is None:
            arena = KernelArena()
        header, offset = decode_section(blob.data, 0)
        if len(header) != 8:
            raise CorruptStreamError("bad sz2 header")
        config = float(np.frombuffer(header, dtype=np.float64)[0])
        tokens_blob, offset = decode_section(blob.data, offset)
        literals_blob, offset = decode_section(blob.data, offset)
        outlier_blob, offset = decode_section(blob.data, offset)

        huffman = HuffmanCodec()
        codes = zero_rle_decode(
            huffman.decode(tokens_blob), huffman.decode(literals_blob)
        )
        count = int(np.prod(blob.original_shape))
        if codes.size != count:
            raise CorruptStreamError("sz2 code count mismatch")
        outliers = np.frombuffer(outlier_blob, dtype=np.float64)

        quantizer = LinearQuantizer(config)
        recon, _, _ = self._traverse(
            blob.original_shape, quantizer, None, codes, outliers, arena
        )
        return recon.astype(blob.original_dtype).ravel()
