"""Classic SZ (1.4/2.x)-style Lorenzo-predictive compressor.

Before SZ3's interpolation hierarchy, SZ predicted each point from its
already-reconstructed preceding neighbors with the Lorenzo predictor
(paper Eqs. 1-2) and quantized the residual. The data dependency makes
a naive implementation sequential, but the dependencies only ever point
to neighbors with a strictly smaller index sum — so all points on one
anti-diagonal *wavefront* (i + j + k = s) are mutually independent and
can be coded as one vectorized batch. A d-D array needs only
``sum(shape)`` wavefront steps regardless of size.

Registered as ``"sz2"``; the SZ3-style interpolation compressor
(``"sz"``) remains the default. Comparing the two reproduces the known
SZ2-vs-SZ3 trade-off on smooth fields.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.quantizer import LinearQuantizer
from repro.encoding import HuffmanCodec, zero_rle_decode, zero_rle_encode
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError

#: Neighbor offsets and inclusion-exclusion signs of the Lorenzo
#: predictor per rank: offset tuples subtract 1 from some axes.
def _lorenzo_stencil(ndim: int) -> list[tuple[tuple[int, ...], int]]:
    stencil = []
    for mask in range(1, 1 << ndim):
        offset = tuple((mask >> a) & 1 for a in range(ndim))
        sign = -1 if bin(mask).count("1") % 2 == 0 else 1
        stencil.append((offset, sign))
    return stencil


@lru_cache(maxsize=32)
def _wavefronts(shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Flat indices sorted by wavefront, plus wavefront boundaries.

    Returns:
        ``(order, starts)``: ``order`` holds all flat indices sorted by
        index-sum; ``starts[s] : starts[s+1]`` slices wavefront ``s``.
    """
    grids = np.indices(shape)
    sums = np.sum(grids, axis=0).ravel()
    order = np.argsort(sums, kind="stable")
    max_sum = int(sums.max())
    starts = np.searchsorted(sums[order], np.arange(max_sum + 2))
    return order.astype(np.int64), starts.astype(np.int64)


@register_compressor
class SZLorenzoCompressor(Compressor):
    """Wavefront-vectorized Lorenzo compressor (classic SZ style)."""

    name = "sz2"
    error_mode = "abs"
    config_scale = "log"

    def _traverse(
        self,
        shape: tuple[int, ...],
        quantizer: LinearQuantizer,
        data: np.ndarray | None,
        codes_in: np.ndarray | None,
        outliers_in: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared encoder/decoder wavefront sweep.

        In encode mode (``data`` given) produces codes and outlier
        values; in decode mode (``codes_in`` given) consumes them. Both
        modes build the identical reconstruction, guaranteeing
        encoder/decoder prediction agreement.
        """
        ndim = len(shape)
        stencil = _lorenzo_stencil(ndim)
        # Zero-padded reconstruction: border cells stand in for the
        # phantom zero neighbors of SZ's convention.
        padded_shape = tuple(n + 1 for n in shape)
        recon = np.zeros(padded_shape, dtype=np.float64)
        order, starts = _wavefronts(shape)
        coords = np.unravel_index(order, shape)
        padded_strides = np.array(
            np.zeros(padded_shape).strides, dtype=np.int64
        ) // 8
        flat_recon = recon.ravel()

        codes_out: list[np.ndarray] = []
        outliers_out: list[np.ndarray] = []
        out_pos = 0
        for s in range(starts.size - 1):
            lo, hi = int(starts[s]), int(starts[s + 1])
            if lo == hi:
                continue
            idx = tuple(c[lo:hi] for c in coords)
            # Base position in the padded array (shifted by +1).
            base = np.zeros(hi - lo, dtype=np.int64)
            for a in range(ndim):
                base += (idx[a] + 1) * padded_strides[a]
            pred = np.zeros(hi - lo, dtype=np.float64)
            for offset, sign in stencil:
                shift = sum(
                    offset[a] * padded_strides[a] for a in range(ndim)
                )
                pred += sign * flat_recon[base - shift]

            if data is not None:
                target = data[idx]
                quant = quantizer.quantize(target - pred)
                recon_vals = pred + quant.dequantized
                recon_vals[quant.outlier_mask] = target[quant.outlier_mask]
                codes_out.append(quant.codes)
                outliers_out.append(target[quant.outlier_mask])
            else:
                batch = codes_in[lo:hi]
                residuals, mask = quantizer.dequantize(batch)
                recon_vals = pred + residuals
                n_out = int(mask.sum())
                if out_pos + n_out > outliers_in.size:
                    raise CorruptStreamError("sz2 outlier stream underflow")
                recon_vals[mask] = outliers_in[out_pos : out_pos + n_out]
                out_pos += n_out
            flat_recon[base] = recon_vals

        inner = tuple(slice(1, None) for _ in shape)
        result = recon[inner]
        codes = (
            np.concatenate(codes_out) if codes_out else np.zeros(0, np.int64)
        )
        outliers = (
            np.concatenate(outliers_out)
            if outliers_out
            else np.zeros(0, np.float64)
        )
        return result, codes, outliers

    # -- compression ----------------------------------------------------------

    def _compress_payload(self, array: np.ndarray, config: float) -> bytes:
        data = array.astype(np.float64)
        quantizer = LinearQuantizer(config)
        _, codes, outliers = self._traverse(
            data.shape, quantizer, data, None, None
        )
        huffman = HuffmanCodec()
        tokens, literals = zero_rle_encode(codes)
        header = np.array([config], dtype=np.float64).tobytes()
        return b"".join(
            (
                encode_section(header),
                encode_section(huffman.encode(tokens)),
                encode_section(huffman.encode(literals)),
                encode_section(outliers.astype(np.float64).tobytes()),
            )
        )

    # -- decompression --------------------------------------------------------

    def _decompress_payload(self, blob: CompressedBlob) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 8:
            raise CorruptStreamError("bad sz2 header")
        config = float(np.frombuffer(header, dtype=np.float64)[0])
        tokens_blob, offset = decode_section(blob.data, offset)
        literals_blob, offset = decode_section(blob.data, offset)
        outlier_blob, offset = decode_section(blob.data, offset)

        huffman = HuffmanCodec()
        codes = zero_rle_decode(
            huffman.decode(tokens_blob), huffman.decode(literals_blob)
        )
        count = int(np.prod(blob.original_shape))
        if codes.size != count:
            raise CorruptStreamError("sz2 code count mismatch")
        outliers = np.frombuffer(outlier_blob, dtype=np.float64)

        quantizer = LinearQuantizer(config)
        recon, _, _ = self._traverse(
            blob.original_shape, quantizer, None, codes, outliers
        )
        return recon.astype(blob.original_dtype).ravel()
