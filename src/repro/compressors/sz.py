"""SZ-like error-bounded lossy compressor.

Re-implementation of the SZ3-style interpolation compressor: a
coarse-to-fine traversal predicts each grid point from already
reconstructed points by midpoint interpolation (cubic where possible,
paper Eq. 3), quantizes the residual with linear-scaling quantization
(bin width ``2*eb``), and entropy-codes the quantization codes with
zero-run-length + Huffman coding — mirroring SZ's
prediction/quantization/Huffman(+dictionary) pipeline. The zero-RLE
layer is adaptive: when the code stream is not zero-dominated it is
skipped (header flag bit 1) and the codes are Huffman-coded directly,
halving the entropy-coding work on dense streams.

The traversal refines a power-of-two stride pyramid: at each level, each
axis in turn fills its midpoints. Because both the encoder and the
decoder update the reconstruction array with *identical* float64
operations, predictions match bit-for-bit on both sides, and the
point-wise absolute error bound holds unconditionally.

The per-step predict→quantize→code-emit pass is fused through the
batched kernel layer (:mod:`repro.compressors.kernels`): each
refinement step is one vectorized pass writing quantization codes
straight into an arena-backed code buffer at a running offset, with a
symmetric fused decode. Entropy backends: classic Huffman (default),
range coding, or cuSZ-style chunked Huffman (``entropy="chunked"``)
whose byte-aligned chunks decode in vectorized waves. The quantization
code width is exposed as ``quant_width`` (cuSZ's ``-Q`` knob): narrower
codes shrink the entropy alphabet at the cost of routing more residuals
through the outlier path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena, get_kernel_backend
from repro.compressors.predictors import (
    interp_prediction_cubic,
    interp_prediction_linear,
)
from repro.compressors.quantizer import DEFAULT_MAX_CODE, LinearQuantizer
from repro.encoding import (
    ChunkedHuffmanCodec,
    HuffmanCodec,
    zero_rle_decode,
    zero_rle_encode,
)
from repro.encoding.range_coder import RangeCoder
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError, EncodingError

#: Header byte 17 values naming the entropy backend of a blob.
_ENTROPY_TAGS = {"huffman": 0, "range": 1, "chunked": 2}
_ENTROPY_NAMES = {tag: name for name, tag in _ENTROPY_TAGS.items()}

#: ``quant_width`` bounds: at least 2 bits (one magnitude bit + sign),
#: at most the default 21-bit-magnitude code space.
_MIN_QUANT_WIDTH = 2
_MAX_QUANT_WIDTH = 22


def _entropy_codec(name: str):
    """The entropy backend: Huffman (default), range, or chunked."""
    if name == "range":
        return RangeCoder()
    if name == "chunked":
        return ChunkedHuffmanCodec()
    return HuffmanCodec()


@dataclass(frozen=True)
class _Step:
    """One refinement step: fill midpoints of ``axis`` at stride ``cur``."""

    axis: int
    cur: int
    half: int
    key: tuple[slice, ...]
    new_idx: np.ndarray


def _initial_stride(shape: tuple[int, ...]) -> int:
    """Smallest power of two >= max dimension (the pyramid root stride)."""
    stride = 1
    while stride < max(shape):
        stride *= 2
    return max(stride, 2)


def _plan_steps(shape: tuple[int, ...], s0: int) -> list[_Step]:
    """Deterministic refinement schedule shared by encoder and decoder."""
    ndim = len(shape)
    steps: list[_Step] = []
    cur = s0
    while cur >= 2:
        half = cur // 2
        for axis in range(ndim):
            new_idx = np.arange(half, shape[axis], cur, dtype=np.int64)
            if new_idx.size == 0:
                continue
            # Axes already refined at this level sit at stride `half`,
            # axes still pending sit at stride `cur`; the refined axis
            # itself is left full so interpolation can gather neighbors.
            key = tuple(
                slice(None)
                if a == axis
                else slice(0, None, half if a < axis else cur)
                for a in range(ndim)
            )
            steps.append(_Step(axis=axis, cur=cur, half=half, key=key, new_idx=new_idx))
        cur = half
    return steps


@register_compressor
class SZCompressor(Compressor):
    """Interpolation-predictive absolute-error-bounded compressor."""

    name = "sz"
    error_mode = "abs"
    config_scale = "log"

    def __init__(
        self,
        interpolation: str = "cubic",
        entropy: str = "huffman",
        quant_width: int | None = None,
    ) -> None:
        if interpolation not in ("cubic", "linear"):
            raise ValueError("interpolation must be 'cubic' or 'linear'")
        if entropy not in _ENTROPY_TAGS:
            raise ValueError(
                "entropy must be 'huffman', 'range' or 'chunked'"
            )
        if quant_width is not None and not (
            _MIN_QUANT_WIDTH <= int(quant_width) <= _MAX_QUANT_WIDTH
        ):
            raise ValueError(
                f"quant_width must be in "
                f"[{_MIN_QUANT_WIDTH}, {_MAX_QUANT_WIDTH}]"
            )
        self.interpolation = interpolation
        self.entropy = entropy
        self.quant_width = int(quant_width) if quant_width is not None else None

    def _max_code(self) -> int:
        if self.quant_width is None:
            return DEFAULT_MAX_CODE
        return (1 << (self.quant_width - 1)) - 1

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        if arena is None:
            arena = KernelArena()
        backend = get_kernel_backend()
        data = array.astype(np.float64)
        quantizer = LinearQuantizer(config, max_code=self._max_code())
        mean = float(data.mean())

        recon = arena.zeros("sz.recon", data.shape, np.float64)
        codes = arena.scratch("sz.codes", data.size, np.int64)
        outlier_parts: list[np.ndarray] = []

        s0 = _initial_stride(data.shape)
        coarse_key = tuple(slice(0, None, s0) for _ in data.shape)
        target = data[coarse_key]
        pred = arena.scratch("sz.pred", target.shape, np.float64)
        pred[...] = mean
        pos = target.size
        block_codes = codes[:pos].reshape(target.shape)
        outliers = backend.encode_block(
            target, pred, quantizer, block_codes, arena
        )
        if outliers.size:
            outlier_parts.append(outliers)
        recon[coarse_key] = pred

        predict = (
            interp_prediction_cubic
            if self.interpolation == "cubic"
            else interp_prediction_linear
        )
        for step in _plan_steps(data.shape, s0):
            sub_recon = recon[step.key]
            sub_data = data[step.key]
            pred = predict(sub_recon, step.axis, step.new_idx, step.half)
            target = arena.scratch("sz.target", pred.shape, np.float64)
            np.take(sub_data, step.new_idx, axis=step.axis, out=target)
            count = pred.size
            block_codes = codes[pos : pos + count].reshape(pred.shape)
            pos += count
            outliers = backend.encode_block(
                target, pred, quantizer, block_codes, arena
            )
            if outliers.size:
                outlier_parts.append(outliers)
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = pred

        all_outliers = (
            np.concatenate(outlier_parts)
            if outlier_parts
            else np.zeros(0, dtype=np.float64)
        )
        return self._serialize(config, mean, codes[:pos], all_outliers, arena)

    def _serialize(
        self,
        config: float,
        mean: float,
        codes: np.ndarray,
        outliers: np.ndarray,
        arena: KernelArena | None = None,
    ) -> bytes:
        # Zero-RLE only pays on sparse code streams. When most codes are
        # non-zero it nearly doubles the entropy work (tokens + literals
        # each ~n symbols), so entropy-code the codes directly instead
        # and record the choice in header flag bit 1. The decision is a
        # pure function of the codes, so fused and reference backends
        # stay bit-identical.
        direct = bool(codes.size) and 2 * int(
            np.count_nonzero(codes)
        ) >= codes.size
        if direct:
            primary, literals = codes, None
        else:
            primary, literals = zero_rle_encode(codes, arena=arena)
        entropy = self.entropy
        if entropy == "range":
            try:
                encoded = (
                    RangeCoder().encode(primary),
                    b"" if literals is None else RangeCoder().encode(literals),
                )
            except EncodingError:
                # Range coder's 2**16 alphabet cap exceeded (very small
                # bounds on rough data): Huffman handles any alphabet.
                entropy = "huffman"
        if entropy == "chunked":
            codec = ChunkedHuffmanCodec()
            encoded = (
                codec.encode(primary),
                b"" if literals is None else codec.encode(literals),
            )
        if entropy == "huffman":
            huffman = HuffmanCodec()
            encoded = (
                huffman.encode(primary),
                b"" if literals is None else huffman.encode(literals),
            )
        header = np.array([config, mean], dtype=np.float64).tobytes() + bytes(
            (
                (1 if self.interpolation == "cubic" else 0)
                | (2 if direct else 0),
                _ENTROPY_TAGS[entropy],
            )
        )
        if self.quant_width is not None:
            # Extended header: one extra byte carrying the quant-code
            # width. Blobs at the default width keep the legacy 18-byte
            # header, so existing streams stay byte-identical.
            header += bytes((self.quant_width,))
        return b"".join(
            (
                encode_section(header),
                encode_section(encoded[0]),
                encode_section(encoded[1]),
                encode_section(outliers.astype(np.float64).tobytes()),
            )
        )

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        if arena is None:
            arena = KernelArena()
        backend = get_kernel_backend()
        header, offset = decode_section(blob.data, 0)
        if len(header) not in (18, 19):
            raise CorruptStreamError("bad SZ header")
        config, mean = np.frombuffer(header[:16], dtype=np.float64)
        flags = header[16]
        if flags & ~0b11:
            raise CorruptStreamError("unknown SZ header flags")
        interpolation = "cubic" if flags & 1 else "linear"
        # Flag bit 1: quantization codes were entropy-coded directly
        # (no zero-RLE layer); legacy blobs carry 0/1 here.
        direct = bool(flags & 2)
        entropy = _ENTROPY_NAMES.get(header[17])
        if entropy is None:
            raise CorruptStreamError("unknown SZ entropy backend tag")
        codec = _entropy_codec(entropy)
        max_code = DEFAULT_MAX_CODE
        if len(header) == 19:
            quant_width = header[18]
            if not _MIN_QUANT_WIDTH <= quant_width <= _MAX_QUANT_WIDTH:
                raise CorruptStreamError("invalid SZ quant width")
            max_code = (1 << (quant_width - 1)) - 1
        tokens_blob, offset = decode_section(blob.data, offset)
        literals_blob, offset = decode_section(blob.data, offset)
        outlier_blob, offset = decode_section(blob.data, offset)

        if direct:
            codes = codec.decode(tokens_blob)
        else:
            codes = zero_rle_decode(
                codec.decode(tokens_blob), codec.decode(literals_blob)
            )
        outliers = np.frombuffer(outlier_blob, dtype=np.float64)

        shape = blob.original_shape
        quantizer = LinearQuantizer(float(config), max_code=max_code)
        recon = arena.zeros("sz.recon", shape, np.float64)
        code_pos = 0
        out_pos = 0

        s0 = _initial_stride(shape)
        coarse_key = tuple(slice(0, None, s0) for _ in shape)
        coarse_shape = recon[coarse_key].shape
        count = 1
        for dim in coarse_shape:
            count *= dim
        if count > codes.size:
            raise CorruptStreamError("SZ code stream underflow")
        block_codes = codes[:count].reshape(coarse_shape)
        code_pos = count
        pred = arena.scratch("sz.pred", coarse_shape, np.float64)
        pred[...] = mean
        n_out = backend.decode_block(
            block_codes, pred, quantizer, outliers, out_pos, arena
        )
        if out_pos + n_out > outliers.size:
            raise CorruptStreamError("SZ outlier stream underflow")
        out_pos += n_out
        recon[coarse_key] = pred

        predict = (
            interp_prediction_cubic
            if interpolation == "cubic"
            else interp_prediction_linear
        )
        for step in _plan_steps(shape, s0):
            sub_recon = recon[step.key]
            pred = predict(sub_recon, step.axis, step.new_idx, step.half)
            count = pred.size
            if code_pos + count > codes.size:
                raise CorruptStreamError("SZ code stream underflow")
            block_codes = codes[code_pos : code_pos + count].reshape(pred.shape)
            code_pos += count
            n_out = backend.decode_block(
                block_codes, pred, quantizer, outliers, out_pos, arena
            )
            if out_pos + n_out > outliers.size:
                raise CorruptStreamError("SZ outlier stream underflow")
            out_pos += n_out
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = pred

        if code_pos != codes.size:
            raise CorruptStreamError("trailing SZ quantization codes")
        return recon.astype(blob.original_dtype).ravel()
