"""SZ-like error-bounded lossy compressor.

Re-implementation of the SZ3-style interpolation compressor: a
coarse-to-fine traversal predicts each grid point from already
reconstructed points by midpoint interpolation (cubic where possible,
paper Eq. 3), quantizes the residual with linear-scaling quantization
(bin width ``2*eb``), and entropy-codes the quantization codes with
zero-run-length + Huffman coding — mirroring SZ's
prediction/quantization/Huffman(+dictionary) pipeline.

The traversal refines a power-of-two stride pyramid: at each level, each
axis in turn fills its midpoints. Because both the encoder and the
decoder update the reconstruction array with *identical* float64
operations, predictions match bit-for-bit on both sides, and the
point-wise absolute error bound holds unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.predictors import (
    interp_prediction_cubic,
    interp_prediction_linear,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.encoding import HuffmanCodec, zero_rle_decode, zero_rle_encode
from repro.encoding.range_coder import RangeCoder
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError, EncodingError


def _entropy_codec(name: str):
    """The entropy backend: Huffman (default) or range coding."""
    return RangeCoder() if name == "range" else HuffmanCodec()


@dataclass(frozen=True)
class _Step:
    """One refinement step: fill midpoints of ``axis`` at stride ``cur``."""

    axis: int
    cur: int
    half: int
    key: tuple[slice, ...]
    new_idx: np.ndarray


def _initial_stride(shape: tuple[int, ...]) -> int:
    """Smallest power of two >= max dimension (the pyramid root stride)."""
    stride = 1
    while stride < max(shape):
        stride *= 2
    return max(stride, 2)


def _plan_steps(shape: tuple[int, ...], s0: int) -> list[_Step]:
    """Deterministic refinement schedule shared by encoder and decoder."""
    ndim = len(shape)
    steps: list[_Step] = []
    cur = s0
    while cur >= 2:
        half = cur // 2
        for axis in range(ndim):
            new_idx = np.arange(half, shape[axis], cur, dtype=np.int64)
            if new_idx.size == 0:
                continue
            # Axes already refined at this level sit at stride `half`,
            # axes still pending sit at stride `cur`; the refined axis
            # itself is left full so interpolation can gather neighbors.
            key = tuple(
                slice(None)
                if a == axis
                else slice(0, None, half if a < axis else cur)
                for a in range(ndim)
            )
            steps.append(_Step(axis=axis, cur=cur, half=half, key=key, new_idx=new_idx))
        cur = half
    return steps


@register_compressor
class SZCompressor(Compressor):
    """Interpolation-predictive absolute-error-bounded compressor."""

    name = "sz"
    error_mode = "abs"
    config_scale = "log"

    def __init__(
        self, interpolation: str = "cubic", entropy: str = "huffman"
    ) -> None:
        if interpolation not in ("cubic", "linear"):
            raise ValueError("interpolation must be 'cubic' or 'linear'")
        if entropy not in ("huffman", "range"):
            raise ValueError("entropy must be 'huffman' or 'range'")
        self.interpolation = interpolation
        self.entropy = entropy

    # -- compression ----------------------------------------------------------

    def _compress_payload(self, array: np.ndarray, config: float) -> bytes:
        data = array.astype(np.float64)
        quantizer = LinearQuantizer(config)
        mean = float(data.mean())

        recon = np.zeros_like(data)
        codes_parts: list[np.ndarray] = []
        outlier_parts: list[np.ndarray] = []

        s0 = _initial_stride(data.shape)
        coarse_key = tuple(slice(0, None, s0) for _ in data.shape)
        target = data[coarse_key]
        quant = quantizer.quantize(target - mean)
        recon_block = mean + quant.dequantized
        recon_block[quant.outlier_mask] = target[quant.outlier_mask]
        recon[coarse_key] = recon_block
        codes_parts.append(quant.codes.ravel())
        outlier_parts.append(target[quant.outlier_mask].ravel())

        predict = (
            interp_prediction_cubic
            if self.interpolation == "cubic"
            else interp_prediction_linear
        )
        for step in _plan_steps(data.shape, s0):
            sub_recon = recon[step.key]
            sub_data = data[step.key]
            pred = predict(sub_recon, step.axis, step.new_idx, step.half)
            target = np.take(sub_data, step.new_idx, axis=step.axis)
            quant = quantizer.quantize(target - pred)
            recon_block = pred + quant.dequantized
            recon_block[quant.outlier_mask] = target[quant.outlier_mask]
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = recon_block
            codes_parts.append(quant.codes.ravel())
            outlier_parts.append(target[quant.outlier_mask].ravel())

        codes = np.concatenate(codes_parts)
        outliers = (
            np.concatenate(outlier_parts)
            if outlier_parts
            else np.zeros(0, dtype=np.float64)
        )
        return self._serialize(config, mean, codes, outliers)

    def _serialize(
        self,
        config: float,
        mean: float,
        codes: np.ndarray,
        outliers: np.ndarray,
    ) -> bytes:
        tokens, literals = zero_rle_encode(codes)
        entropy = self.entropy
        if entropy == "range":
            try:
                encoded = (
                    RangeCoder().encode(tokens),
                    RangeCoder().encode(literals),
                )
            except EncodingError:
                # Range coder's 2**16 alphabet cap exceeded (very small
                # bounds on rough data): Huffman handles any alphabet.
                entropy = "huffman"
        if entropy == "huffman":
            huffman = HuffmanCodec()
            encoded = (huffman.encode(tokens), huffman.encode(literals))
        header = np.array([config, mean], dtype=np.float64).tobytes() + bytes(
            (
                1 if self.interpolation == "cubic" else 0,
                1 if entropy == "range" else 0,
            )
        )
        return b"".join(
            (
                encode_section(header),
                encode_section(encoded[0]),
                encode_section(encoded[1]),
                encode_section(outliers.astype(np.float64).tobytes()),
            )
        )

    # -- decompression --------------------------------------------------------

    def _decompress_payload(self, blob: CompressedBlob) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 18:
            raise CorruptStreamError("bad SZ header")
        config, mean = np.frombuffer(header[:16], dtype=np.float64)
        interpolation = "cubic" if header[16] else "linear"
        codec = _entropy_codec("range" if header[17] else "huffman")
        tokens_blob, offset = decode_section(blob.data, offset)
        literals_blob, offset = decode_section(blob.data, offset)
        outlier_blob, offset = decode_section(blob.data, offset)

        codes = zero_rle_decode(
            codec.decode(tokens_blob), codec.decode(literals_blob)
        )
        outliers = np.frombuffer(outlier_blob, dtype=np.float64)

        shape = blob.original_shape
        quantizer = LinearQuantizer(float(config))
        recon = np.zeros(shape, dtype=np.float64)
        code_pos = 0
        out_pos = 0

        s0 = _initial_stride(shape)
        coarse_key = tuple(slice(0, None, s0) for _ in shape)
        coarse_shape = recon[coarse_key].shape
        count = int(np.prod(coarse_shape))
        block_codes = codes[code_pos : code_pos + count].reshape(coarse_shape)
        code_pos += count
        residuals, mask = quantizer.dequantize(block_codes)
        recon_block = mean + residuals
        n_out = int(mask.sum())
        recon_block[mask] = outliers[out_pos : out_pos + n_out]
        out_pos += n_out
        recon[coarse_key] = recon_block

        predict = (
            interp_prediction_cubic
            if interpolation == "cubic"
            else interp_prediction_linear
        )
        for step in _plan_steps(shape, s0):
            sub_recon = recon[step.key]
            pred = predict(sub_recon, step.axis, step.new_idx, step.half)
            count = pred.size
            if code_pos + count > codes.size:
                raise CorruptStreamError("SZ code stream underflow")
            block_codes = codes[code_pos : code_pos + count].reshape(pred.shape)
            code_pos += count
            residuals, mask = quantizer.dequantize(block_codes)
            recon_block = pred + residuals
            n_out = int(mask.sum())
            if out_pos + n_out > outliers.size:
                raise CorruptStreamError("SZ outlier stream underflow")
            recon_block[mask] = outliers[out_pos : out_pos + n_out]
            out_pos += n_out
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            recon[tuple(write_key)] = recon_block

        if code_pos != codes.size:
            raise CorruptStreamError("trailing SZ quantization codes")
        return recon.astype(blob.original_dtype).ravel()
