"""Compressor interface, result container, and registry.

Every lossy compressor in this library maps ``(array, config)`` to a
self-contained byte blob and back. ``config`` is the compressor's error
control knob — an absolute error bound for SZ/ZFP/MGARD+, an integer
mantissa precision for FPZIP — mirroring the paper's observation that
error-controlled compressors are driven by an error configuration, never
by a target ratio (Sec. III-A).
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.compressors.kernels import KernelArena
from repro.errors import (
    CompressionError,
    ErrorBoundViolation,
    InvalidConfiguration,
)


@dataclass(frozen=True)
class CompressedBlob:
    """A self-describing compressed payload.

    Attributes:
        data: the serialized compressed bytes.
        original_shape: shape of the source array.
        original_dtype: dtype name of the source array.
        compressor: name of the compressor that produced the blob.
        config: the error configuration used.
    """

    data: bytes
    original_shape: tuple[int, ...]
    original_dtype: str
    compressor: str
    config: float

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return len(self.data)

    @property
    def original_nbytes(self) -> int:
        """Uncompressed size in bytes."""
        count = 1
        for dim in self.original_shape:
            count *= dim
        return count * np.dtype(self.original_dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bytes divided by compressed bytes."""
        if self.nbytes == 0:
            raise CompressionError("empty compressed payload")
        return self.original_nbytes / self.nbytes


class Compressor(abc.ABC):
    """Abstract error-controlled lossy compressor.

    Subclasses implement :meth:`_compress_payload` and
    :meth:`_decompress_payload`; this base class handles validation,
    blob bookkeeping and the error-bound verification contract.
    """

    #: Registry name, e.g. ``"sz"``.
    name: str = "abstract"

    #: Either ``"abs"`` (config is an absolute error bound) or
    #: ``"precision"`` (config is an integer bit precision).
    error_mode: str = "abs"

    #: Scale in which the config axis is naturally traversed: ``"log"``
    #: for error bounds spanning decades, ``"linear"`` for precisions.
    config_scale: str = "log"

    def compress(
        self,
        array: np.ndarray,
        config: float,
        *,
        arena: KernelArena | None = None,
    ) -> CompressedBlob:
        """Compress ``array`` under error configuration ``config``.

        ``arena`` optionally supplies reusable scratch buffers (see
        :class:`~repro.compressors.kernels.KernelArena`); repeated calls
        with the same arena — e.g. through :class:`CompressionStream` —
        skip the per-call scratch allocations of the hot path.
        """
        array = self._validate_input(array)
        config = self.normalize_config(config)
        with obs.span(
            "compressor.compress", compressor=self.name, config=config
        ) as span:
            payload = self._compress_payload(array, config, arena)
            blob = CompressedBlob(
                data=payload,
                original_shape=array.shape,
                original_dtype=array.dtype.name,
                compressor=self.name,
                config=config,
            )
            span.set_attributes(
                ratio=blob.compression_ratio, nbytes=len(payload)
            )
        return blob

    def decompress(
        self,
        blob: CompressedBlob,
        *,
        arena: KernelArena | None = None,
    ) -> np.ndarray:
        """Reconstruct the array stored in ``blob``."""
        if blob.compressor != self.name:
            raise CompressionError(
                f"blob was produced by {blob.compressor!r}, not {self.name!r}"
            )
        with obs.span(
            "compressor.decompress", compressor=self.name, config=blob.config
        ):
            out = self._decompress_payload(blob, arena)
        return out.reshape(blob.original_shape)

    def compress_stream(
        self, arena: KernelArena | None = None
    ) -> "CompressionStream":
        """A reusable session that carries one arena across many calls.

        The intended shape for in-situ/streaming workloads: one stream
        per timestep sequence (or per sweep), so every timestep reuses
        the scratch buffers the first one allocated.
        """
        return CompressionStream(self, arena=arena)

    def compression_ratio(self, array: np.ndarray, config: float) -> float:
        """Convenience: compress and return the measured ratio."""
        return self.compress(array, config).compression_ratio

    def roundtrip(
        self, array: np.ndarray, config: float
    ) -> tuple[np.ndarray, CompressedBlob]:
        """Compress then decompress; returns ``(reconstruction, blob)``."""
        blob = self.compress(array, config)
        return self.decompress(blob), blob

    # -- identity ------------------------------------------------------------

    def cache_token(self) -> str:
        """A string identifying this compressor *instance* for caching.

        Two instances share a token exactly when they would produce
        identical blobs for identical inputs: the registry name plus
        every simple option attribute (SZ's interpolation/entropy
        choice, ZFP's mode, ...). Memo caches key on this instead of
        ``name`` so differently-configured instances never alias.
        """
        options = sorted(
            (attr, value)
            for attr, value in vars(self).items()
            if not attr.startswith("_")
            and isinstance(value, (str, int, float, bool))
        )
        if not options:
            return self.name
        suffix = ",".join(f"{attr}={value!r}" for attr, value in options)
        return f"{self.name}({suffix})"

    # -- error configuration -------------------------------------------------

    def normalize_config(self, config: float) -> float:
        """Validate/snap a raw config value to the compressor's domain."""
        if not np.isfinite(config):
            raise InvalidConfiguration(f"config must be finite, got {config}")
        if self.error_mode == "abs":
            if config <= 0:
                raise InvalidConfiguration(
                    f"absolute error bound must be > 0, got {config}"
                )
            return float(config)
        snapped = int(round(config))
        lo, hi = self.config_domain()
        if snapped < lo or snapped > hi:
            raise InvalidConfiguration(
                f"precision must be in [{lo}, {hi}], got {config}"
            )
        return float(snapped)

    def config_domain(self, array: np.ndarray | None = None) -> tuple[float, float]:
        """Valid (low, high) range of the config axis.

        For absolute-error compressors the range is value-range relative
        and requires ``array``; for precision compressors it is fixed.
        """
        if self.error_mode != "abs":
            raise NotImplementedError
        if array is None:
            raise InvalidConfiguration(
                "abs-error compressors need the array to derive a bound range"
            )
        value_range = float(np.ptp(array))
        if value_range == 0.0:
            value_range = max(abs(float(array.flat[0])), 1.0)
        # Mirrors the paper's evaluated band (1e-5..0.4 absolute on a
        # ~5.0-range field, Sec. V-C): beyond ~10 % of the value range
        # the reconstruction is visually destroyed and the CR curve
        # becomes unstable.
        return 1e-6 * value_range, 0.1 * value_range

    def verify(
        self, original: np.ndarray, reconstruction: np.ndarray, config: float
    ) -> None:
        """Raise :class:`ErrorBoundViolation` if the contract is broken."""
        if self.error_mode == "abs":
            max_err = float(np.max(np.abs(
                original.astype(np.float64) - reconstruction.astype(np.float64)
            )))
            # Storing the reconstruction in the original dtype may add up
            # to half an ulp of the largest magnitude on top of the bound.
            cast_slack = 0.0
            if np.dtype(reconstruction.dtype) == np.float32:
                cast_slack = (
                    float(np.max(np.abs(original)))
                    * float(np.finfo(np.float32).eps)
                )
            tol = config * (1.0 + 1e-6) + cast_slack + 1e-12
            if max_err > tol:
                raise ErrorBoundViolation(
                    f"{self.name}: max abs error {max_err:g} exceeds bound "
                    f"{config:g}"
                )
        else:
            self._verify_precision(original, reconstruction, config)

    def _verify_precision(
        self, original: np.ndarray, reconstruction: np.ndarray, config: float
    ) -> None:
        raise NotImplementedError

    # -- subclass hooks -------------------------------------------------------

    @abc.abstractmethod
    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        """Serialize ``array`` at ``config`` into bytes.

        ``arena`` is an optional scratch pool; implementations that do
        not batch through kernels may ignore it.
        """

    @abc.abstractmethod
    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        """Reconstruct the flat array from ``blob.data``."""

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _validate_input(array: np.ndarray) -> np.ndarray:
        array = np.asarray(array)
        if array.dtype not in (np.float32, np.float64):
            raise CompressionError(
                f"only float32/float64 arrays are supported, got {array.dtype}"
            )
        if array.size == 0:
            raise CompressionError("cannot compress an empty array")
        if array.ndim < 1 or array.ndim > 4:
            raise CompressionError("supported ranks are 1..4")
        if not np.all(np.isfinite(array)):
            raise CompressionError("input contains non-finite values")
        return np.ascontiguousarray(array)


class CompressionStream:
    """A compression session reusing one arena across many calls.

    Wraps a :class:`Compressor` so that every ``compress``/``decompress``
    shares a single :class:`~repro.compressors.kernels.KernelArena`:
    the first call sizes the scratch buffers, subsequent calls (later
    timesteps of an in-situ stream, later probes of a sweep) reuse them.
    Not thread-safe — one stream per thread of compressor calls.
    """

    def __init__(
        self, compressor: Compressor, arena: KernelArena | None = None
    ) -> None:
        self.compressor = compressor
        self.arena = arena if arena is not None else KernelArena()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompressionStream({self.compressor.name!r})"

    def compress(self, array: np.ndarray, config: float) -> CompressedBlob:
        return self.compressor.compress(array, config, arena=self.arena)

    def decompress(self, blob: CompressedBlob) -> np.ndarray:
        return self.compressor.decompress(blob, arena=self.arena)

    def compression_ratio(self, array: np.ndarray, config: float) -> float:
        return self.compress(array, config).compression_ratio

    def roundtrip(
        self, array: np.ndarray, config: float
    ) -> tuple[np.ndarray, CompressedBlob]:
        blob = self.compress(array, config)
        return self.decompress(blob), blob

    @property
    def stats(self):
        """Arena reuse counters (:class:`~repro.compressors.kernels.ArenaStats`)."""
        return self.arena.stats


def content_fingerprint(array: np.ndarray) -> str:
    """Content-hash the *full* array (shape + dtype + every byte).

    Compression outcomes depend on every point, so the memo layer
    (:mod:`repro.parallel.memo`) keys on this full-content hash — unlike
    the serving layer's sampled-view fingerprint, which only has to
    cover what feature extraction reads.
    """
    array = np.asarray(array)
    if array.size == 0:
        raise CompressionError("cannot fingerprint an empty array")
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{array.shape}|{array.dtype.str}".encode("ascii"))
    if array.flags.c_contiguous:
        # Hash the buffer in place; tobytes() would copy the array.
        digest.update(array.data)
    else:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


_REGISTRY: dict[str, type[Compressor]] = {}


def register_compressor(cls: type[Compressor]) -> type[Compressor]:
    """Class decorator adding a compressor to the global registry."""
    if not issubclass(cls, Compressor):
        raise TypeError("register_compressor expects a Compressor subclass")
    _REGISTRY[cls.name] = cls
    return cls


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by name (e.g. ``"sz"``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CompressionError(
            f"unknown compressor {name!r}; available: {known}"
        ) from None
    return cls(**kwargs)


def available_compressors() -> list[str]:
    """Names of all registered compressors, sorted."""
    return sorted(_REGISTRY)
