"""Linear-scaling quantization with an absolute error guarantee.

This is SZ's "linear-scaling quantization": a residual ``r`` is coded as
``round(r / (2*eb))`` so that dequantizing back multiplies out to within
``eb`` of the original residual. Residuals too large for the code range
are treated as *unpredictable* (SZ's outlier path): their exact values
are stored losslessly on the side and their codes carry a sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration

#: Largest representable quantization code magnitude. Codes beyond this
#: are routed to the outlier path to keep the Huffman alphabet bounded.
DEFAULT_MAX_CODE = 1 << 20


@dataclass
class QuantizedResiduals:
    """Result of quantizing one residual batch.

    Attributes:
        codes: int64 quantization codes; outliers hold ``sentinel``.
        dequantized: residuals reconstructed from codes (outliers hold 0
            and must be patched by the caller with the exact values).
        outlier_mask: boolean mask of unpredictable points.
        sentinel: the code value marking outliers.
    """

    codes: np.ndarray
    dequantized: np.ndarray
    outlier_mask: np.ndarray
    sentinel: int


class LinearQuantizer:
    """Uniform quantizer with bin width ``2 * eb``."""

    def __init__(self, error_bound: float, max_code: int = DEFAULT_MAX_CODE) -> None:
        if error_bound <= 0 or not np.isfinite(error_bound):
            raise InvalidConfiguration("error bound must be positive and finite")
        if max_code < 1:
            raise InvalidConfiguration("max_code must be >= 1")
        self.error_bound = float(error_bound)
        self.max_code = int(max_code)
        self.sentinel = self.max_code + 1

    @property
    def bin_width(self) -> float:
        return 2.0 * self.error_bound

    def quantize(self, residuals: np.ndarray) -> QuantizedResiduals:
        """Quantize residuals; |residual - dequantized| <= error_bound."""
        residuals = np.asarray(residuals, dtype=np.float64)
        # Overflow to inf is fine here: it lands in the outlier path.
        with np.errstate(over="ignore"):
            scaled = residuals / self.bin_width
        # Outliers are detected before the rint cast to avoid int overflow.
        outliers = np.abs(scaled) > self.max_code
        codes = np.zeros(residuals.shape, dtype=np.int64)
        safe = ~outliers
        codes[safe] = np.rint(scaled[safe]).astype(np.int64)
        dequantized = codes.astype(np.float64) * self.bin_width
        codes[outliers] = self.sentinel
        dequantized[outliers] = 0.0
        return QuantizedResiduals(
            codes=codes,
            dequantized=dequantized,
            outlier_mask=outliers,
            sentinel=self.sentinel,
        )

    def dequantize(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map codes back to residuals.

        Returns:
            ``(residuals, outlier_mask)``; outlier positions carry 0 and
            must be patched with the exact stored values.
        """
        codes = np.asarray(codes, dtype=np.int64)
        outliers = codes == self.sentinel
        residuals = np.where(outliers, 0, codes).astype(np.float64) * self.bin_width
        return residuals, outliers
