"""Spatial predictors shared by the compressors and the feature extractor.

* :func:`lorenzo_residuals` / :func:`lorenzo_reconstruct` — the Lorenzo
  predictor of paper Eqs. (1)-(2). The residual of the d-dimensional
  Lorenzo predictor is exactly the d-dimensional finite-difference
  operator, so its inverse is d nested cumulative sums — both directions
  are fully vectorized and, on integer arrays, exact.
* :func:`interp_prediction_linear` / :func:`interp_prediction_cubic` —
  the midpoint interpolation used by the SZ-like multilevel compressor;
  the cubic weights (-1/16, 9/16, 9/16, -1/16) are the paper's Eq. (3).
"""

from __future__ import annotations

import numpy as np


def lorenzo_residuals(array: np.ndarray) -> np.ndarray:
    """d-dimensional finite difference (Lorenzo prediction residual).

    ``residual = array - lorenzo_prediction`` where the prediction uses
    the inclusion-exclusion of the preceding-neighbor hypercube. Border
    points take phantom zero neighbors, matching SZ's convention.
    """
    residual = np.asarray(array)
    for axis in range(residual.ndim):
        residual = np.diff(residual, axis=axis, prepend=0)
    return residual


def lorenzo_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_residuals` via nested cumulative sums."""
    out = np.asarray(residuals)
    for axis in range(out.ndim):
        out = np.cumsum(out, axis=axis)
    return out


def lorenzo_prediction(array: np.ndarray) -> np.ndarray:
    """The Lorenzo prediction itself (array minus its residual)."""
    array = np.asarray(array, dtype=np.float64)
    return array - lorenzo_residuals(array)


def interp_prediction_linear(
    recon: np.ndarray, axis: int, new_idx: np.ndarray, half: int
) -> np.ndarray:
    """Linear midpoint prediction along ``axis`` at indices ``new_idx``.

    ``recon`` must already hold reconstructed values at ``new_idx - half``
    and (where in range) ``new_idx + half``; out-of-range right neighbors
    fall back to the left value.
    """
    n = recon.shape[axis]
    left = np.take(recon, new_idx - half, axis=axis)
    right_idx = np.minimum(new_idx + half, np.int64(n - 1))
    right = np.take(recon, right_idx, axis=axis)
    has_right = new_idx + half < n
    shape = [1] * recon.ndim
    shape[axis] = new_idx.size
    has_right = has_right.reshape(shape)
    return np.where(has_right, 0.5 * (left + right), left)


def interp_prediction_cubic(
    recon: np.ndarray, axis: int, new_idx: np.ndarray, half: int
) -> np.ndarray:
    """Cubic-spline midpoint prediction (paper Eq. 3) with linear fallback.

    Uses neighbors at distances -3h, -h, +h, +3h with weights
    (-1/16, 9/16, 9/16, -1/16); points lacking the outer neighbors fall
    back to :func:`interp_prediction_linear`.
    """
    n = recon.shape[axis]
    linear = interp_prediction_linear(recon, axis, new_idx, half)
    ok = (new_idx - 3 * half >= 0) & (new_idx + 3 * half < n)
    if not ok.any():
        return linear
    clip = lambda idx: np.clip(idx, 0, n - 1)  # noqa: E731 - local helper
    d_m3 = np.take(recon, clip(new_idx - 3 * half), axis=axis)
    d_m1 = np.take(recon, clip(new_idx - half), axis=axis)
    d_p1 = np.take(recon, clip(new_idx + half), axis=axis)
    d_p3 = np.take(recon, clip(new_idx + 3 * half), axis=axis)
    cubic = (-d_m3 + 9.0 * d_m1 + 9.0 * d_p1 - d_p3) / 16.0
    shape = [1] * recon.ndim
    shape[axis] = new_idx.size
    return np.where(ok.reshape(shape), cubic, linear)
