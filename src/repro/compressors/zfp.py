"""ZFP-like block-transform lossy compressor.

Re-implementation of ZFP's design skeleton: the array is cut into 4^d
blocks, each block is expressed in block-floating-point form (one shared
exponent), decorrelated with an invertible integer lifting transform,
and truncated to a per-block number of bitplanes chosen from the error
bound. Because the kept-bitplane count is an integer, the compression
ratio moves in *steps* as the error bound grows — reproducing the
stairwise CR-vs-error-bound curve the paper highlights for ZFP (Fig. 2).

Two modes mirror ZFP's:

* **fixed-accuracy** (default) — ``config`` is an absolute error bound;
  each block keeps as few bitplanes as the bound allows.
* **fixed-rate** — ``config`` is a bits-per-value rate; every block
  spends the same budget, so the compressed size is known a priori but
  the worst block dictates distortion (the reason the paper reports
  ~2x lower ratio at the same distortion level, Sec. II).

The lifting transform is a two-level S-transform (integer Haar) along
each axis; it differs from ZFP's exact lifting but shares the properties
that matter: integer-invertible, energy-compacting, bounded coefficient
growth (<= 2x per axis).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena
from repro.encoding import HuffmanCodec, pack_fixed_width, unpack_fixed_width
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError, InvalidConfiguration

#: Bits of the block-floating-point significand.
_K = 30

#: Worst-case inverse-transform error amplification per rank, including
#: slack for the integer floor operations; used to pick the per-block
#: shift conservatively so the absolute bound always holds.
_AMPLIFY = {1: 3, 2: 4, 3: 5, 4: 6}

#: Flag exponent for all-zero blocks.
_ZERO_EXP = -(1 << 14)


def _pad_to_blocks(array: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Edge-pad every axis up to a multiple of 4."""
    pad = [(0, (-n) % 4) for n in array.shape]
    if any(p[1] for p in pad):
        array = np.pad(array, pad, mode="edge")
    return array, array.shape


def _to_blocks(array: np.ndarray) -> np.ndarray:
    """(n1..nd) -> (nblocks, 4, .., 4) with C-order block raster."""
    ndim = array.ndim
    split_shape = []
    for n in array.shape:
        split_shape.extend((n // 4, 4))
    work = array.reshape(split_shape)
    perm = [2 * i for i in range(ndim)] + [2 * i + 1 for i in range(ndim)]
    work = work.transpose(perm)
    nblocks = int(np.prod(work.shape[:ndim]))
    return work.reshape((nblocks,) + (4,) * ndim)


def _from_blocks(blocks: np.ndarray, padded_shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`_to_blocks`."""
    ndim = len(padded_shape)
    grid = tuple(n // 4 for n in padded_shape)
    work = blocks.reshape(grid + (4,) * ndim)
    perm = []
    for i in range(ndim):
        perm.extend((i, ndim + i))
    work = work.transpose(perm)
    return work.reshape(padded_shape)


def _forward_lift(blocks: np.ndarray) -> np.ndarray:
    """Two-level integer S-transform along every block axis."""
    out = blocks.astype(np.int64, copy=True)
    for axis in range(1, out.ndim):
        x0, x1, x2, x3 = (np.take(out, i, axis=axis) for i in range(4))
        a0 = (x0 + x1) >> 1
        d0 = x0 - x1
        a1 = (x2 + x3) >> 1
        d1 = x2 - x3
        aa = (a0 + a1) >> 1
        da = a0 - a1
        for i, coeff in enumerate((aa, da, d0, d1)):
            idx = [slice(None)] * out.ndim
            idx[axis] = i
            out[tuple(idx)] = coeff
    return out


def _inverse_lift(blocks: np.ndarray) -> np.ndarray:
    """Invert :func:`_forward_lift` exactly."""
    out = blocks.astype(np.int64, copy=True)
    for axis in range(out.ndim - 1, 0, -1):
        aa, da, d0, d1 = (np.take(out, i, axis=axis) for i in range(4))
        a0 = aa + ((da + 1) >> 1)
        a1 = a0 - da
        x0 = a0 + ((d0 + 1) >> 1)
        x1 = x0 - d0
        x2 = a1 + ((d1 + 1) >> 1)
        x3 = x2 - d1
        for i, val in enumerate((x0, x1, x2, x3)):
            idx = [slice(None)] * out.ndim
            idx[axis] = i
            out[tuple(idx)] = val
    return out


def _coeff_groups(ndim: int) -> np.ndarray:
    """Frequency-group index (0..2) of each of the 4^d coefficients."""
    per_pos = np.array([0, 1, 2, 2], dtype=np.int64)
    grids = np.meshgrid(*([per_pos] * ndim), indexing="ij")
    return np.maximum.reduce(grids).ravel()


def _zigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    z = values.astype(np.uint64)
    return ((z >> np.uint64(1)).astype(np.int64)) ^ -(z & np.uint64(1)).astype(
        np.int64
    )


def _bit_widths(max_values: np.ndarray) -> np.ndarray:
    """Bits needed for each non-negative max value (0 -> width 0)."""
    out = np.zeros(max_values.shape, dtype=np.int64)
    nz = max_values > 0
    out[nz] = np.ceil(
        np.log2(max_values[nz].astype(np.float64) + 1.0)
    ).astype(np.int64)
    return out


@register_compressor
class ZFPCompressor(Compressor):
    """Block-transform compressor with fixed-accuracy and fixed-rate modes."""

    name = "zfp"
    error_mode = "abs"
    config_scale = "log"

    def __init__(self, mode: str = "accuracy") -> None:
        if mode not in ("accuracy", "rate"):
            raise ValueError("mode must be 'accuracy' or 'rate'")
        self.mode = mode
        if mode == "rate":
            self.error_mode = "rate"
            self.config_scale = "linear"

    def normalize_config(self, config: float) -> float:
        if self.mode == "rate":
            rate = int(round(config))
            if rate < 1 or rate > _K:
                raise InvalidConfiguration(f"rate must be in [1, {_K}] bits")
            return float(rate)
        return super().normalize_config(config)

    def config_domain(self, array: np.ndarray | None = None) -> tuple[float, float]:
        if self.mode == "rate":
            return 1.0, float(_K)
        return super().config_domain(array)

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        padded, _ = _pad_to_blocks(array.astype(np.float64))
        blocks = _to_blocks(padded)
        nblocks = blocks.shape[0]
        flat = blocks.reshape(nblocks, -1)

        max_abs = np.max(np.abs(flat), axis=1)
        exps = np.full(nblocks, _ZERO_EXP, dtype=np.int64)
        nz = max_abs > 0
        # frexp: max_abs = m * 2**e with m in [0.5, 1) => |v| <= 2**e.
        _, e = np.frexp(max_abs[nz])
        exps[nz] = e

        ints = np.zeros_like(flat, dtype=np.int64)
        # ldexp instead of multiplying by exp2(K - e): the intermediate
        # 2**(K-e) overflows to inf for subnormal-scale blocks (e below
        # ~-994) even though the product itself is bounded by 2**K.
        shift = (_K - exps[nz]).astype(np.int32)[:, None]
        ints[nz] = np.rint(np.ldexp(flat[nz], shift)).astype(np.int64)

        coeffs = _forward_lift(ints.reshape(blocks.shape)).reshape(nblocks, -1)

        shifts = self._choose_shifts(config, exps, nz, array.ndim)
        q = coeffs >> shifts[:, None]

        groups = _coeff_groups(array.ndim)
        zz = _zigzag(q)
        widths = np.zeros((3, nblocks), dtype=np.int64)
        for g in range(3):
            cols = groups == g
            if cols.any():
                widths[g] = _bit_widths(zz[:, cols].max(axis=1))
        widths[:, ~nz] = 0

        sections = [
            encode_section(
                np.array([config], dtype=np.float64).tobytes()
                + bytes([1 if self.mode == "rate" else 0, array.ndim])
            )
        ]
        huffman = HuffmanCodec()
        sections.append(encode_section(huffman.encode(exps)))
        sections.append(encode_section(huffman.encode(shifts)))
        for g in range(3):
            sections.append(encode_section(huffman.encode(widths[g])))
        for g in range(3):
            cols = np.nonzero(groups == g)[0]
            for w in np.unique(widths[g]):
                if w == 0:
                    continue
                rows = widths[g] == w
                payload = pack_fixed_width(zz[np.ix_(rows, cols)].ravel(), int(w))
                sections.append(encode_section(payload))
        return b"".join(sections)

    def _choose_shifts(
        self,
        config: float,
        exps: np.ndarray,
        nz: np.ndarray,
        ndim: int,
    ) -> np.ndarray:
        """Per-block bitplane shift implementing each mode's policy."""
        shifts = np.zeros(exps.shape, dtype=np.int64)
        if self.mode == "rate":
            # Uniform budget: keep `rate` bits of every coefficient.
            rate = int(config)
            shifts[nz] = max(0, _K + ndim + 1 - rate)
            return shifts
        amplify = _AMPLIFY[ndim]
        # Guarantee: amplify * 2**shift * 2**(e-K) <= config, i.e.
        # shift <= log2(config) + K - e - log2(amplify).
        budget = np.floor(
            np.log2(config) + _K - exps[nz].astype(np.float64) - np.log2(amplify)
        ).astype(np.int64)
        shifts[nz] = np.clip(budget, 0, _K + ndim + 1)
        return shifts

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 10:
            raise CorruptStreamError("bad ZFP header")
        ndim = header[9]
        if ndim != len(blob.original_shape):
            raise CorruptStreamError("ZFP rank mismatch")

        huffman = HuffmanCodec()
        exps_blob, offset = decode_section(blob.data, offset)
        shifts_blob, offset = decode_section(blob.data, offset)
        exps = huffman.decode(exps_blob)
        shifts = huffman.decode(shifts_blob)
        nblocks = exps.size

        widths = np.zeros((3, nblocks), dtype=np.int64)
        for g in range(3):
            w_blob, offset = decode_section(blob.data, offset)
            widths[g] = huffman.decode(w_blob)

        groups = _coeff_groups(ndim)
        ncoeff = 4**ndim
        zz = np.zeros((nblocks, ncoeff), dtype=np.uint64)
        for g in range(3):
            cols = np.nonzero(groups == g)[0]
            for w in np.unique(widths[g]):
                if w == 0:
                    continue
                rows = np.nonzero(widths[g] == w)[0]
                payload, offset = decode_section(blob.data, offset)
                count = rows.size * cols.size
                vals = unpack_fixed_width(payload, int(w), count)
                zz[np.ix_(rows, cols)] = vals.reshape(rows.size, cols.size)

        q = _unzigzag(zz)
        # Midpoint restore of the dropped low bits (floor shift biases
        # towards -inf; adding half a step recentres the error).
        half = np.where(shifts > 0, 1 << np.maximum(shifts - 1, 0), 0)
        coeffs = (q << shifts[:, None]) + np.where(q != 0, half[:, None], 0)
        ints = _inverse_lift(coeffs.reshape((nblocks,) + (4,) * ndim))
        flat = ints.reshape(nblocks, -1).astype(np.float64)

        values = np.zeros_like(flat)
        nz = exps != _ZERO_EXP
        # Mirror of the ldexp in compression: exp2(e - K) underflows to
        # 0 for subnormal-scale blocks; ldexp reconstructs exactly.
        # Overflow is only reachable with corrupted stream exponents,
        # where wrong-but-well-formed output is the decode contract.
        with np.errstate(over="ignore"):
            values[nz] = np.ldexp(
                flat[nz], (exps[nz] - _K).astype(np.int32)[:, None]
            )

        padded_shape = tuple(n + ((-n) % 4) for n in blob.original_shape)
        padded = _from_blocks(
            values.reshape((nblocks,) + (4,) * ndim), padded_shape
        )
        crop = tuple(slice(0, n) for n in blob.original_shape)
        return padded[crop].astype(blob.original_dtype).ravel()
