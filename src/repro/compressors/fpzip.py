"""FPZIP-like precision-controlled lossy compressor.

FPZIP controls distortion through an integer *precision* parameter — the
number of significant bits kept per value (Sec. V-A3: "an integer from 1
to 32 corresponding to different numbers of significant mantissa bits").
This re-implementation mirrors that contract:

1. Values are mapped to float32 and their low ``32 - p`` bits are
   truncated, bounding the *relative* error by ``2**-(p - 9)`` of each
   value's own magnitude (sign + 8 exponent bits precede the mantissa).
2. The truncated values are coded **losslessly**: the IEEE bit patterns
   are mapped to monotonically ordered integers, the d-dimensional
   Lorenzo residual (an exact integer finite difference) is taken, and
   residual byteplanes are entropy coded. Truncation makes residuals
   sparse in their low byteplanes, which is where the ratio comes from.

Because step 2 is exact, the decoder recovers the truncated values
bit-for-bit, so the precision guarantee is unconditional.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor, register_compressor
from repro.compressors.kernels import KernelArena
from repro.compressors.predictors import lorenzo_reconstruct, lorenzo_residuals
from repro.encoding import HuffmanCodec
from repro.encoding.varint import decode_section, encode_section
from repro.errors import CorruptStreamError, ErrorBoundViolation

_MIN_PRECISION = 10
_MAX_PRECISION = 32


def _float_to_ordered(bits: np.ndarray) -> np.ndarray:
    """Map IEEE-754 bit patterns to order-preserving signed ints."""
    as_int = bits.view(np.int32).astype(np.int64)
    negative = as_int < 0
    # Negative floats sort inversely in two's complement; flip them.
    return np.where(negative, -(as_int & 0x7FFFFFFF), as_int & 0x7FFFFFFF)


def _ordered_to_float(ordered: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_float_to_ordered`."""
    negative = ordered < 0
    magnitude = np.abs(ordered).astype(np.int64)
    as_int = np.where(negative, magnitude | np.int64(1 << 31), magnitude)
    return as_int.astype(np.uint64).astype(np.uint32).view(np.float32)


@register_compressor
class FPZIPCompressor(Compressor):
    """Precision-parameterized predictive compressor."""

    name = "fpzip"
    error_mode = "precision"
    config_scale = "linear"

    def config_domain(self, array: np.ndarray | None = None) -> tuple[float, float]:
        """Valid precision range (inclusive)."""
        return float(_MIN_PRECISION), float(_MAX_PRECISION)

    def _verify_precision(
        self, original: np.ndarray, reconstruction: np.ndarray, config: float
    ) -> None:
        """Relative per-value bound from mantissa truncation."""
        precision = int(config)
        drop = min(max(0, _MAX_PRECISION - precision), 23)
        orig32 = np.asarray(original, dtype=np.float32).astype(np.float64)
        recon = np.asarray(reconstruction).astype(np.float64)
        # Zeroing `drop` mantissa bits changes a value by at most
        # 2**drop ulps of its own exponent; one float32 ulp is 2**-23
        # of the value's power-of-two bracket.
        scale = np.maximum(np.abs(orig32), np.finfo(np.float32).tiny)
        rel = np.abs(orig32 - recon) / scale
        limit = 2.0 ** (drop - 23 + 1)
        max_rel = float(rel.max())
        if max_rel > limit:
            raise ErrorBoundViolation(
                f"fpzip: max relative error {max_rel:g} exceeds "
                f"precision-{precision} limit {limit:g}"
            )

    # -- compression ----------------------------------------------------------

    def _compress_payload(
        self,
        array: np.ndarray,
        config: float,
        arena: KernelArena | None = None,
    ) -> bytes:
        precision = int(config)
        drop = min(max(0, _MAX_PRECISION - precision), 23)
        as_f32 = array.astype(np.float32)
        bits = as_f32.view(np.uint32)
        if drop:
            mask = np.uint32(0xFFFFFFFF) << np.uint32(drop)
            bits = bits & mask
        ordered = _float_to_ordered(bits)
        residuals = lorenzo_residuals(ordered)
        # Zigzag to unsigned; residual magnitudes fit in ~36 bits.
        zz = ((residuals << 1) ^ (residuals >> 63)).astype(np.uint64).ravel()

        huffman = HuffmanCodec()
        sections = [encode_section(bytes([precision]))]
        # Five byteplanes cover the 33-bit zigzag range; high planes are
        # almost entirely zero and RLE away inside Huffman.
        for plane in range(5):
            plane_bytes = ((zz >> np.uint64(8 * plane)) & np.uint64(0xFF)).astype(
                np.int64
            )
            sections.append(encode_section(huffman.encode(plane_bytes)))
        return b"".join(sections)

    # -- decompression --------------------------------------------------------

    def _decompress_payload(
        self, blob: CompressedBlob, arena: KernelArena | None = None
    ) -> np.ndarray:
        header, offset = decode_section(blob.data, 0)
        if len(header) != 1:
            raise CorruptStreamError("bad FPZIP header")

        huffman = HuffmanCodec()
        count = int(np.prod(blob.original_shape))
        zz = np.zeros(count, dtype=np.uint64)
        for plane in range(5):
            payload, offset = decode_section(blob.data, offset)
            plane_bytes = huffman.decode(payload)
            if plane_bytes.size != count:
                raise CorruptStreamError("FPZIP byteplane size mismatch")
            zz |= plane_bytes.astype(np.uint64) << np.uint64(8 * plane)

        residuals = (zz >> np.uint64(1)).astype(np.int64) ^ -(
            zz & np.uint64(1)
        ).astype(np.int64)
        ordered = lorenzo_reconstruct(residuals.reshape(blob.original_shape))
        values = _ordered_to_float(ordered)
        return values.astype(blob.original_dtype).ravel()
