"""Error-controlled lossy compressors.

Pure-Python/numpy re-implementations of the four compressor families the
paper evaluates (Sec. V-A3):

* :class:`~repro.compressors.sz.SZCompressor` — interpolation-predictive,
  absolute-error-bounded (SZ3-style).
* :class:`~repro.compressors.zfp.ZFPCompressor` — block-transform with
  bitplane truncation (fixed-accuracy) plus a fixed-rate mode.
* :class:`~repro.compressors.fpzip.FPZIPCompressor` — mantissa-precision
  controlled predictive coder.
* :class:`~repro.compressors.mgard.MGARDCompressor` — multigrid/wavelet
  hierarchy, absolute-error-bounded.

All share the :class:`~repro.compressors.base.Compressor` interface and
are registered in a global registry keyed by name.
"""

from repro.compressors.base import (
    CompressedBlob,
    CompressionStream,
    Compressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.kernels import (
    ArenaStats,
    KernelArena,
    KernelBackend,
    available_kernel_backends,
    get_kernel_backend,
    register_kernel_backend,
    use_kernel_backend,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.sz import SZCompressor
from repro.compressors.sz_lorenzo import SZLorenzoCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.compressors.fpzip import FPZIPCompressor
from repro.compressors.mgard import MGARDCompressor
from repro.compressors.digit_rounding import DigitRoundingCompressor

__all__ = [
    "ArenaStats",
    "CompressedBlob",
    "CompressionStream",
    "Compressor",
    "KernelArena",
    "KernelBackend",
    "LinearQuantizer",
    "available_kernel_backends",
    "get_kernel_backend",
    "register_kernel_backend",
    "use_kernel_backend",
    "SZCompressor",
    "SZLorenzoCompressor",
    "ZFPCompressor",
    "FPZIPCompressor",
    "MGARDCompressor",
    "DigitRoundingCompressor",
    "available_compressors",
    "get_compressor",
    "register_compressor",
]
