"""Turning a span log into a per-phase cost table.

This is the analytical half of the tracing story: given spans (live
from a :class:`~repro.obs.trace.Tracer` or re-read from a JSONL export)
it aggregates same-named siblings into one node per phase and renders
the Table-8-style cost breakdown — where did the wall time of an
estimate go, phase by phase, with call counts, CPU time and self time
(wall minus children, i.e. time spent in the phase's own code).

:func:`tree_shape` reduces a span list to a canonical nested tuple used
by the parity tests: serial and process-pool runs of the same work must
produce the same shape.
"""

from __future__ import annotations

import json

from repro.obs.trace import Span


def load_trace(path) -> list:
    """Read spans back from a JSONL export (blank lines skipped)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def _index(spans):
    """children-by-parent-id map plus the set of root spans.

    A span whose parent never finished into this log (e.g. the ambient
    context of a worker whose driver span lives in another file) counts
    as a root — the report must not silently drop orphans.
    """
    by_id = {span.span_id: span for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return children, roots


def cost_tree(spans) -> dict:
    """Aggregate spans into one node per (path, name) phase.

    Returns the virtual root ``{"name": "total", ...}`` whose children
    are the aggregated top-level phases. Node fields: ``name``,
    ``count``, ``wall_seconds``, ``cpu_seconds``, ``self_seconds``
    (wall minus aggregated children), ``errors``, ``children`` (list,
    sorted by wall descending).
    """
    children_of, roots = _index(spans)

    def aggregate(group, depth=0):
        nodes: dict = {}
        for span in group:
            node = nodes.get(span.name)
            if node is None:
                node = {
                    "name": span.name,
                    "count": 0,
                    "wall_seconds": 0.0,
                    "cpu_seconds": 0.0,
                    "errors": 0,
                    "_children_spans": [],
                }
                nodes[span.name] = node
            node["count"] += 1
            node["wall_seconds"] += span.wall_seconds
            node["cpu_seconds"] += span.cpu_seconds
            if span.status == "error":
                node["errors"] += 1
            node["_children_spans"].extend(
                children_of.get(span.span_id, ())
            )
        out = []
        for node in nodes.values():
            child_spans = node.pop("_children_spans")
            node["children"] = aggregate(child_spans, depth + 1)
            child_wall = sum(
                c["wall_seconds"] for c in node["children"]
            )
            node["self_seconds"] = max(
                node["wall_seconds"] - child_wall, 0.0
            )
            out.append(node)
        out.sort(key=lambda n: (-n["wall_seconds"], n["name"]))
        return out

    top = aggregate(roots)
    total_wall = sum(node["wall_seconds"] for node in top)
    return {
        "name": "total",
        "count": len(roots),
        "wall_seconds": total_wall,
        "cpu_seconds": sum(node["cpu_seconds"] for node in top),
        "self_seconds": 0.0,
        "errors": sum(node["errors"] for node in top),
        "children": top,
    }


def render_cost_tree(spans, min_fraction: float = 0.0) -> str:
    """The human-readable per-phase cost table.

    ``min_fraction`` hides phases below that share of the total wall
    time (their time still counts toward their parent's total).
    """
    if not spans:
        return "(no spans recorded)"
    root = cost_tree(spans)
    total = root["wall_seconds"] or 1e-12
    header = (
        f"{'phase':<44} {'count':>6} {'wall':>10} "
        f"{'self':>10} {'cpu':>10} {'%':>6}"
    )
    lines = [header, "-" * len(header)]

    def emit(node, depth):
        share = node["wall_seconds"] / total
        if depth > 0 and share < min_fraction:
            return
        label = "  " * depth + node["name"]
        errors = f"  [{node['errors']} error(s)]" if node["errors"] else ""
        lines.append(
            f"{label:<44} {node['count']:>6} "
            f"{node['wall_seconds'] * 1e3:>8.1f}ms "
            f"{node['self_seconds'] * 1e3:>8.1f}ms "
            f"{node['cpu_seconds'] * 1e3:>8.1f}ms "
            f"{share * 100:>5.1f}%" + errors
        )
        for child in node["children"]:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def tree_shape(spans) -> tuple:
    """Canonical order-independent shape of a span forest.

    Each node becomes ``(name, (sorted child shapes...))`` and siblings
    are sorted, so two runs that did the same work in a different order
    — or on a different number of workers — compare equal.
    """
    children_of, roots = _index(spans)

    def shape(span) -> tuple:
        kids = tuple(
            sorted(shape(c) for c in children_of.get(span.span_id, ()))
        )
        return (span.name, kids)

    return tuple(sorted(shape(root) for root in roots))
