"""Trace exporters: Chrome ``trace_event`` JSON and folded stacks.

Two render targets for a :class:`~repro.obs.trace.Tracer`'s spans (or
any iterable of span dicts, e.g. re-read from an exported JSONL file):

* :func:`chrome_trace_events` / :func:`export_chrome_trace` — the
  Chrome tracing / Perfetto ``trace_event`` format (open the file at
  ``chrome://tracing`` or https://ui.perfetto.dev). Each span becomes a
  complete ("ph": "X") event; the originating process is the track
  group and the trace id the track, so one distributed request reads
  as one horizontal lane across process boundaries.
* :func:`folded_stacks` / :func:`export_folded_stacks` — the
  semicolon-separated "folded" format flamegraph.pl and speedscope
  consume: one line per unique root-to-leaf path, weighted by the
  path's *self* time in microseconds (wall time minus the wall time of
  its children, clamped at zero so clock skew between processes cannot
  produce negative weights).
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

from repro.obs.trace import Span


def _as_dicts(spans) -> list[dict]:
    """Normalize ``Tracer``/list-of-``Span``/list-of-dict input."""
    out = []
    for span in getattr(spans, "spans", spans):
        out.append(span.to_dict() if isinstance(span, Span) else dict(span))
    return out


def chrome_trace_events(spans) -> list[dict]:
    """Spans as Chrome ``trace_event`` complete events, start-ordered."""
    events = []
    for span in _as_dicts(spans):
        args = dict(span.get("attributes") or {})
        args["trace_id"] = span.get("trace_id", 0)
        args["span_id"] = span.get("span_id", 0)
        args["parent_id"] = span.get("parent_id")
        if span.get("status", "ok") != "ok":
            args["status"] = span.get("status")
            if span.get("error"):
                args["error"] = span.get("error")
        events.append(
            {
                "name": span.get("name", ""),
                "ph": "X",
                "ts": float(span.get("start_unix", 0.0)) * 1e6,
                "dur": max(float(span.get("wall_seconds", 0.0)), 0.0) * 1e6,
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("trace_id", 0)),
                "cat": span.get("name", "").split(".", 1)[0] or "span",
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    return events


def export_chrome_trace(spans, path: str | os.PathLike) -> int:
    """Write ``{"traceEvents": [...]}`` JSON; returns the event count."""
    events = chrome_trace_events(spans)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")
    return len(events)


def folded_stacks(spans) -> dict[str, float]:
    """``{"a;b;c": self_microseconds}`` aggregated over all traces."""
    records = _as_dicts(spans)
    by_id = {record["span_id"]: record for record in records}
    children_wall: dict = defaultdict(float)
    for record in records:
        parent = record.get("parent_id")
        if parent in by_id:
            children_wall[parent] += float(record.get("wall_seconds", 0.0))

    def stack_of(record: dict) -> str:
        names = [record.get("name", "?")]
        seen = {record["span_id"]}
        parent = record.get("parent_id")
        while parent in by_id and parent not in seen:
            seen.add(parent)
            record = by_id[parent]
            names.append(record.get("name", "?"))
            parent = record.get("parent_id")
        return ";".join(reversed(names))

    weights: dict[str, float] = defaultdict(float)
    for record in records:
        wall = float(record.get("wall_seconds", 0.0))
        self_seconds = max(wall - children_wall[record["span_id"]], 0.0)
        weights[stack_of(record)] += self_seconds * 1e6
    return dict(weights)


def export_folded_stacks(spans, path: str | os.PathLike) -> int:
    """Write one ``stack weight`` line per unique path; returns lines.

    Weights are integer microseconds of self time; zero-weight paths
    are kept (a flamegraph of structure with no time yet is still a
    structure), rounded weights floor at 1 for any path that saw time.
    """
    weights = folded_stacks(spans)
    lines = []
    for stack in sorted(weights):
        weight = weights[stack]
        rounded = int(round(weight))
        if weight > 0 and rounded == 0:
            rounded = 1
        lines.append(f"{stack} {rounded}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)
