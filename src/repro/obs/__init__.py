"""Unified observability: tracing spans, metrics registry, profiling.

The subsystem is opt-in and process-global: nothing records until a
:class:`Tracer` and/or :class:`MetricsRegistry` is :func:`install`\\ ed.
Instrumented call sites throughout the library go through the
module-level accessors here —

- ``with obs.span("fraz.probe", eb=eb) as sp: ...`` — a hierarchical
  span (returns the shared no-op :data:`NULL_SPAN` when no tracer is
  installed, so the disabled cost is one function call).
- ``obs.get_registry()`` — the installed :class:`MetricsRegistry` or
  ``None``; call sites guard with ``if registry is not None`` and
  batch their updates where possible.
- ``with obs.profiled("training.fit") as sp: ...`` — a span annotated
  with before/after RSS and allocation samples.
- ``with obs.session() as (tracer, registry): ...`` — scoped
  install/uninstall for tests and library embedding.

See ``docs/OBSERVABILITY.md`` for the span model, the metric naming
convention and the exporter formats.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    export_folded_stacks,
    folded_stacks,
)
from repro.obs.http import ObservabilityServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_cache_gauges,
)
from repro.obs.profile import Profiler
from repro.obs.report import (
    cost_tree,
    load_trace,
    render_cost_tree,
    tree_shape,
)
from repro.obs.slo import (
    SLO,
    AvailabilitySLO,
    LatencySLO,
    SLOStatus,
    SLOTracker,
    ThresholdSLO,
    default_serving_slos,
)
from repro.obs.timeseries import TimeSeriesBuffer
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    _ActiveSpan,
    _AMBIENT,
    attach,
    current_context,
    detach,
)

__all__ = [
    "AvailabilitySLO",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySLO",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObservabilityServer",
    "Profiler",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "Span",
    "SpanContext",
    "ThresholdSLO",
    "TimeSeriesBuffer",
    "Tracer",
    "attach",
    "bind_cache_gauges",
    "chrome_trace_events",
    "cost_tree",
    "current_context",
    "default_serving_slos",
    "detach",
    "export_chrome_trace",
    "export_folded_stacks",
    "folded_stacks",
    "get_registry",
    "get_tracer",
    "install",
    "load_trace",
    "profiled",
    "render_cost_tree",
    "session",
    "span",
    "tree_shape",
    "uninstall",
]

_tracer: "Tracer | None" = None
_registry: "MetricsRegistry | None" = None


def install(tracer: "Tracer | None" = None, registry: "MetricsRegistry | None" = None):
    """Make ``tracer``/``registry`` the process-wide instances.

    Both default to None — installing only a registry leaves tracing
    disabled and vice versa. Returns ``(tracer, registry)`` as set.
    """
    global _tracer, _registry
    _tracer = tracer
    _registry = registry
    return tracer, registry


def uninstall() -> None:
    """Disable observability (back to the no-op fast path)."""
    global _tracer, _registry
    _tracer = None
    _registry = None


def get_tracer() -> "Tracer | None":
    return _tracer


def get_registry() -> "MetricsRegistry | None":
    return _registry


def span(name: str, **attributes):
    """A span context manager on the installed tracer, or the shared
    no-op :data:`NULL_SPAN` when tracing is disabled."""
    if _tracer is None:
        return NULL_SPAN
    # Builds the active span directly rather than going through
    # Tracer.span — this call sits on every instrumented hot path and
    # forwarding **attributes would copy the dict a second time.
    return _ActiveSpan(_tracer, name, _AMBIENT, attributes)


@contextmanager
def session(tracer=None, registry=None):
    """Scoped observability: install, yield ``(tracer, registry)``,
    uninstall — restoring whatever was installed before.

    Fresh instances are created when not given, so the common test
    shape is ``with obs.session() as (tracer, registry):``.
    """
    if tracer is None:
        tracer = Tracer()
    if registry is None:
        registry = MetricsRegistry()
    previous = (_tracer, _registry)
    install(tracer, registry)
    try:
        yield tracer, registry
    finally:
        install(*previous)


@contextmanager
def profiled(name: str, **attributes):
    """A span carrying before/after resource samples.

    Attaches ``rss_before_bytes``/``rss_after_bytes`` (and the
    tracemalloc pair when tracing allocations) to the span. No-op when
    no tracer is installed.
    """
    if _tracer is None:
        yield NULL_SPAN
        return
    profiler = Profiler()
    with _tracer.span(name, **attributes) as sp:
        before = profiler.sample()
        sp.set_attribute("rss_before_bytes", before["rss_bytes"])
        if before["alloc_bytes"]:
            sp.set_attribute("alloc_before_bytes", before["alloc_bytes"])
        try:
            yield sp
        finally:
            after = profiler.sample()
            sp.set_attributes(
                rss_after_bytes=after["rss_bytes"],
                rss_delta_bytes=after["rss_bytes"] - before["rss_bytes"],
            )
            if after["alloc_bytes"] or before["alloc_bytes"]:
                sp.set_attributes(
                    alloc_after_bytes=after["alloc_bytes"],
                    alloc_peak_bytes=after["alloc_peak_bytes"],
                )
