"""Declarative SLOs with rolling error-budget burn-rate evaluation.

An :class:`SLO` states an objective over a rolling window — "99.9% of
requests succeed", "99% of requests finish under 250 ms", "the model's
calibration-error EWMA stays under 0.25" — and is evaluated against
the history a :class:`~repro.obs.timeseries.TimeSeriesBuffer` retains.

**Burn rate** is the operator-facing number: the ratio of the error
rate actually observed in the window to the error rate the objective
*allows* (``1 - objective``). Burn 1.0 means the error budget is being
spent exactly as fast as it accrues; burn 10 means a 30-day budget is
gone in 3 days; burn 0 means no errors. An SLO alerts when its burn
rate crosses ``alert_burn_rate`` (default 1.0). Threshold SLOs over
gauges (calibration error) define burn as ``value / threshold`` — the
same "1.0 = at budget" semantics.

:class:`SLOTracker` owns a set of SLOs, evaluates them on demand, and
exports the results as ``repro_slo_compliance{slo=}``,
``repro_slo_burn_rate{slo=}`` and ``repro_slo_alert{slo=}`` gauges via
a pull-model collector, so any scrape of the registry re-evaluates.

**No data means no alert**: a window with zero events is compliant
(compliance 1.0, burn 0.0). An idle service is not in violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfiguration
from repro.obs.timeseries import TimeSeriesBuffer


@dataclass(frozen=True)
class SLOStatus:
    """One evaluation result."""

    name: str
    kind: str
    objective: float
    window_seconds: float
    compliance: float
    burn_rate: float
    alerting: bool
    events: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "window_seconds": self.window_seconds,
            "compliance": self.compliance,
            "burn_rate": self.burn_rate,
            "alerting": self.alerting,
            "events": self.events,
            "detail": self.detail,
        }


class SLO:
    """Base: a named objective over a rolling window.

    Args:
        name: identifier used in the ``slo=`` metric label.
        objective: required good-event fraction, in (0, 1].
        window: rolling evaluation window, seconds.
        alert_burn_rate: burn rate at which :attr:`SLOStatus.alerting`
            flips on (1.0 = budget spent as fast as it accrues).
    """

    kind = "slo"

    def __init__(
        self,
        name: str,
        *,
        objective: float,
        window: float,
        alert_burn_rate: float = 1.0,
    ) -> None:
        if not name:
            raise InvalidConfiguration("an SLO needs a non-empty name")
        if not 0.0 < objective <= 1.0:
            raise InvalidConfiguration(
                f"SLO {name}: objective must be in (0, 1], got {objective}"
            )
        if window <= 0:
            raise InvalidConfiguration(
                f"SLO {name}: window must be positive, got {window}"
            )
        if alert_burn_rate <= 0:
            raise InvalidConfiguration(
                f"SLO {name}: alert_burn_rate must be positive"
            )
        self.name = name
        self.objective = float(objective)
        self.window = float(window)
        self.alert_burn_rate = float(alert_burn_rate)

    # subclasses return (compliance, events, detail)
    def _measure(
        self, buffer: TimeSeriesBuffer
    ) -> tuple[float, float, str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def evaluate(self, buffer: TimeSeriesBuffer) -> SLOStatus:
        compliance, events, detail = self._measure(buffer)
        allowed = 1.0 - self.objective
        error_rate = 1.0 - compliance
        if error_rate <= 0.0:
            burn = 0.0
        elif allowed <= 0.0:
            burn = float("inf")  # a 100% objective has zero budget
        else:
            burn = error_rate / allowed
        return SLOStatus(
            name=self.name,
            kind=self.kind,
            objective=self.objective,
            window_seconds=self.window,
            compliance=compliance,
            burn_rate=burn,
            alerting=burn >= self.alert_burn_rate,
            events=events,
            detail=detail,
        )


class AvailabilitySLO(SLO):
    """Good-outcome fraction of a labelled request counter.

    Over the window, ``good = sum(delta(counter{label=v}))`` for ``v``
    in ``good_values``; compliance is ``good / total``. The default
    wiring reads ``repro_serving_requests_total{outcome=...}`` where
    the serving recorder writes ``outcome="ok"`` / ``outcome="error"``.
    """

    kind = "availability"

    def __init__(
        self,
        name: str = "availability",
        *,
        objective: float = 0.999,
        window: float = 300.0,
        counter: str = "repro_serving_requests_total",
        label: str = "outcome",
        good_values: tuple = ("ok",),
        alert_burn_rate: float = 1.0,
    ) -> None:
        super().__init__(
            name,
            objective=objective,
            window=window,
            alert_burn_rate=alert_burn_rate,
        )
        self.counter = counter
        self.label = label
        self.good_values = tuple(good_values)

    def _measure(self, buffer: TimeSeriesBuffer) -> tuple[float, float, str]:
        total = buffer.delta(self.counter, self.window)
        if total <= 0:
            return 1.0, 0.0, "no traffic in window"
        good = sum(
            buffer.delta(
                self.counter, self.window, labels={self.label: value}
            )
            for value in self.good_values
        )
        return good / total, total, f"{good:g}/{total:g} good"


class LatencySLO(SLO):
    """Fraction of requests under a latency threshold, from a histogram.

    Compliance is the fraction of window events that landed in buckets
    with an upper bound at or below ``threshold_seconds`` — the bucket
    grid quantizes the threshold, so pick a threshold on (or above) a
    bucket bound. An objective of 0.99 with a 0.25 s threshold reads as
    "p99 latency stays under 250 ms".
    """

    kind = "latency"

    def __init__(
        self,
        name: str = "latency_p99",
        *,
        objective: float = 0.99,
        window: float = 300.0,
        threshold_seconds: float = 0.25,
        histogram: str = "repro_serving_latency_seconds",
        alert_burn_rate: float = 1.0,
    ) -> None:
        super().__init__(
            name,
            objective=objective,
            window=window,
            alert_burn_rate=alert_burn_rate,
        )
        if threshold_seconds <= 0:
            raise InvalidConfiguration(
                f"SLO {name}: threshold_seconds must be positive"
            )
        self.threshold_seconds = float(threshold_seconds)
        self.histogram = histogram

    def _measure(self, buffer: TimeSeriesBuffer) -> tuple[float, float, str]:
        delta = buffer.histogram_delta(self.histogram, self.window)
        if delta is None or delta["count"] <= 0:
            return 1.0, 0.0, "no traffic in window"
        metric = buffer.registry.get(self.histogram)
        bounds = getattr(metric, "buckets", None)
        if not bounds:
            return 1.0, 0.0, "histogram has no bucket bounds"
        within = sum(
            count
            for bound, count in zip(bounds, delta["counts"])
            if bound <= self.threshold_seconds
        )
        total = delta["count"]
        return (
            within / total,
            total,
            f"{within:g}/{total:g} under {self.threshold_seconds:g}s",
        )


class ThresholdSLO(SLO):
    """A gauge that must stay at or below a threshold.

    Burn rate is redefined as ``value / threshold`` (1.0 = exactly at
    budget); compliance is binary. The default wiring watches the drift
    detector's calibration-error EWMA.
    """

    kind = "threshold"

    def __init__(
        self,
        name: str = "calibration",
        *,
        threshold: float = 0.25,
        window: float = 300.0,
        gauge: str = "repro_lifecycle_drift_error_ewma",
        labels: dict | None = None,
        alert_burn_rate: float = 1.0,
    ) -> None:
        # Objective is nominal here (burn is overridden); 0.5 keeps the
        # base-class validation meaningful without implying a ratio.
        super().__init__(
            name,
            objective=0.5,
            window=window,
            alert_burn_rate=alert_burn_rate,
        )
        if threshold <= 0:
            raise InvalidConfiguration(
                f"SLO {name}: threshold must be positive"
            )
        self.threshold = float(threshold)
        self.gauge = gauge
        self.labels = dict(labels or {})

    def evaluate(self, buffer: TimeSeriesBuffer) -> SLOStatus:
        points = buffer.series(self.gauge, labels=self.labels)
        cutoff = points[-1].unix - self.window if points else 0.0
        window_points = [p for p in points if p.unix >= cutoff]
        if not window_points:
            return SLOStatus(
                name=self.name,
                kind=self.kind,
                objective=self.objective,
                window_seconds=self.window,
                compliance=1.0,
                burn_rate=0.0,
                alerting=False,
                events=0.0,
                detail="no samples in window",
            )
        worst = max(p.value for p in window_points)
        burn = worst / self.threshold
        return SLOStatus(
            name=self.name,
            kind=self.kind,
            objective=self.objective,
            window_seconds=self.window,
            compliance=1.0 if worst <= self.threshold else 0.0,
            burn_rate=burn,
            alerting=burn >= self.alert_burn_rate,
            events=float(len(window_points)),
            detail=f"worst {worst:g} vs threshold {self.threshold:g}",
        )


class SLOTracker:
    """Evaluates a set of SLOs and exports ``repro_slo_*`` gauges.

    Args:
        buffer: the sampled history to evaluate against.
        slos: the SLO set (defaults come from
            :func:`default_serving_slos`).
        registry: where to export; defaults to the buffer's registry.
            The exporter is a pull-model collector, so every
            ``render_prometheus()`` / ``to_dict()`` re-evaluates.
    """

    def __init__(
        self,
        buffer: TimeSeriesBuffer,
        slos: list[SLO] | None = None,
        *,
        registry=None,
    ) -> None:
        self.buffer = buffer
        self.slos = list(slos) if slos is not None else []
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise InvalidConfiguration(
                f"SLO names must be unique, got {names}"
            )
        registry = buffer.registry if registry is None else registry
        self._compliance = registry.gauge(
            "repro_slo_compliance", "good-event fraction in the SLO window"
        )
        self._burn = registry.gauge(
            "repro_slo_burn_rate",
            "error-budget burn rate (1 = spending budget as it accrues)",
        )
        self._alert = registry.gauge(
            "repro_slo_alert", "1 when the SLO burn rate is over its alert"
        )
        self._exporting = False
        registry.register_collector(self._export)

    def evaluate(self) -> list[SLOStatus]:
        """Evaluate every SLO against the buffer, in declaration order."""
        return [slo.evaluate(self.buffer) for slo in self.slos]

    def _export(self) -> None:
        # Evaluation reads the buffer, whose sample() calls
        # registry.collect(), which runs this collector: a sample taken
        # *during* an export must not recurse into another evaluation.
        if self._exporting:
            return
        self._exporting = True
        try:
            for status in self.evaluate():
                burn = status.burn_rate
                self._compliance.set(status.compliance, slo=status.name)
                self._burn.set(
                    burn if burn != float("inf") else 1e12, slo=status.name
                )
                self._alert.set(
                    1.0 if status.alerting else 0.0, slo=status.name
                )
        finally:
            self._exporting = False

    def report(self) -> dict:
        """JSON-friendly burn report (the ``/slo`` endpoint body)."""
        statuses = self.evaluate()
        return {
            "slos": [status.to_dict() for status in statuses],
            "alerting": sorted(s.name for s in statuses if s.alerting),
            "frames_sampled": len(self.buffer),
        }


def default_serving_slos(
    *,
    availability: float = 0.999,
    p99_seconds: float = 0.25,
    calibration_error: float = 0.25,
    window: float = 300.0,
) -> list[SLO]:
    """The stock serving SLO set, shaped by the ``slo_*`` config knobs.

    Availability and p99 latency read the serving recorder's metrics;
    the calibration SLO reads the drift detector's error EWMA (silent
    until a detector binds its gauges to the same registry).
    """
    return [
        AvailabilitySLO(objective=availability, window=window),
        LatencySLO(
            objective=0.99, threshold_seconds=p99_seconds, window=window
        ),
        ThresholdSLO(threshold=calibration_error, window=window),
    ]
