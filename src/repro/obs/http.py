"""An embedded, stdlib-only observability scrape endpoint.

:class:`ObservabilityServer` wraps ``http.server.ThreadingHTTPServer``
in a daemon thread and serves four read-only routes:

============  ==========================================================
``/metrics``  Prometheus text exposition of the bound registry
              (collectors run per scrape, so pull-model gauges and the
              ``repro_slo_*`` exports are fresh).
``/healthz``  JSON from the bound health callback (shard states,
              breaker states); 200 when the callback reports
              ``"healthy": true``, 503 otherwise.
``/slo``      JSON burn report from the bound
              :class:`~repro.obs.slo.SLOTracker`.
``/spans``    Recent spans as JSONL, newest last. Query params:
              ``?trace=<id>`` filters to one trace, ``?limit=<n>``
              caps the line count (default 512).
============  ==========================================================

The server binds ``127.0.0.1`` by default — this is an operator
surface, not a public API — and ``port=0`` asks the OS for an
ephemeral port (read the resolved one from :attr:`port`; tests and the
smoke script rely on it). Every handler snapshots under the relevant
component's own locking, so a scrape never blocks the serving path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import InvalidConfiguration

_DEFAULT_SPAN_LIMIT = 512


class ObservabilityServer:
    """Serve ``/metrics``, ``/healthz``, ``/slo`` and ``/spans``.

    Args:
        registry: the :class:`~repro.obs.MetricsRegistry` behind
            ``/metrics`` (required — a scrape surface without metrics
            is a bug, not a configuration).
        tracer: the :class:`~repro.obs.Tracer` behind ``/spans``
            (``None`` serves an empty span list).
        slo_tracker: the :class:`~repro.obs.slo.SLOTracker` behind
            ``/slo`` (``None`` serves an empty report).
        health: zero-arg callable returning a JSON-friendly dict for
            ``/healthz``; it should include a boolean ``"healthy"``
            key (absent reads as healthy).
        port: TCP port; 0 picks an ephemeral one.
        host: bind address.
    """

    def __init__(
        self,
        registry,
        *,
        tracer=None,
        slo_tracker=None,
        health=None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        if registry is None:
            raise InvalidConfiguration(
                "ObservabilityServer needs a MetricsRegistry"
            )
        if not 0 <= int(port) <= 65535:
            raise InvalidConfiguration(f"invalid scrape port {port}")
        self.registry = registry
        self.tracer = tracer
        self.slo_tracker = slo_tracker
        self.health = health
        server = self

        class _Handler(BaseHTTPRequestHandler):
            # One scrape per request; keep-alive would pin the
            # threading server's worker threads on idle scrapers.
            protocol_version = "HTTP/1.0"

            def log_message(self, *args) -> None:  # silence stderr
                pass

            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                try:
                    server._route(self)
                except BrokenPipeError:
                    pass

        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name="fxrz-obs-http",
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and join the server thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing ---------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(handler.path)
        if parsed.path == "/metrics":
            body = self.registry.render_prometheus().encode("utf-8")
            self._reply(
                handler, 200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif parsed.path == "/healthz":
            payload = dict(self.health()) if self.health is not None else {}
            healthy = bool(payload.get("healthy", True))
            self._json(handler, 200 if healthy else 503, payload)
        elif parsed.path == "/slo":
            if self.slo_tracker is None:
                self._json(
                    handler, 200, {"slos": [], "alerting": [],
                                   "frames_sampled": 0}
                )
            else:
                self._json(handler, 200, self.slo_tracker.report())
        elif parsed.path == "/spans":
            self._spans(handler, parse_qs(parsed.query))
        else:
            self._json(
                handler,
                404,
                {
                    "error": f"no route {parsed.path}",
                    "routes": ["/metrics", "/healthz", "/slo", "/spans"],
                },
            )

    def _spans(self, handler: BaseHTTPRequestHandler, query: dict) -> None:
        try:
            limit = int(query.get("limit", [_DEFAULT_SPAN_LIMIT])[0])
            trace_id = int(query.get("trace", [0])[0])
        except ValueError:
            self._json(
                handler, 400, {"error": "trace and limit must be integers"}
            )
            return
        spans = self.tracer.spans if self.tracer is not None else []
        records = [span.to_dict() for span in spans]
        if trace_id:
            records = [r for r in records if r.get("trace_id") == trace_id]
        if limit > 0:
            records = records[-limit:]
        body = "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for record in records
        ).encode("utf-8")
        self._reply(handler, 200, body, "application/jsonl; charset=utf-8")

    # -- plumbing --------------------------------------------------------------

    @staticmethod
    def _reply(
        handler: BaseHTTPRequestHandler,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    @classmethod
    def _json(
        cls, handler: BaseHTTPRequestHandler, status: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        cls._reply(handler, status, body, "application/json; charset=utf-8")
