"""A ring-buffer time-series sampler over a :class:`MetricsRegistry`.

The registry is a *point-in-time* store: counters and gauges answer
"what is the value now", never "what was it 30 seconds ago". SLO
burn-rate evaluation (:mod:`repro.obs.slo`) needs exactly that history
— an availability SLO is a ratio of counter *deltas* over a rolling
window, not of absolute totals that fold in yesterday's traffic.

:class:`TimeSeriesBuffer` closes the gap without touching any hot
path: :meth:`~TimeSeriesBuffer.sample` snapshots every scalar series
(and every histogram's bucket counts / sum / count) into one timestamped
frame in a bounded ``deque``. Sampling is pull-model — it runs the
registry's collectors first, exactly like an export — and the buffer
can drive itself from a daemon thread (:meth:`~TimeSeriesBuffer.start`)
for long-lived services, or be sampled manually from tests.

Memory is bounded by ``capacity`` frames; at the default 1-second
cadence and 600 frames the buffer holds ten minutes of history.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import InvalidConfiguration
from repro.obs.metrics import Histogram, MetricsRegistry, _label_suffix


@dataclass(frozen=True)
class SeriesPoint:
    """One sampled value of one series at one instant."""

    unix: float
    value: float


@dataclass(frozen=True)
class Frame:
    """One full registry snapshot.

    ``scalars`` maps ``(metric_name, label_key)`` to the counter/gauge
    value; ``histograms`` maps the same key to a
    ``{"counts": [...], "sum": s, "count": n}`` snapshot. Label keys
    are the registry's canonical sorted tuples.
    """

    unix: float
    scalars: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)


class TimeSeriesBuffer:
    """Bounded history of registry snapshots.

    Args:
        registry: the registry to sample.
        capacity: frames retained (oldest evicted first).
        interval: cadence of the background sampler thread, seconds
            (only used once :meth:`start` is called).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        capacity: int = 600,
        interval: float = 1.0,
    ) -> None:
        if capacity < 2:
            raise InvalidConfiguration(
                "a time-series buffer needs capacity >= 2 (deltas need "
                "two frames)"
            )
        if interval <= 0:
            raise InvalidConfiguration("sampling interval must be positive")
        self.registry = registry
        self.capacity = int(capacity)
        self.interval = float(interval)
        self._frames: deque[Frame] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling --------------------------------------------------------------

    def sample(self, unix: float | None = None) -> Frame:
        """Snapshot every series into one frame and retain it."""
        self.registry.collect()
        frame = Frame(unix=time.time() if unix is None else float(unix))
        for metric in self.registry.metrics():
            if isinstance(metric, Histogram):
                for key in metric.labels():
                    frame.histograms[(metric.name, key)] = metric.snapshot(
                        **dict(key)
                    )
            else:
                for key in metric.labels():
                    frame.scalars[(metric.name, key)] = metric.value(
                        **dict(key)
                    )
        with self._lock:
            self._frames.append(frame)
        return frame

    # -- background sampler ----------------------------------------------------

    def start(self) -> None:
        """Start the daemon sampler thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="fxrz-ts-sampler"
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the sampler thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:  # noqa: BLE001 — a sampler must not die
                continue

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def frames(self) -> list[Frame]:
        """All retained frames, oldest first."""
        with self._lock:
            return list(self._frames)

    def latest(self) -> Frame | None:
        with self._lock:
            return self._frames[-1] if self._frames else None

    def window(self, seconds: float) -> list[Frame]:
        """Frames no older than ``seconds`` before the newest frame."""
        with self._lock:
            if not self._frames:
                return []
            cutoff = self._frames[-1].unix - float(seconds)
            return [f for f in self._frames if f.unix >= cutoff]

    def series(self, name: str, labels: dict | None = None) -> list[SeriesPoint]:
        """The sampled history of one scalar series, oldest first."""
        key = tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))
        out = []
        for frame in self.frames():
            value = frame.scalars.get((name, key))
            if value is not None:
                out.append(SeriesPoint(unix=frame.unix, value=value))
        return out

    def delta(
        self, name: str, seconds: float, labels: dict | None = None
    ) -> float:
        """Counter increase over the trailing window (0 without history).

        Sums the increase across *all* label sets of ``name`` when
        ``labels`` is ``None`` — the natural shape for an availability
        SLO over ``repro_serving_requests_total{outcome=...}``.
        """
        frames = self.window(seconds)
        if len(frames) < 2:
            return 0.0
        first, last = frames[0], frames[-1]
        if labels is None:
            keys = {
                key
                for metric_name, key in last.scalars
                if metric_name == name
            }
        else:
            keys = {
                tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            }
        total = 0.0
        for key in keys:
            newest = last.scalars.get((name, key), 0.0)
            oldest = first.scalars.get((name, key), 0.0)
            # A counter that resets (process restart) shows a drop;
            # count the post-reset value rather than a negative delta.
            total += newest - oldest if newest >= oldest else newest
        return total

    def histogram_delta(self, name: str, seconds: float) -> dict | None:
        """Bucket-count / sum / count increases over the trailing window.

        Aggregated across label sets; ``None`` when the metric never
        appeared or fewer than two frames cover the window.
        """
        frames = self.window(seconds)
        if len(frames) < 2:
            return None
        first, last = frames[0], frames[-1]
        keys = {
            key for metric_name, key in last.histograms if metric_name == name
        }
        if not keys:
            return None
        counts: list[float] | None = None
        total_sum = 0.0
        total_count = 0.0
        for key in keys:
            newest = last.histograms.get((name, key))
            oldest = first.histograms.get(
                (name, key),
                {"counts": [0] * len(newest["counts"]), "sum": 0.0, "count": 0},
            )
            if newest["count"] < oldest["count"]:  # reset mid-window
                oldest = {
                    "counts": [0] * len(newest["counts"]),
                    "sum": 0.0,
                    "count": 0,
                }
            if counts is None:
                counts = [0.0] * len(newest["counts"])
            for index, (new, old) in enumerate(
                zip(newest["counts"], oldest["counts"])
            ):
                counts[index] += new - old
            total_sum += newest["sum"] - oldest["sum"]
            total_count += newest["count"] - oldest["count"]
        return {"counts": counts, "sum": total_sum, "count": total_count}

    def to_dict(self, seconds: float | None = None) -> dict:
        """JSON-friendly dump of the (windowed) scalar history."""
        frames = self.frames() if seconds is None else self.window(seconds)
        return {
            "frames": len(frames),
            "span_seconds": (
                frames[-1].unix - frames[0].unix if len(frames) > 1 else 0.0
            ),
            "samples": [
                {
                    "unix": frame.unix,
                    "scalars": {
                        f"{name}{_label_suffix(key)}": value
                        for (name, key), value in sorted(
                            frame.scalars.items()
                        )
                    },
                }
                for frame in frames
            ],
        }
