"""Lightweight resource sampling for profiling hooks.

:class:`Profiler` snapshots the process's resident-set size and (when a
:mod:`tracemalloc` session is already running) the traced allocation
level. It is deliberately passive — it never *starts* tracemalloc by
itself because doing so slows every allocation in the process; callers
opt in with :meth:`Profiler.tracing` or by running under
``python -X tracemalloc``.

Everything degrades to 0 on platforms without ``/proc`` or the
``resource`` module, so the profiled numbers are best-effort, never a
crash source.
"""

from __future__ import annotations

import os
import tracemalloc


def _rss_from_proc() -> int:
    """Resident set size in bytes via /proc/self/statm (Linux)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return 0


def _rss_from_resource() -> int:
    """Peak RSS via getrusage — the portable fallback (note: *peak*)."""
    try:
        import resource
    except ImportError:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if os.uname().sysname == "Darwin" else 1024
    return int(usage.ru_maxrss) * scale


def rss_bytes() -> int:
    """Current resident set size in bytes (0 when unavailable)."""
    rss = _rss_from_proc()
    if rss:
        return rss
    return _rss_from_resource()


class Profiler:
    """Samples RSS and traced allocations around hot sections.

    Used by :func:`repro.obs.profiled`, which attaches a before/after
    pair of samples to a span. Directly usable too::

        prof = Profiler()
        before = prof.sample()
        run_hot_section()
        after = prof.sample()
        grew = after["rss_bytes"] - before["rss_bytes"]
    """

    def sample(self) -> dict:
        """One snapshot: ``{"rss_bytes", "alloc_bytes", "alloc_peak_bytes"}``.

        The alloc fields are 0 unless tracemalloc is running.
        """
        alloc = peak = 0
        if tracemalloc.is_tracing():
            alloc, peak = tracemalloc.get_traced_memory()
        return {
            "rss_bytes": rss_bytes(),
            "alloc_bytes": alloc,
            "alloc_peak_bytes": peak,
        }

    class tracing:
        """Context manager running tracemalloc for its extent only.

        Leaves tracemalloc untouched if it was already running (so an
        outer ``python -X tracemalloc`` session is not clobbered).
        """

        def __enter__(self) -> "Profiler.tracing":
            self._started = not tracemalloc.is_tracing()
            if self._started:
                tracemalloc.start()
            return self

        def __exit__(self, *exc_info) -> bool:
            if self._started:
                tracemalloc.stop()
            return False
