"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` unifies the ad-hoc counters that grew up
around the pipeline — the serving recorder's tallies, the feature and
compression-memo cache hit/miss counts, FRaZ probe counts, guarded
fallback-tier tallies — behind a single namespaced API. Metric names
follow ``repro_<subsystem>_<name>`` (validated), series within one
metric are distinguished by labels, and cache-style sources that
already keep their own counters plug in via pull-model *collectors*
(:meth:`MetricsRegistry.register_collector`, :func:`bind_cache_gauges`)
so hot paths never pay for mirroring.

Exporters: :meth:`MetricsRegistry.render_prometheus` writes the
text-exposition format; :meth:`MetricsRegistry.to_dict` a JSON-friendly
snapshot.
"""

from __future__ import annotations

import re
import threading

from repro.errors import InvalidConfiguration

#: Enforced metric-name shape: ``repro_<subsystem>_<name>``, lowercase.
_NAME_RE = re.compile(r"^repro(_[a-z0-9]+)+$")

#: Default histogram buckets, in seconds — spans latencies from 100 us
#: to 100 s, the range of one feature extraction up to a full FRaZ search.
DEFAULT_BUCKETS = (
    1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidConfiguration(
            f"metric name {name!r} must match repro_<subsystem>_<name> "
            "(lowercase letters, digits and underscores)"
        )
    return name


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Prometheus text-exposition escapes for label *values*: backslash
#: first (so escapes don't double), then quote and newline.
_LABEL_ESCAPES = str.maketrans(
    {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
)

#: Escapes for ``# HELP`` text: backslash and newline only (quotes are
#: legal in help text).
_HELP_ESCAPES = str.maketrans({"\\": "\\\\", "\n": "\\n"})


def _label_suffix(key: tuple) -> str:
    """The ``{k="v",...}`` rendering of a canonical label key.

    Label values are escaped per the Prometheus text exposition format
    (backslash, double quote and newline), so a hostile dataset id like
    ``he said "hi"\\n`` cannot corrupt the scrape output.
    """
    if not key:
        return ""
    return (
        "{"
        + ",".join(
            f'{k}="{v.translate(_LABEL_ESCAPES)}"' for k, v in key
        )
        + "}"
    )


class _Metric:
    """Shared shell: name, help text, per-label-set series under a lock."""

    kind = ""

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict = {}

    def labels(self) -> list:
        """The canonical label keys of every live series."""
        with self._lock:
            return sorted(self._series)


class _BoundCounter:
    """A counter series with its label key pre-resolved.

    Hot paths that hit the same series on every event (the serving
    recorder's per-request mirror) bind once and skip the label-key
    sort/str work per increment.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Counter", key: tuple) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidConfiguration(
                f"counter {self._metric.name} cannot decrease "
                f"(inc by {amount})"
            )
        metric, key = self._metric, self._key
        with metric._lock:
            metric._series[key] = metric._series.get(key, 0.0) + amount


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise InvalidConfiguration(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def bind(self, **labels) -> _BoundCounter:
        """A pre-resolved handle for one label set (see :class:`_BoundCounter`)."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class Gauge(_Metric):
    """A point-in-time value per label set (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram with sum and count per series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets=DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise InvalidConfiguration(
                f"histogram {name} buckets must be non-empty and "
                f"strictly ascending, got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        self._observe(float(value), _label_key(labels))

    def _observe(self, value: float, key: tuple) -> None:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "counts": [0] * len(self.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][index] += 1
                    break
            series["sum"] += value
            series["count"] += 1

    def bind(self, **labels) -> "_BoundHistogram":
        """A pre-resolved handle for one label set (cf. :meth:`Counter.bind`)."""
        return _BoundHistogram(self, _label_key(labels))

    def snapshot(self, **labels) -> dict:
        """``{"counts": [...], "sum": s, "count": n}`` for one series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            return {
                "counts": list(series["counts"]),
                "sum": series["sum"],
                "count": series["count"],
            }


class _BoundHistogram:
    """A histogram series with its label key pre-resolved."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: tuple) -> None:
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric._observe(float(value), self._key)


class MetricsRegistry:
    """Get-or-create home for every metric of one process.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered — asking for the same name with a
    different kind (or different histogram buckets) raises, because two
    subsystems silently sharing a misdeclared metric is the exact bug a
    registry exists to prevent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []

    def _get_or_create(self, name, cls, help, factory):
        _check_name(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise InvalidConfiguration(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, help, lambda: Counter(name, help, self._lock)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, Gauge, help, lambda: Gauge(name, help, self._lock)
        )

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._get_or_create(
            name,
            Histogram,
            help,
            lambda: Histogram(name, help, self._lock, buckets=buckets),
        )
        if metric.buckets != tuple(float(b) for b in buckets):
            raise InvalidConfiguration(
                f"histogram {name} already registered with buckets "
                f"{metric.buckets}, not {tuple(buckets)}"
            )
        return metric

    def register_collector(self, collect) -> None:
        """Add a zero-arg callable run before every export.

        Collectors pull values out of sources that keep their own state
        (caches, pools) and write them into gauges — the source's hot
        path stays untouched.
        """
        with self._lock:
            self._collectors.append(collect)

    def collect(self) -> None:
        """Run every registered collector (refresh pull-model gauges)."""
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def to_dict(self) -> dict:
        """JSON-friendly snapshot of every metric (collectors refreshed)."""
        self.collect()
        out = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                series = {
                    _label_suffix(key) or "": metric.snapshot(**dict(key))
                    for key in metric.labels()
                }
                out[metric.name] = {
                    "kind": metric.kind,
                    "buckets": list(metric.buckets),
                    "series": series,
                }
            else:
                series = {
                    _label_suffix(key) or "": metric.value(**dict(key))
                    for key in metric.labels()
                }
                out[metric.name] = {"kind": metric.kind, "series": series}
        return out

    def render_prometheus(self) -> str:
        """Text exposition: ``# HELP``/``# TYPE`` headers + one line per
        series (histograms expand to ``_bucket{le=}``/``_sum``/``_count``)."""
        self.collect()
        lines = []
        for metric in self.metrics():
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} "
                    f"{metric.help.translate(_HELP_ESCAPES)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key in metric.labels():
                    snap = metric.snapshot(**dict(key))
                    cumulative = 0
                    for bound, count in zip(metric.buckets, snap["counts"]):
                        cumulative += count
                        bucket_key = key + (("le", f"{bound:g}"),)
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_label_suffix(bucket_key)} {cumulative}"
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{metric.name}_bucket{_label_suffix(inf_key)} "
                        f"{snap['count']}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_label_suffix(key)} "
                        f"{snap['sum']:.9g}"
                    )
                    lines.append(
                        f"{metric.name}_count{_label_suffix(key)} "
                        f"{snap['count']}"
                    )
            else:
                keys = metric.labels() or [()]
                for key in keys:
                    value = metric.value(**dict(key))
                    lines.append(
                        f"{metric.name}{_label_suffix(key)} {value:.9g}"
                    )
        return "\n".join(lines) + "\n"


def bind_cache_gauges(registry: MetricsRegistry, subsystem: str, cache) -> None:
    """Expose a cache's hit/miss/eviction counters as registry gauges.

    Works for any object with ``hits``/``misses``/``evictions``
    attributes and ``len()`` (both :class:`repro.serving.FeatureCache`
    and :class:`repro.parallel.CompressionMemoCache`). Pull-model: the
    gauges refresh at export time via a collector, so the cache's hot
    path is untouched.
    """
    hits = registry.gauge(
        f"repro_{subsystem}_hits", f"{subsystem} cache hits"
    )
    misses = registry.gauge(
        f"repro_{subsystem}_misses", f"{subsystem} cache misses"
    )
    evictions = registry.gauge(
        f"repro_{subsystem}_evictions", f"{subsystem} cache evictions"
    )
    entries = registry.gauge(
        f"repro_{subsystem}_entries", f"{subsystem} cached entries"
    )

    def collect() -> None:
        hits.set(cache.hits)
        misses.set(cache.misses)
        evictions.set(cache.evictions)
        entries.set(len(cache))

    registry.register_collector(collect)
