"""Hierarchical tracing spans with contextvar propagation.

A :class:`Span` is one timed section of work — wall clock, thread CPU
time, free-form attributes, ok/error status — linked into a tree by
``trace_id``/``span_id``/``parent_id``. The ambient parent travels in a
:mod:`contextvars` variable, so nested ``with`` blocks build the tree
without any explicit plumbing, worker threads can adopt a driver's
context via :func:`attach`, and process workers receive a picklable
:class:`SpanContext` so their spans re-parent under the driver span
(see :meth:`repro.parallel.ParallelExecutor.map`).

A :class:`Tracer` is the thread-safe sink finished spans land in. It is
deliberately dumb — append, drain, absorb, export — because everything
analytical lives in :mod:`repro.obs.report`. Nothing here imports the
rest of the library, so any module can be instrumented without cycles.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

#: Ambient span context of the current execution context (task/thread).
_CURRENT: contextvars.ContextVar["SpanContext | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: Sentinel distinguishing "no parent given, use the ambient one" from an
#: explicit ``parent=None`` (which forces a new root span).
_AMBIENT = object()

_IDS = itertools.count(1)

#: Ids are ints — ``pid << 40 | counter`` — so minting one is a shift
#: and an or, not an f-string. Linux pids fit in 22 bits and 2^40 spans
#: per process is out of reach, so ids stay unique across a process
#: pool. The pid base is refreshed after fork so fork-spawned pool
#: workers — which inherit the counter state — still mint distinct ids.
#: (Spawned workers re-import the module and pick theirs up at import.)
_PID = os.getpid()
_PID_BASE = _PID << 40


def _refresh_pid() -> None:
    global _PID, _PID_BASE
    _PID = os.getpid()
    _PID_BASE = _PID << 40


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython on POSIX
    os.register_at_fork(after_in_child=_refresh_pid)


def _new_id() -> int:
    """A cheap id unique across processes (pid base + local counter)."""
    return _PID_BASE | next(_IDS)


class SpanContext(NamedTuple):
    """The picklable (trace, span) coordinates used for parenting.

    A NamedTuple rather than a dataclass: one is minted per span on the
    hot path, and tuple construction is several times cheaper than a
    frozen dataclass's ``object.__setattr__`` pair.
    """

    trace_id: int
    span_id: int


def current_context() -> SpanContext | None:
    """The ambient span context, or None outside any span."""
    return _CURRENT.get()


def attach(context: SpanContext | None):
    """Make ``context`` ambient; returns the token for :func:`detach`.

    This is the explicit handoff used where contextvars do not flow by
    themselves: thread-pool workers and process-pool workers re-parent
    their spans under the driver's span by attaching its context.
    """
    return _CURRENT.set(context)


def detach(token) -> None:
    """Undo a matching :func:`attach`."""
    _CURRENT.reset(token)


def _json_value(value):
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return repr(value)


@dataclass(slots=True)
class Span:
    """One finished (or in-flight) timed section of work.

    Attributes:
        name: dotted phase name, e.g. ``"fraz.probe"``.
        trace_id: int id shared by every span of one logical operation.
        span_id / parent_id: tree linkage (``parent_id`` None for roots).
        start_unix: wall-clock start (``time.time()``).
        wall_seconds: elapsed wall time.
        cpu_seconds: elapsed CPU time of the owning thread.
        status: ``"ok"`` or ``"error"`` (an exception escaped the block).
        error: ``"ExcType: message"`` when status is ``"error"``.
        pid: process the span was recorded in.
        attributes: free-form key/value payload (kept JSON-friendly).
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start_unix: float
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    status: str = "ok"
    error: str = ""
    pid: int = 0
    attributes: dict = field(default_factory=dict)

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """A JSON-safe payload (the JSONL exporter's line format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "pid": self.pid,
            "attributes": {
                key: _json_value(value)
                for key, value in self.attributes.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        parent_id = payload.get("parent_id")
        return cls(
            name=str(payload["name"]),
            trace_id=int(payload["trace_id"]),
            span_id=int(payload["span_id"]),
            parent_id=None if parent_id is None else int(parent_id),
            start_unix=float(payload.get("start_unix", 0.0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
            status=str(payload.get("status", "ok")),
            error=str(payload.get("error", "")),
            pid=int(payload.get("pid", 0)),
            attributes=dict(payload.get("attributes", {})),
        )


class NullSpan:
    """The do-nothing span returned when no tracer is installed.

    One shared stateless instance stands in for every disabled span, so
    an uninstrumented run pays a single attribute lookup and context
    enter/exit per ``obs.span(...)`` call site — nothing else.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        return None

    def set_attributes(self, **attributes) -> None:
        return None


NULL_SPAN = NullSpan()


class _ActiveSpan:
    """Context manager timing one span and restoring the ambient context."""

    __slots__ = ("_tracer", "_parent", "span", "_token", "_tick", "_cpu")

    def __init__(self, tracer: "Tracer", name: str, parent, attributes: dict):
        self._tracer = tracer
        self._parent = parent
        self.span = Span(name, 0, _new_id(), None, 0.0, attributes=attributes)

    def __enter__(self) -> Span:
        parent = (
            _CURRENT.get() if self._parent is _AMBIENT else self._parent
        )
        span = self.span
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = _new_id()
        span.pid = _PID
        span.start_unix = time.time()
        self._token = _CURRENT.set(SpanContext(span.trace_id, span.span_id))
        self._cpu = time.thread_time()
        self._tick = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._tick
        cpu = time.thread_time() - self._cpu
        span = self.span
        span.wall_seconds = wall
        span.cpu_seconds = cpu
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        _CURRENT.reset(self._token)
        self._tracer._append(span)
        return False


class Tracer:
    """Thread-safe sink for finished spans.

    One tracer per process is the intended shape (made ambient by a
    :class:`~repro.runtime.RuntimeContext` on entry); pool workers run
    their own short-lived tracer whose spans are shipped back and
    :meth:`absorb`\\ ed by the driver's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def span(self, name: str, *, parent=_AMBIENT, **attributes) -> _ActiveSpan:
        """A context manager recording one span named ``name``.

        ``parent`` defaults to the ambient context; pass an explicit
        :class:`SpanContext` for cross-boundary parenting or ``None``
        to force a new root.
        """
        return _ActiveSpan(self, name, parent, attributes)

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def spans(self) -> list[Span]:
        """A snapshot copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def drain(self) -> list[Span]:
        """Pop and return every finished span (the worker-side handoff)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def absorb(self, payloads) -> None:
        """Append spans recorded elsewhere (:meth:`Span.to_dict` payloads
        from a process worker, or plain :class:`Span` objects)."""
        spans = [
            Span.from_dict(p) if isinstance(p, dict) else p for p in payloads
        ]
        with self._lock:
            self._spans.extend(spans)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span to ``path``; returns the count."""
        spans = self.spans
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)

    def summary(self, min_fraction: float = 0.0) -> str:
        """The human-readable per-phase cost tree of the recorded spans."""
        from repro.obs.report import render_cost_tree

        return render_cost_tree(self.spans, min_fraction=min_fraction)
