"""LZ77-style dictionary codec ("zstd-lite").

SZ's final lossless stage is Zstandard; this codec plays the same role:
it removes repeated byte patterns that survive the entropy stage. The
implementation is a greedy hash-chain LZ77 with varint-coded tokens:

    token := <literal_len varint> <literal bytes>
             <match_len varint> <offset varint>

A ``match_len`` of 0 terminates the stream (its offset is omitted). The
encoder is a Python loop and therefore deliberately used on bounded-size
payloads; :meth:`LZCodec.compress` falls back to a stored block when the
input exceeds ``max_input`` or when compression does not help, so the
codec never makes a payload more than one byte larger.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.varint import decode_uvarint, encode_uvarint
from repro.errors import CorruptStreamError

_STORED = 0
_COMPRESSED = 1

_MIN_MATCH = 4
_MAX_CHAIN = 16


class LZCodec:
    """Greedy LZ77 codec with a stored-block fallback."""

    def __init__(self, window: int = 1 << 16, max_input: int = 1 << 22) -> None:
        if window < _MIN_MATCH:
            raise ValueError("window too small")
        self.window = window
        self.max_input = max_input

    def compress(self, data: bytes) -> bytes:
        """Compress bytes; output is never larger than ``len(data) + 6``."""
        if len(data) <= _MIN_MATCH or len(data) > self.max_input:
            return bytes([_STORED]) + data
        packed = self._compress_tokens(data)
        if len(packed) + 1 >= len(data):
            return bytes([_STORED]) + data
        return bytes([_COMPRESSED]) + encode_uvarint(len(data)) + packed

    def decompress(self, blob: bytes) -> bytes:
        """Inverse of :meth:`compress`."""
        if not blob:
            raise CorruptStreamError("empty LZ blob")
        mode = blob[0]
        if mode == _STORED:
            return blob[1:]
        if mode != _COMPRESSED:
            raise CorruptStreamError(f"unknown LZ block mode {mode}")
        expected, offset = decode_uvarint(blob, 1)
        if expected > self.max_input:
            # compress() never accepts inputs past max_input, so a
            # larger declared size is corruption — and must not be
            # allowed to drive the allocations below.
            raise CorruptStreamError("implausible LZ declared size")
        out = bytearray()
        data = blob
        n = len(data)
        while offset < n:
            lit_len, offset = decode_uvarint(data, offset)
            if offset + lit_len > n:
                raise CorruptStreamError("truncated LZ literals")
            out += data[offset : offset + lit_len]
            offset += lit_len
            match_len, offset = decode_uvarint(data, offset)
            if match_len == 0:
                break
            dist, offset = decode_uvarint(data, offset)
            if dist == 0 or dist > len(out):
                raise CorruptStreamError("invalid LZ match distance")
            if len(out) + match_len > expected:
                raise CorruptStreamError("LZ match overruns declared size")
            start = len(out) - dist
            for i in range(match_len):
                out.append(out[start + i])
        if len(out) != expected:
            raise CorruptStreamError("LZ output length mismatch")
        return bytes(out)

    def _compress_tokens(self, data: bytes) -> bytes:
        n = len(data)
        heads: dict[int, list[int]] = {}
        out = bytearray()
        lit_start = 0
        pos = 0
        while pos + _MIN_MATCH <= n:
            key = int.from_bytes(data[pos : pos + _MIN_MATCH], "little")
            chain = heads.get(key)
            best_len = 0
            best_dist = 0
            if chain:
                limit = pos - self.window
                for cand in reversed(chain[-_MAX_CHAIN:]):
                    if cand < limit:
                        break
                    length = self._match_length(data, cand, pos)
                    if length > best_len:
                        best_len = length
                        best_dist = pos - cand
            if best_len >= _MIN_MATCH:
                out += encode_uvarint(pos - lit_start)
                out += data[lit_start:pos]
                out += encode_uvarint(best_len)
                out += encode_uvarint(best_dist)
                end = pos + best_len
                # Index a few positions inside the match to keep future
                # matches findable without indexing every byte.
                step = max(1, best_len // 8)
                for p in range(pos, min(end, n - _MIN_MATCH + 1), step):
                    k = int.from_bytes(data[p : p + _MIN_MATCH], "little")
                    heads.setdefault(k, []).append(p)
                pos = end
                lit_start = pos
            else:
                heads.setdefault(key, []).append(pos)
                pos += 1
        # Trailing literals + terminator token.
        out += encode_uvarint(n - lit_start)
        out += data[lit_start:n]
        out += encode_uvarint(0)
        return bytes(out)

    @staticmethod
    def _match_length(data: bytes, cand: int, pos: int) -> int:
        n = len(data)
        length = 0
        max_len = n - pos
        while length < max_len and data[cand + length] == data[pos + length]:
            length += 1
        return length
