"""Lossless coding substrate used by the lossy compressors.

This package provides the entropy/dictionary coding stages that the
paper's compressors (SZ, ZFP, FPZIP, MGARD+) rely on: bit-level I/O,
canonical Huffman coding, run-length coding, an LZ77-style dictionary
coder, and varint header serialization.
"""

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    pack_at_offsets,
    pack_bits,
    unpack_bits,
    pack_fixed_width,
    unpack_fixed_width,
)
from repro.encoding.varint import (
    encode_uvarint,
    decode_uvarint,
    encode_array_header,
    decode_array_header,
)
from repro.encoding.huffman import ChunkedHuffmanCodec, HuffmanCodec, symbol_table
from repro.encoding.rle import rle_encode, rle_decode, zero_rle_encode, zero_rle_decode
from repro.encoding.lz import LZCodec
from repro.encoding.range_coder import RangeCoder

__all__ = [
    "BitReader",
    "BitWriter",
    "pack_at_offsets",
    "pack_bits",
    "unpack_bits",
    "pack_fixed_width",
    "unpack_fixed_width",
    "encode_uvarint",
    "decode_uvarint",
    "encode_array_header",
    "decode_array_header",
    "ChunkedHuffmanCodec",
    "HuffmanCodec",
    "symbol_table",
    "rle_encode",
    "rle_decode",
    "zero_rle_encode",
    "zero_rle_decode",
    "LZCodec",
    "RangeCoder",
]
