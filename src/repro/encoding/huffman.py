"""Canonical Huffman codec.

This is the entropy stage used by the SZ-like, FPZIP-like and MGARD-like
compressors, mirroring SZ's use of Huffman coding on quantization codes.

Design notes:

* **Encoding is vectorized.** Symbols are mapped to (code, length) pairs
  with a numpy table lookup and packed with
  :func:`repro.encoding.bitio.pack_bits`, so encoding a million symbols
  performs ~``max_code_length`` vector operations rather than a million
  Python iterations.
* **Decoding is table-driven.** A flat ``2**max_len`` lookup table maps
  every possible ``max_len``-bit window to ``(symbol, code length)``; the
  decoder keeps a small integer bit buffer so each symbol costs O(1).
* **Code lengths are limited** (16 bits, stretching with the alphabet
  up to 22) by iteratively flattening the frequency histogram, which
  keeps the decode table small regardless of how skewed the symbol
  distribution is; alphabets too large/flat to satisfy the cap fall
  back to a balanced fixed-length code.
* The stream is self-contained: the alphabet and code lengths travel in
  the header, so :meth:`HuffmanCodec.decode` needs no side channel.
"""

from __future__ import annotations


import numpy as np

from repro.encoding.bitio import (
    pack_at_offsets,
    pack_bits,
    pack_fixed_width,
    unpack_fixed_width,
)
from repro.encoding.varint import (
    decode_section,
    decode_uvarint,
    encode_section,
    encode_uvarint,
)
from repro.errors import CorruptStreamError, EncodingError

#: Baseline code-length cap; large alphabets necessarily exceed it
#: (a prefix code over n symbols needs ceil(log2 n) bits), so the
#: effective cap grows with the alphabet up to ``_MAX_CODE_LEN_HARD``.
_MAX_CODE_LEN = 16
_MAX_CODE_LEN_HARD = 22

#: Value spans up to this wide use the bincount-based symbol table; the
#: dense histogram (8 MiB of int64 at the cap) is far cheaper than the
#: O(n log n) sort inside ``np.unique`` on million-symbol streams.
_BINCOUNT_SPAN = 1 << 22


def symbol_table(
    symbols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(alphabet, inverse, counts)`` for an int64 symbol stream.

    Identical to ``np.unique(..., return_inverse=True)`` plus a
    bincount, but when the value span is modest (the common case for
    quantization codes, which cluster near zero) it is computed from a
    dense histogram with no sort at all.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    smin = int(symbols.min())
    smax = int(symbols.max())
    span = smax - smin + 1
    if 0 < span <= _BINCOUNT_SPAN:
        shifted = symbols - smin
        counts_full = np.bincount(shifted, minlength=span)
        present = np.nonzero(counts_full)[0]
        lookup = np.zeros(span, dtype=np.int64)
        lookup[present] = np.arange(present.size)
        return (
            present + smin,
            lookup[shifted],
            counts_full[present].astype(np.int64),
        )
    alphabet, inverse = np.unique(symbols, return_inverse=True)
    counts = np.bincount(inverse, minlength=alphabet.size).astype(np.int64)
    return alphabet, inverse, counts


def _max_code_len(alphabet_size: int) -> int:
    """Effective length cap for an alphabet of the given size."""
    need = int(np.ceil(np.log2(max(alphabet_size, 2)))) + 1
    return min(max(_MAX_CODE_LEN, need), _MAX_CODE_LEN_HARD)


def _huffman_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths for positive frequencies.

    Uses the O(n) two-queue merge over frequency-sorted leaves (after
    an O(n log n) sort): the two smallest weights are always at the
    front of either the remaining-leaves queue or the FIFO of already
    merged nodes, so no heap is needed. Depths are then propagated
    root-to-leaves in one pass.
    """
    n = freqs.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    order = np.argsort(freqs, kind="stable")
    leaf_weights = freqs[order].tolist()

    # Merged nodes: weights plus the two children of each.
    merged_weights: list[int] = []
    left_child: list[int] = []   # node ids; leaves are 0..n-1,
    right_child: list[int] = []  # merged nodes are n, n+1, ...
    li = 0  # next unconsumed leaf
    mi = 0  # next unconsumed merged node

    def take_smallest() -> tuple[int, int]:
        nonlocal li, mi
        take_leaf = li < n and (
            mi >= len(merged_weights) or leaf_weights[li] <= merged_weights[mi]
        )
        if take_leaf:
            li += 1
            return int(order[li - 1]), int(leaf_weights[li - 1])
        mi += 1
        return n + mi - 1, int(merged_weights[mi - 1])

    for _ in range(n - 1):
        a_id, a_w = take_smallest()
        b_id, b_w = take_smallest()
        merged_weights.append(a_w + b_w)
        left_child.append(a_id)
        right_child.append(b_id)

    # Root is the last merged node; push depths down to the leaves.
    lengths = np.zeros(n, dtype=np.int64)
    n_merged = len(merged_weights)
    depth = [0] * n_merged
    for node in range(n_merged - 1, -1, -1):
        d = depth[node] + 1
        for child in (left_child[node], right_child[node]):
            if child >= n:
                depth[child - n] = d
            else:
                lengths[child] = d
    return lengths


def _limited_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code lengths capped at the alphabet's effective maximum.

    Histogram flattening shortens over-deep trees; a flat histogram
    cannot flatten further, so after the cap's worth of halvings the
    code degrades gracefully to a balanced (fixed-length) tree, which
    always satisfies Kraft for ``ceil(log2 n)`` bits.
    """
    cap = _max_code_len(freqs.size)
    working = freqs.astype(np.int64).copy()
    for _ in range(cap + 2):
        lengths = _huffman_code_lengths(working)
        if lengths.max() <= cap:
            return lengths
        working = (working >> 1) | 1
    balanced = int(np.ceil(np.log2(freqs.size)))
    return np.full(freqs.size, balanced, dtype=np.int64)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes: sorted by (length, symbol index)."""
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        length = int(lengths[idx])
        code <<= length - prev_len
        codes[idx] = code
        code += 1
        prev_len = length
    return codes


def _build_decode_table(lengths: np.ndarray, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat window -> (symbol, length) arrays for max-length windows."""
    max_len = int(lengths.max())
    size = 1 << max_len
    table_sym = np.zeros(size, dtype=np.int64)
    table_len = np.zeros(size, dtype=np.int64)
    for sym_idx in range(lengths.size):
        length = int(lengths[sym_idx])
        code = int(codes[sym_idx])
        start = code << (max_len - length)
        end = (code + 1) << (max_len - length)
        table_sym[start:end] = sym_idx
        table_len[start:end] = length
    return table_sym, table_len, max_len


def _encode_alphabet(alphabet: np.ndarray) -> bytes:
    """Alphabet as zigzag-first + deltas (sorted, so deltas are >= 0)."""
    first = int(alphabet[0])
    zigzag_first = (first << 1) ^ (first >> 63)
    parts = [encode_uvarint(zigzag_first)]
    deltas = np.diff(alphabet.astype(np.int64))
    parts.extend(encode_uvarint(int(d)) for d in deltas)
    return b"".join(parts)


def _decode_alphabet(
    data: bytes, offset: int, alpha_size: int
) -> tuple[np.ndarray, int]:
    """Inverse of :func:`_encode_alphabet`; returns (alphabet, offset)."""
    zigzag_first, offset = decode_uvarint(data, offset)
    first = (zigzag_first >> 1) ^ -(zigzag_first & 1)
    limit = 1 << 62
    if abs(first) > limit:
        raise CorruptStreamError("implausible alphabet start")
    alphabet = np.zeros(alpha_size, dtype=np.int64)
    value = first
    for i in range(1, alpha_size):
        delta, offset = decode_uvarint(data, offset)
        value += delta
        if value > limit:
            raise CorruptStreamError("alphabet delta overflow")
        alphabet[i] = value
    alphabet[0] = first
    return alphabet, offset


class HuffmanCodec:
    """Self-contained canonical Huffman codec over int64 symbol arrays."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode an integer array into a self-describing byte stream."""
        symbols = np.asarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return encode_uvarint(0)
        alphabet, inverse, counts = symbol_table(symbols)
        if alphabet.size > (1 << _MAX_CODE_LEN_HARD):
            # Beyond this the balanced fallback could not satisfy the
            # hard length cap; callers should pre-split such streams.
            raise EncodingError(
                f"alphabet of {alphabet.size} symbols exceeds the "
                f"{1 << _MAX_CODE_LEN_HARD} limit"
            )

        header = [
            encode_uvarint(n),
            encode_uvarint(alphabet.size),
            _encode_alphabet(alphabet),
        ]

        if alphabet.size == 1:
            # Degenerate stream: everything is one symbol, no payload.
            return b"".join(header)

        lengths = _limited_code_lengths(counts)
        codes = _canonical_codes(lengths)
        header.append(pack_fixed_width(lengths.astype(np.uint64), 6))

        payload, total_bits = pack_bits(codes[inverse], lengths[inverse])
        header.append(encode_uvarint(total_bits))
        header.append(encode_section(payload))
        return b"".join(header)

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode`."""
        n, offset = decode_uvarint(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        alpha_size, offset = decode_uvarint(data, offset)
        if alpha_size == 0:
            raise CorruptStreamError("empty alphabet with nonzero symbols")
        if alpha_size > n:
            raise CorruptStreamError("alphabet larger than symbol count")
        alphabet, offset = _decode_alphabet(data, offset, alpha_size)

        if alpha_size == 1:
            # Degenerate streams legitimately encode huge runs in a few
            # bytes; only guard against allocation bombs.
            if n > (1 << 28):
                raise CorruptStreamError("implausible degenerate run length")
            return np.full(n, alphabet[0], dtype=np.int64)

        # Every coded symbol costs >= 1 payload bit; a corrupted header
        # cannot be allowed to force huge allocations below.
        if n > max(len(data), 64) * 64:
            raise CorruptStreamError("implausible symbol count")

        len_bytes = (alpha_size * 6 + 7) // 8
        if offset + len_bytes > len(data):
            raise CorruptStreamError("truncated code length table")
        lengths = unpack_fixed_width(
            data[offset : offset + len_bytes], 6, alpha_size
        ).astype(np.int64)
        offset += len_bytes
        if lengths.min() < 1 or lengths.max() > _MAX_CODE_LEN_HARD:
            raise CorruptStreamError("invalid code lengths")
        codes = _canonical_codes(lengths)
        table_sym, table_len, max_len = _build_decode_table(lengths, codes)

        total_bits, offset = decode_uvarint(data, offset)
        payload, offset = decode_section(data, offset)
        if len(payload) * 8 < total_bits:
            raise CorruptStreamError("truncated Huffman payload")

        out = np.zeros(n, dtype=np.int64)
        mask = (1 << max_len) - 1
        bitbuf = 0
        nbits = 0
        bytepos = 0
        consumed = 0
        tsym = table_sym.tolist()
        tlen = table_len.tolist()
        for i in range(n):
            while nbits < max_len and bytepos < len(payload):
                bitbuf = (bitbuf << 8) | payload[bytepos]
                bytepos += 1
                nbits += 8
            if nbits >= max_len:
                window = (bitbuf >> (nbits - max_len)) & mask
            else:
                window = (bitbuf << (max_len - nbits)) & mask
            sym_idx = tsym[window]
            length = tlen[window]
            if length == 0 or consumed + length > total_bits:
                raise CorruptStreamError("Huffman payload underflow")
            consumed += length
            if length <= nbits:
                nbits -= length
                bitbuf &= (1 << nbits) - 1
            else:
                raise CorruptStreamError("Huffman payload underflow")
            out[i] = sym_idx
        return alphabet[out]


class ChunkedHuffmanCodec:
    """Chunked canonical Huffman codec (the cuSZ layout).

    One codebook serves the whole stream, but the payload is split into
    fixed-size symbol chunks, each byte-aligned and carrying its own bit
    length in the header. That layout buys two things:

    * **Wave decoding.** All chunks decode simultaneously: iteration
      ``j`` of the decode loop reads symbol ``j`` of *every* chunk with
      one table gather, so the Python-level loop runs ``chunk_size``
      times instead of once per symbol — the same schedule a GPU
      decoder would use with one thread per chunk.
    * **Parallel-friendly layout.** Byte-aligned chunks with recorded
      lengths can be sliced and handed to independent workers without
      bit-level fixups.

    The chunk size trades header overhead (one bit-length record per
    chunk) against decode parallelism; 256 mirrors cuSZ's default.
    Streams produced by this codec are *not* compatible with
    :class:`HuffmanCodec` — the compressor header records which codec
    wrote the payload.
    """

    def __init__(self, chunk_size: int = 256) -> None:
        if chunk_size < 1:
            raise EncodingError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode an integer array into a self-describing byte stream."""
        symbols = np.asarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return encode_uvarint(0)
        alphabet, inverse, counts = symbol_table(symbols)
        if alphabet.size > (1 << _MAX_CODE_LEN_HARD):
            raise EncodingError(
                f"alphabet of {alphabet.size} symbols exceeds the "
                f"{1 << _MAX_CODE_LEN_HARD} limit"
            )
        out = [
            encode_uvarint(n),
            encode_uvarint(self.chunk_size),
            encode_uvarint(alphabet.size),
            _encode_alphabet(alphabet),
        ]
        if alphabet.size == 1:
            # Degenerate stream: everything is one symbol, no payload.
            return b"".join(out)

        lengths = _limited_code_lengths(counts)
        codes = _canonical_codes(lengths)
        out.append(pack_fixed_width(lengths.astype(np.uint64), 6))

        size = self.chunk_size
        starts = np.arange(0, n, size)
        sym_lengths = lengths[inverse]
        chunk_bits = np.add.reduceat(sym_lengths, starts)
        chunk_bytes = (chunk_bits + 7) >> 3
        width = max(int(chunk_bits.max()).bit_length(), 1)
        out.append(encode_uvarint(width))
        out.append(pack_fixed_width(chunk_bits.astype(np.uint64), width))

        # Bit offset of every symbol: its chunk's byte-aligned start
        # plus the lengths of the symbols before it within the chunk.
        chunk_start_bits = np.zeros(starts.size, dtype=np.int64)
        np.cumsum(chunk_bytes[:-1] << 3, out=chunk_start_bits[1:])
        running = np.zeros(n, dtype=np.int64)
        np.cumsum(sym_lengths[:-1], out=running[1:])
        chunk_of = np.arange(n) // size
        offsets = chunk_start_bits[chunk_of] + (
            running - running[starts][chunk_of]
        )
        total_bytes = int(chunk_bytes.sum())
        payload = pack_at_offsets(
            codes[inverse], sym_lengths, offsets, total_bytes * 8
        )
        out.append(encode_section(payload))
        return b"".join(out)

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode`."""
        n, offset = decode_uvarint(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        chunk_size, offset = decode_uvarint(data, offset)
        if not 1 <= chunk_size <= (1 << 28):
            raise CorruptStreamError("implausible chunk size")
        alpha_size, offset = decode_uvarint(data, offset)
        if alpha_size == 0:
            raise CorruptStreamError("empty alphabet with nonzero symbols")
        if alpha_size > n:
            raise CorruptStreamError("alphabet larger than symbol count")
        alphabet, offset = _decode_alphabet(data, offset, alpha_size)

        if alpha_size == 1:
            if n > (1 << 28):
                raise CorruptStreamError("implausible degenerate run length")
            return np.full(n, alphabet[0], dtype=np.int64)

        # Every coded symbol costs >= 1 payload bit; a corrupted header
        # cannot be allowed to force huge allocations below.
        if n > max(len(data), 64) * 64:
            raise CorruptStreamError("implausible symbol count")

        len_bytes = (alpha_size * 6 + 7) // 8
        if offset + len_bytes > len(data):
            raise CorruptStreamError("truncated code length table")
        lengths = unpack_fixed_width(
            data[offset : offset + len_bytes], 6, alpha_size
        ).astype(np.int64)
        offset += len_bytes
        if lengths.min() < 1 or lengths.max() > _MAX_CODE_LEN_HARD:
            raise CorruptStreamError("invalid code lengths")
        codes = _canonical_codes(lengths)
        table_sym, table_len, max_len = _build_decode_table(lengths, codes)

        width, offset = decode_uvarint(data, offset)
        if not 1 <= width <= 63:
            raise CorruptStreamError("invalid chunk bit-length width")
        n_chunks = (n + chunk_size - 1) // chunk_size
        cb_bytes = (n_chunks * width + 7) // 8
        if offset + cb_bytes > len(data):
            raise CorruptStreamError("truncated chunk length table")
        chunk_bits = unpack_fixed_width(
            data[offset : offset + cb_bytes], width, n_chunks
        ).astype(np.int64)
        offset += cb_bytes
        payload, offset = decode_section(data, offset)
        chunk_bytes = (chunk_bits + 7) >> 3
        if len(payload) < int(chunk_bytes.sum()):
            raise CorruptStreamError("truncated chunked Huffman payload")

        chunk_start_bits = np.zeros(n_chunks, dtype=np.int64)
        np.cumsum(chunk_bytes[:-1] << 3, out=chunk_start_bits[1:])
        # int64 bytes so the 4-byte window arithmetic below stays in
        # one dtype; pad so window reads at the tail never go out of
        # bounds.
        padded = np.zeros(len(payload) + 4, dtype=np.int64)
        padded[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        cursors = chunk_start_bits.copy()
        out = np.empty(n, dtype=np.int64)
        base = np.arange(n_chunks, dtype=np.int64) * chunk_size
        window_mask = (1 << max_len) - 1
        last_size = n - (n_chunks - 1) * chunk_size
        for j in range(chunk_size):
            # Chunks are full except the last, so the active set is a
            # prefix: all chunks while j is within the last chunk, all
            # but the last afterwards.
            active = n_chunks if j < last_size else n_chunks - 1
            if active == 0:
                break
            cur = cursors[:active]
            byte = cur >> 3
            if int(byte.max()) > len(payload):
                raise CorruptStreamError("chunked Huffman payload underflow")
            window = (
                (padded[byte] << 24)
                | (padded[byte + 1] << 16)
                | (padded[byte + 2] << 8)
                | padded[byte + 3]
            ) >> (32 - (cur & 7) - max_len)
            window &= window_mask
            length = table_len[window]
            if not length.all():
                raise CorruptStreamError("chunked Huffman payload underflow")
            out[base[:active] + j] = table_sym[window]
            cursors[:active] += length
        if not np.array_equal(cursors, chunk_start_bits + chunk_bits):
            raise CorruptStreamError("chunked Huffman payload underflow")
        return alphabet[out]
