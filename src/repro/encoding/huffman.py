"""Canonical Huffman codec.

This is the entropy stage used by the SZ-like, FPZIP-like and MGARD-like
compressors, mirroring SZ's use of Huffman coding on quantization codes.

Design notes:

* **Encoding is vectorized.** Symbols are mapped to (code, length) pairs
  with a numpy table lookup and packed with
  :func:`repro.encoding.bitio.pack_bits`, so encoding a million symbols
  performs ~``max_code_length`` vector operations rather than a million
  Python iterations.
* **Decoding is table-driven.** A flat ``2**max_len`` lookup table maps
  every possible ``max_len``-bit window to ``(symbol, code length)``; the
  decoder keeps a small integer bit buffer so each symbol costs O(1).
* **Code lengths are limited** (16 bits, stretching with the alphabet
  up to 22) by iteratively flattening the frequency histogram, which
  keeps the decode table small regardless of how skewed the symbol
  distribution is; alphabets too large/flat to satisfy the cap fall
  back to a balanced fixed-length code.
* The stream is self-contained: the alphabet and code lengths travel in
  the header, so :meth:`HuffmanCodec.decode` needs no side channel.
"""

from __future__ import annotations


import numpy as np

from repro.encoding.bitio import pack_bits, pack_fixed_width, unpack_fixed_width
from repro.encoding.varint import (
    decode_section,
    decode_uvarint,
    encode_section,
    encode_uvarint,
)
from repro.errors import CorruptStreamError, EncodingError

#: Baseline code-length cap; large alphabets necessarily exceed it
#: (a prefix code over n symbols needs ceil(log2 n) bits), so the
#: effective cap grows with the alphabet up to ``_MAX_CODE_LEN_HARD``.
_MAX_CODE_LEN = 16
_MAX_CODE_LEN_HARD = 22


def _max_code_len(alphabet_size: int) -> int:
    """Effective length cap for an alphabet of the given size."""
    need = int(np.ceil(np.log2(max(alphabet_size, 2)))) + 1
    return min(max(_MAX_CODE_LEN, need), _MAX_CODE_LEN_HARD)


def _huffman_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths for positive frequencies.

    Uses the O(n) two-queue merge over frequency-sorted leaves (after
    an O(n log n) sort): the two smallest weights are always at the
    front of either the remaining-leaves queue or the FIFO of already
    merged nodes, so no heap is needed. Depths are then propagated
    root-to-leaves in one pass.
    """
    n = freqs.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    order = np.argsort(freqs, kind="stable")
    leaf_weights = freqs[order].tolist()

    # Merged nodes: weights plus the two children of each.
    merged_weights: list[int] = []
    left_child: list[int] = []   # node ids; leaves are 0..n-1,
    right_child: list[int] = []  # merged nodes are n, n+1, ...
    li = 0  # next unconsumed leaf
    mi = 0  # next unconsumed merged node

    def take_smallest() -> tuple[int, int]:
        nonlocal li, mi
        take_leaf = li < n and (
            mi >= len(merged_weights) or leaf_weights[li] <= merged_weights[mi]
        )
        if take_leaf:
            li += 1
            return int(order[li - 1]), int(leaf_weights[li - 1])
        mi += 1
        return n + mi - 1, int(merged_weights[mi - 1])

    for _ in range(n - 1):
        a_id, a_w = take_smallest()
        b_id, b_w = take_smallest()
        merged_weights.append(a_w + b_w)
        left_child.append(a_id)
        right_child.append(b_id)

    # Root is the last merged node; push depths down to the leaves.
    lengths = np.zeros(n, dtype=np.int64)
    n_merged = len(merged_weights)
    depth = [0] * n_merged
    for node in range(n_merged - 1, -1, -1):
        d = depth[node] + 1
        for child in (left_child[node], right_child[node]):
            if child >= n:
                depth[child - n] = d
            else:
                lengths[child] = d
    return lengths


def _limited_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code lengths capped at the alphabet's effective maximum.

    Histogram flattening shortens over-deep trees; a flat histogram
    cannot flatten further, so after the cap's worth of halvings the
    code degrades gracefully to a balanced (fixed-length) tree, which
    always satisfies Kraft for ``ceil(log2 n)`` bits.
    """
    cap = _max_code_len(freqs.size)
    working = freqs.astype(np.int64).copy()
    for _ in range(cap + 2):
        lengths = _huffman_code_lengths(working)
        if lengths.max() <= cap:
            return lengths
        working = (working >> 1) | 1
    balanced = int(np.ceil(np.log2(freqs.size)))
    return np.full(freqs.size, balanced, dtype=np.int64)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes: sorted by (length, symbol index)."""
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        length = int(lengths[idx])
        code <<= length - prev_len
        codes[idx] = code
        code += 1
        prev_len = length
    return codes


def _build_decode_table(lengths: np.ndarray, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat window -> (symbol, length) arrays for max-length windows."""
    max_len = int(lengths.max())
    size = 1 << max_len
    table_sym = np.zeros(size, dtype=np.int64)
    table_len = np.zeros(size, dtype=np.int64)
    for sym_idx in range(lengths.size):
        length = int(lengths[sym_idx])
        code = int(codes[sym_idx])
        start = code << (max_len - length)
        end = (code + 1) << (max_len - length)
        table_sym[start:end] = sym_idx
        table_len[start:end] = length
    return table_sym, table_len, max_len


class HuffmanCodec:
    """Self-contained canonical Huffman codec over int64 symbol arrays."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode an integer array into a self-describing byte stream."""
        symbols = np.asarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return encode_uvarint(0)
        alphabet, inverse = np.unique(symbols, return_inverse=True)
        if alphabet.size > (1 << _MAX_CODE_LEN_HARD):
            # Beyond this the balanced fallback could not satisfy the
            # hard length cap; callers should pre-split such streams.
            raise EncodingError(
                f"alphabet of {alphabet.size} symbols exceeds the "
                f"{1 << _MAX_CODE_LEN_HARD} limit"
            )
        counts = np.bincount(inverse, minlength=alphabet.size).astype(np.int64)

        header = [encode_uvarint(n), encode_uvarint(alphabet.size)]
        # Alphabet as zigzag deltas: values are sorted so deltas are >= 0
        # except the first, which may be negative.
        first = int(alphabet[0])
        zigzag_first = (first << 1) ^ (first >> 63)
        header.append(encode_uvarint(zigzag_first))
        deltas = np.diff(alphabet.astype(np.int64))
        header.extend(encode_uvarint(int(d)) for d in deltas)

        if alphabet.size == 1:
            # Degenerate stream: everything is one symbol, no payload.
            return b"".join(header)

        lengths = _limited_code_lengths(counts)
        codes = _canonical_codes(lengths)
        header.append(pack_fixed_width(lengths.astype(np.uint64), 6))

        payload, total_bits = pack_bits(codes[inverse], lengths[inverse])
        header.append(encode_uvarint(total_bits))
        header.append(encode_section(payload))
        return b"".join(header)

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode`."""
        n, offset = decode_uvarint(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        alpha_size, offset = decode_uvarint(data, offset)
        if alpha_size == 0:
            raise CorruptStreamError("empty alphabet with nonzero symbols")
        if alpha_size > n:
            raise CorruptStreamError("alphabet larger than symbol count")
        zigzag_first, offset = decode_uvarint(data, offset)
        first = (zigzag_first >> 1) ^ -(zigzag_first & 1)
        limit = 1 << 62
        if abs(first) > limit:
            raise CorruptStreamError("implausible alphabet start")
        alphabet = np.zeros(alpha_size, dtype=np.int64)
        value = first
        for i in range(1, alpha_size):
            delta, offset = decode_uvarint(data, offset)
            value += delta
            if value > limit:
                raise CorruptStreamError("alphabet delta overflow")
            alphabet[i] = value
        alphabet[0] = first

        if alpha_size == 1:
            # Degenerate streams legitimately encode huge runs in a few
            # bytes; only guard against allocation bombs.
            if n > (1 << 28):
                raise CorruptStreamError("implausible degenerate run length")
            return np.full(n, alphabet[0], dtype=np.int64)

        # Every coded symbol costs >= 1 payload bit; a corrupted header
        # cannot be allowed to force huge allocations below.
        if n > max(len(data), 64) * 64:
            raise CorruptStreamError("implausible symbol count")

        len_bytes = (alpha_size * 6 + 7) // 8
        if offset + len_bytes > len(data):
            raise CorruptStreamError("truncated code length table")
        lengths = unpack_fixed_width(
            data[offset : offset + len_bytes], 6, alpha_size
        ).astype(np.int64)
        offset += len_bytes
        if lengths.min() < 1 or lengths.max() > _MAX_CODE_LEN_HARD:
            raise CorruptStreamError("invalid code lengths")
        codes = _canonical_codes(lengths)
        table_sym, table_len, max_len = _build_decode_table(lengths, codes)

        total_bits, offset = decode_uvarint(data, offset)
        payload, offset = decode_section(data, offset)
        if len(payload) * 8 < total_bits:
            raise CorruptStreamError("truncated Huffman payload")

        out = np.zeros(n, dtype=np.int64)
        mask = (1 << max_len) - 1
        bitbuf = 0
        nbits = 0
        bytepos = 0
        consumed = 0
        tsym = table_sym.tolist()
        tlen = table_len.tolist()
        for i in range(n):
            while nbits < max_len and bytepos < len(payload):
                bitbuf = (bitbuf << 8) | payload[bytepos]
                bytepos += 1
                nbits += 8
            if nbits >= max_len:
                window = (bitbuf >> (nbits - max_len)) & mask
            else:
                window = (bitbuf << (max_len - nbits)) & mask
            sym_idx = tsym[window]
            length = tlen[window]
            if length == 0 or consumed + length > total_bits:
                raise CorruptStreamError("Huffman payload underflow")
            consumed += length
            if length <= nbits:
                nbits -= length
                bitbuf &= (1 << nbits) - 1
            else:
                raise CorruptStreamError("Huffman payload underflow")
            out[i] = sym_idx
        return alphabet[out]
