"""Bit-level I/O primitives.

Two families live here:

* :class:`BitWriter` / :class:`BitReader` — simple sequential bit streams
  used for headers and small payloads.
* :func:`pack_bits` / :func:`unpack_bits` and the fixed-width variants —
  vectorized numpy routines used on million-element symbol arrays, where a
  Python per-symbol loop would be prohibitively slow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError

#: ``_KEEP_MASK[n]`` keeps the low ``n`` bits of a uint64 (n in 0..64).
_KEEP_MASK = np.concatenate(
    (
        (np.uint64(1) << np.arange(64, dtype=np.uint64)) - np.uint64(1),
        np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64),
    )
)


class BitWriter:
    """Append-only MSB-first bit stream."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_bit(self, bit: int) -> None:
        self._bits.append(1 if bit else 0)

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def __len__(self) -> int:
        return len(self._bits)

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        if not self._bits:
            return b""
        arr = np.array(self._bits, dtype=np.uint8)
        return np.packbits(arr).tobytes()


class BitReader:
    """Sequential MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise CorruptStreamError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._bits):
            raise CorruptStreamError("bit stream exhausted")
        value = 0
        for _ in range(width):
            value = (value << 1) | int(self._bits[self._pos])
            self._pos += 1
        return value


def pack_at_offsets(
    codes: np.ndarray,
    lengths: np.ndarray,
    offsets: np.ndarray,
    total_bits: int,
) -> bytes:
    """Scatter variable-length codes to explicit bit offsets (MSB-first).

    The kernel under :func:`pack_bits` and the chunked Huffman encoder:
    each code's bits land at ``offsets[i] .. offsets[i]+lengths[i]``.
    Offsets must be non-decreasing with non-overlapping codes; gaps are
    zero-filled (that is how chunk padding gets its zero bits). The
    whole scatter is two ``bitwise_or`` passes over 64-bit words — one
    for each code's home word, one for the straddle into the next word
    — so packing a million symbols costs a handful of vector ops.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.size == 0:
        return bytes((total_bits + 7) // 8)
    # Codes may carry stray bits above their declared length (callers
    # pass raw table lookups); mask to the length like the bit-by-bit
    # packer implicitly did.
    codes = codes & _KEEP_MASK[np.minimum(lengths, 64)]
    word_idx = offsets >> 6
    shift = 64 - (offsets & 63) - lengths
    # Left-shift through a signed view: numpy's int64 shift loop skips
    # the unsigned fixups and the masked codes make the reinterpret
    # lossless. Codes whose tail crosses the word boundary (shift < 0)
    # instead contribute their top bits to the home word.
    first = (codes.view(np.int64) << np.clip(shift, 0, 63)).view(np.uint64)
    straddle = shift < 0
    has_straddle = bool(straddle.any())
    if has_straddle:
        first[straddle] = codes[straddle] >> (-shift[straddle]).astype(
            np.uint64
        )
    words = np.zeros((total_bits + 63) // 64 + 1, dtype=np.uint64)
    # Offsets are non-decreasing, so home words arrive sorted: fold each
    # run of equal word_idx with one ``reduceat`` pass instead of the
    # element-wise ``bitwise_or.at`` scatter (~5x slower).
    starts = np.flatnonzero(np.r_[True, word_idx[1:] != word_idx[:-1]])
    words[word_idx[starts]] = np.bitwise_or.reduceat(first, starts)
    if has_straddle:
        # Non-overlapping codes mean at most one code crosses any word
        # boundary, so spill words are unique; plain fancy indexing
        # ORs them into whatever the home pass already wrote.
        idx2 = word_idx[straddle] + 1
        spill = codes[straddle] << (64 + shift[straddle]).astype(np.uint64)
        words[idx2] = words[idx2] | spill
    return words.astype(">u8").tobytes()[: (total_bits + 7) // 8]


def pack_bits(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Pack per-symbol variable-length codes into a contiguous bit buffer.

    Vectorized over symbols via :func:`pack_at_offsets` (word-wise OR
    scatter); byte-identical to packing each code MSB-first by hand.

    Args:
        codes: uint64 array of code values, one per symbol (MSB-justified
            to their own length, i.e. the natural canonical-Huffman code).
        lengths: per-symbol code lengths in bits (same shape as ``codes``).

    Returns:
        ``(buffer, total_bits)`` where ``buffer`` is the packed bytes.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return b"", 0
    offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    total_bits = int(offsets[-1] + lengths[-1])
    return pack_at_offsets(codes, lengths, offsets, total_bits), total_bits


def _pack_bits_reference(
    codes: np.ndarray, lengths: np.ndarray
) -> tuple[bytes, int]:
    """Bit-by-bit packer retained as the parity oracle for tests."""
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.size == 0:
        return b"", 0
    offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    total_bits = int(offsets[-1] + lengths[-1])
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    for j in range(max_len):
        mask = lengths > j
        if not mask.any():
            continue
        shift = (lengths[mask] - 1 - j).astype(np.uint64)
        bit_vals = ((codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
        bits[offsets[mask] + j] = bit_vals
    return np.packbits(bits).tobytes(), total_bits


def unpack_bits(buffer: bytes, total_bits: int) -> np.ndarray:
    """Inverse of the byte-packing in :func:`pack_bits`: a flat bit array."""
    bits = np.unpackbits(np.frombuffer(buffer, dtype=np.uint8))
    if bits.size < total_bits:
        raise CorruptStreamError("buffer shorter than declared bit count")
    return bits[:total_bits]


def pack_fixed_width(values: np.ndarray, width: int) -> bytes:
    """Pack non-negative integers into ``width`` bits each (vectorized)."""
    if width < 0 or width > 64:
        raise ValueError("width must be in [0, 64]")
    values = np.asarray(values, dtype=np.uint64)
    if width == 0 or values.size == 0:
        return b""
    if width < 64 and np.any(values >> np.uint64(width)):
        raise ValueError(f"some values do not fit in {width} bits")
    n = values.size
    bits = np.zeros((n, width), dtype=np.uint8)
    for j in range(width):
        bits[:, j] = (values >> np.uint64(width - 1 - j)) & np.uint64(1)
    return np.packbits(bits.ravel()).tobytes()


def unpack_fixed_width(buffer: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed_width`; returns uint64 values."""
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(buffer, dtype=np.uint8))
    needed = width * count
    if bits.size < needed:
        raise CorruptStreamError("buffer shorter than declared payload")
    bits = bits[:needed].reshape(count, width).astype(np.uint64)
    values = np.zeros(count, dtype=np.uint64)
    for j in range(width):
        values = (values << np.uint64(1)) | bits[:, j]
    return values
