"""Static range (arithmetic) coder.

SZ3 offers an arithmetic-coding backend beside Huffman: arithmetic
codes approach the entropy without Huffman's whole-bit-per-symbol
floor, which pays off on highly skewed quantization-code histograms
(one symbol at 95+ % probability costs ~0.07 bits instead of 1).

This is a classic two-pass byte-oriented range coder: the first pass
counts frequencies (quantized to a 16-bit total and carried in the
header), the second codes symbols against the static cumulative table.
Coding is a per-symbol Python loop, so the codec targets the ablation
benches and moderate payloads rather than the compressors' hot path —
the trade is documented where it is used.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.huffman import symbol_table
from repro.encoding.varint import (
    decode_section,
    decode_uvarint,
    encode_section,
    encode_uvarint,
)
from repro.errors import CorruptStreamError, EncodingError

_TOTAL_BITS = 16
_TOTAL = 1 << _TOTAL_BITS
_TOP = 1 << 24
_BOTTOM = 1 << 16
_MAX_ALPHABET = 1 << 16


def _quantized_counts(counts: np.ndarray) -> np.ndarray:
    """Scale counts to sum to ``_TOTAL`` with every symbol >= 1."""
    counts = counts.astype(np.float64)
    scaled = np.maximum(
        1, np.floor(counts * (_TOTAL - counts.size) / counts.sum())
    ).astype(np.int64)
    # Distribute the remainder onto the largest buckets.
    deficit = _TOTAL - int(scaled.sum())
    if deficit > 0:
        order = np.argsort(-counts)
        for i in range(deficit):
            scaled[order[i % order.size]] += 1
    elif deficit < 0:
        order = np.argsort(-scaled)
        i = 0
        while deficit < 0:
            idx = order[i % order.size]
            if scaled[idx] > 1:
                scaled[idx] -= 1
                deficit += 1
            i += 1
    return scaled


class RangeCoder:
    """Self-contained static range coder over int64 symbol arrays."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode an integer array into a self-describing stream."""
        symbols = np.asarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return encode_uvarint(0)
        alphabet, inverse, counts = symbol_table(symbols)
        if alphabet.size > _MAX_ALPHABET:
            raise EncodingError(
                f"alphabet of {alphabet.size} exceeds the range coder's "
                f"{_MAX_ALPHABET} limit"
            )
        header = [encode_uvarint(n), encode_uvarint(alphabet.size)]
        first = int(alphabet[0])
        header.append(encode_uvarint((first << 1) ^ (first >> 63)))
        header.extend(
            encode_uvarint(int(d)) for d in np.diff(alphabet.astype(np.int64))
        )
        if alphabet.size == 1:
            return b"".join(header)

        freqs = _quantized_counts(counts)
        header.extend(encode_uvarint(int(f)) for f in freqs)
        cumulative = np.concatenate(([0], np.cumsum(freqs)))

        low = 0
        range_ = 0xFFFFFFFF
        out = bytearray()
        cum_list = cumulative.tolist()
        freq_list = freqs.tolist()
        for sym in inverse.tolist():
            range_ //= _TOTAL
            low += cum_list[sym] * range_
            range_ *= freq_list[sym]
            # Renormalize: flush top bytes while the range is small or
            # a carry has been resolved.
            while (low ^ (low + range_)) < _TOP or (
                range_ < _BOTTOM and ((range_ := -low & (_BOTTOM - 1)) or True)
            ):
                out.append((low >> 24) & 0xFF)
                low = (low << 8) & 0xFFFFFFFF
                range_ = (range_ << 8) & 0xFFFFFFFF
        for _ in range(4):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & 0xFFFFFFFF

        header.append(encode_section(bytes(out)))
        return b"".join(header)

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode`."""
        n, offset = decode_uvarint(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        alpha_size, offset = decode_uvarint(data, offset)
        if alpha_size == 0 or alpha_size > _MAX_ALPHABET:
            raise CorruptStreamError("bad range-coder alphabet size")
        zz, offset = decode_uvarint(data, offset)
        first = (zz >> 1) ^ -(zz & 1)
        alphabet = np.zeros(alpha_size, dtype=np.int64)
        value = first
        alphabet[0] = first
        for i in range(1, alpha_size):
            delta, offset = decode_uvarint(data, offset)
            value += delta
            if abs(value) > (1 << 62):
                raise CorruptStreamError("alphabet overflow")
            alphabet[i] = value
        if alpha_size == 1:
            if n > (1 << 28):
                raise CorruptStreamError("implausible degenerate run")
            return np.full(n, alphabet[0], dtype=np.int64)

        freqs = np.zeros(alpha_size, dtype=np.int64)
        for i in range(alpha_size):
            f, offset = decode_uvarint(data, offset)
            freqs[i] = f
        if freqs.sum() != _TOTAL or freqs.min() < 1:
            raise CorruptStreamError("bad range-coder frequency table")
        cumulative = np.concatenate(([0], np.cumsum(freqs)))
        payload, offset = decode_section(data, offset)
        if len(payload) < 4:
            raise CorruptStreamError("range payload too short")
        # Arithmetic coding can spend far below one bit per symbol, so
        # only an absolute allocation-bomb cap applies here.
        if n > (1 << 28):
            raise CorruptStreamError("implausible symbol count")

        # Symbol lookup table: cumulative slot -> symbol index.
        slot_to_sym = np.repeat(
            np.arange(alpha_size, dtype=np.int64), freqs
        )

        low = 0
        range_ = 0xFFFFFFFF
        code = 0
        pos = 0
        for _ in range(4):
            code = ((code << 8) | (payload[pos] if pos < len(payload) else 0)) & 0xFFFFFFFF
            pos += 1
        out = np.zeros(n, dtype=np.int64)
        cum_list = cumulative.tolist()
        freq_list = freqs.tolist()
        slots = slot_to_sym.tolist()
        for i in range(n):
            range_ //= _TOTAL
            # Corrupted payloads can push `code` outside [low, low+range);
            # clamp the slot so decoding degrades to wrong-but-bounded.
            slot = min(max((code - low) // range_, 0), _TOTAL - 1)
            sym = slots[slot]
            out[i] = sym
            low += cum_list[sym] * range_
            range_ *= freq_list[sym]
            while (low ^ (low + range_)) < _TOP or (
                range_ < _BOTTOM and ((range_ := -low & (_BOTTOM - 1)) or True)
            ):
                code = (
                    (code << 8) | (payload[pos] if pos < len(payload) else 0)
                ) & 0xFFFFFFFF
                pos += 1
                low = (low << 8) & 0xFFFFFFFF
                range_ = (range_ << 8) & 0xFFFFFFFF
        return alphabet[out]
