"""Run-length coding for integer symbol streams.

Scientific quantization codes are dominated by long runs of the
"perfectly predicted" symbol, so a run-length stage ahead of Huffman
coding both shrinks the payload and (more importantly here) shrinks the
symbol count the pure-Python Huffman decoder has to walk.

Two codecs are provided:

* :func:`rle_encode` / :func:`rle_decode` — generic (value, run) pairs,
  fully vectorized with numpy run detection.
* :func:`zero_rle_encode` / :func:`zero_rle_decode` — specialised for
  streams where only a single known value (usually 0) forms long runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError

#: Decoded streams never legitimately expand past this many symbols; a
#: corrupted run length must not be allowed to allocate unbounded
#: memory before the caller's own length check fires.
_MAX_DECODED = 1 << 28


def rle_encode(
    symbols: np.ndarray, *, arena=None
) -> tuple[np.ndarray, np.ndarray]:
    """Split a symbol stream into (values, run lengths).

    Args:
        symbols: the stream to encode.
        arena: optional :class:`~repro.compressors.kernels.KernelArena`;
            when given, the returned arrays are views into pooled
            scratch buffers (valid until the next ``rle.*`` request on
            the same arena) instead of fresh allocations per call.

    Returns:
        ``(values, runs)`` with ``np.repeat(values, runs)`` reproducing
        the input exactly.
    """
    symbols = np.asarray(symbols).ravel()
    if symbols.size == 0:
        return symbols.copy(), np.zeros(0, dtype=np.int64)
    change = np.nonzero(symbols[1:] != symbols[:-1])[0] + 1
    n_runs = change.size + 1
    if arena is None:
        values = np.empty(n_runs, dtype=symbols.dtype)
        runs = np.empty(n_runs, dtype=np.int64)
    else:
        values = arena.scratch("rle.values", n_runs, symbols.dtype)
        runs = arena.scratch("rle.runs", n_runs, np.int64)
    values[0] = symbols[0]
    np.take(symbols, change, out=values[1:])
    if n_runs == 1:
        runs[0] = symbols.size
    else:
        runs[0] = change[0]
        np.subtract(change[1:], change[:-1], out=runs[1:-1])
        runs[-1] = symbols.size - change[-1]
    return values, runs


def rle_decode(values: np.ndarray, runs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`.

    Raises:
        CorruptStreamError: mismatched shapes, non-positive runs, or an
            implausibly large decoded size — the failure modes of a
            corrupted upstream stream.
    """
    values = np.asarray(values)
    runs = np.asarray(runs, dtype=np.int64)
    if values.shape != runs.shape:
        raise CorruptStreamError("values and runs must have the same shape")
    if runs.size and runs.min() < 1:
        raise CorruptStreamError("runs must be positive")
    if runs.size and int(runs.sum()) > _MAX_DECODED:
        raise CorruptStreamError("implausible RLE decoded size")
    return np.repeat(values, runs)


def zero_rle_encode(
    symbols: np.ndarray, zero: int = 0, *, arena=None
) -> tuple[np.ndarray, np.ndarray]:
    """Encode as interleaved (zero-run-length, literal) token stream.

    The output token stream alternates: a count of ``zero`` symbols
    (possibly 0), then one literal non-zero symbol — except possibly a
    trailing zero-run. This biases the alphabet towards small run counts,
    which Huffman-codes extremely well on smooth scientific data.

    Args:
        symbols: the stream to encode.
        zero: the symbol that forms runs.
        arena: optional :class:`~repro.compressors.kernels.KernelArena`;
            when given, the returned arrays are views into pooled
            scratch buffers (valid until the next ``rle.*`` request on
            the same arena) instead of fresh allocations per call.

    Returns:
        ``(tokens, literals)`` where ``tokens`` holds the zero-run
        lengths and ``literals`` the non-zero symbols in order.
    """
    symbols = np.asarray(symbols).ravel()
    nz = np.nonzero(symbols != zero)[0]
    if arena is None:
        literals = np.empty(nz.size, dtype=symbols.dtype)
        runs = np.empty(nz.size + 1, dtype=np.int64)
    else:
        literals = arena.scratch("rle.literals", nz.size, symbols.dtype)
        runs = arena.scratch("rle.tokens", nz.size + 1, np.int64)
    np.take(symbols, nz, out=literals)
    # Zero-run before each literal, plus the trailing run.
    if nz.size == 0:
        runs[0] = symbols.size
    else:
        runs[0] = nz[0]
        np.subtract(nz[1:], nz[:-1], out=runs[1:-1])
        runs[1:-1] -= 1
        runs[-1] = symbols.size - nz[-1] - 1
    return runs, literals


def zero_rle_decode(
    tokens: np.ndarray, literals: np.ndarray, zero: int = 0
) -> np.ndarray:
    """Inverse of :func:`zero_rle_encode`.

    Raises:
        CorruptStreamError: inconsistent token/literal counts, negative
            runs, or an implausibly large decoded size.
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    literals = np.asarray(literals)
    if tokens.size != literals.size + 1:
        raise CorruptStreamError("token stream must have exactly one trailing run")
    if tokens.size and tokens.min() < 0:
        raise CorruptStreamError("zero-run lengths must be non-negative")
    total = int(tokens.sum()) + literals.size
    if total > _MAX_DECODED:
        raise CorruptStreamError("implausible zero-RLE decoded size")
    out = np.full(total, zero, dtype=np.int64)
    if literals.size:
        positions = np.cumsum(tokens[:-1] + 1) - 1
        out[positions] = literals
    return out
