"""Varint and small-header serialization helpers.

All multi-part compressed payloads in this library are laid out as a
sequence of length-prefixed sections; the helpers here implement the
LEB128-style unsigned varint used for those prefixes plus a tiny header
format for numpy arrays (dtype + shape).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError

_DTYPE_TAGS: dict[str, int] = {
    "float32": 0,
    "float64": 1,
    "int8": 2,
    "int16": 3,
    "int32": 4,
    "int64": 5,
    "uint8": 6,
    "uint16": 7,
    "uint32": 8,
    "uint64": 9,
}
_TAG_DTYPES = {tag: np.dtype(name) for name, tag in _DTYPE_TAGS.items()}


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint starting at ``offset``.

    Returns:
        ``(value, new_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CorruptStreamError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptStreamError("varint too long")


def encode_array_header(shape: tuple[int, ...], dtype: np.dtype) -> bytes:
    """Serialize an array's dtype tag and shape."""
    name = np.dtype(dtype).name
    if name not in _DTYPE_TAGS:
        raise ValueError(f"unsupported dtype {name!r}")
    parts = [encode_uvarint(_DTYPE_TAGS[name]), encode_uvarint(len(shape))]
    parts.extend(encode_uvarint(dim) for dim in shape)
    return b"".join(parts)


def decode_array_header(data: bytes, offset: int = 0) -> tuple[tuple[int, ...], np.dtype, int]:
    """Inverse of :func:`encode_array_header`.

    Returns:
        ``(shape, dtype, new_offset)``.
    """
    tag, offset = decode_uvarint(data, offset)
    if tag not in _TAG_DTYPES:
        raise CorruptStreamError(f"unknown dtype tag {tag}")
    ndim, offset = decode_uvarint(data, offset)
    if ndim > 16:
        raise CorruptStreamError("implausible array rank")
    dims = []
    for _ in range(ndim):
        dim, offset = decode_uvarint(data, offset)
        dims.append(dim)
    return tuple(dims), _TAG_DTYPES[tag], offset


def encode_section(payload: bytes) -> bytes:
    """Length-prefix a payload."""
    return encode_uvarint(len(payload)) + payload


def decode_section(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Read a length-prefixed payload; returns ``(payload, new_offset)``."""
    length, offset = decode_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise CorruptStreamError("truncated section")
    return data[offset:end], end
