"""Exception hierarchy for the repro (FXRZ) library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EncodingError(ReproError):
    """A lossless codec failed to encode or decode a payload."""


class CorruptStreamError(EncodingError):
    """A serialized stream is malformed or truncated."""


class CompressionError(ReproError):
    """A lossy compressor failed to compress or decompress."""


class ErrorBoundViolation(CompressionError):
    """Decompressed data violates the promised error bound.

    This is raised by verification utilities, never silently ignored:
    the error-bound guarantee is the core contract of every compressor in
    :mod:`repro.compressors`.
    """


class InvalidConfiguration(ReproError):
    """A user-supplied parameter is outside its valid domain."""


class NotFittedError(ReproError):
    """A model or pipeline was used before :meth:`fit` was called."""


class DatasetError(ReproError):
    """A dataset generator or registry lookup failed."""


class SearchError(ReproError):
    """An iterative search (FRaZ baseline) failed to produce a result."""


class OutOfDistributionError(ReproError):
    """Runtime data falls outside the model's training envelope.

    Raised by guarded inference when the confidence check fails and the
    caller disabled every fallback tier (``fallback="none"``).
    """


class FallbackExhaustedError(ReproError):
    """Every rung of the guarded-inference degradation ladder failed."""


class ServiceOverloadedError(ReproError):
    """The serving admission queue is full; the request was shed.

    Attributes:
        retry_after: suggested seconds to wait before resubmitting,
            derived from the current queue depth and recent latency.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceededError(ReproError):
    """A request's deadline passed before a result was produced."""


class ServiceClosedError(InvalidConfiguration):
    """The service is closed: new submissions are refused and, on a
    non-draining close, queued requests are rejected with this error
    instead of leaving their callers hanging.

    Subclasses :class:`InvalidConfiguration` so pre-existing callers
    catching that on submit-after-close keep working.
    """


class ShardFailedError(ReproError):
    """A worker shard died (or was killed) and the request could not be
    completed by redelivery or the degradation-ladder fallback.

    Attributes:
        shard: index of the shard that last held the request.
        redeliveries: how many times the request was redistributed.
    """

    def __init__(
        self, message: str, shard: int = -1, redeliveries: int = 0
    ) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.redeliveries = int(redeliveries)


class RetryExhausted(ReproError):
    """A retried operation ran out of attempts.

    Attributes:
        attempts: how many attempts were made before giving up.
        last_cause: human-readable description of the final failure.
    """

    def __init__(self, message: str, attempts: int = 0, last_cause: str = "") -> None:
        super().__init__(message)
        self.attempts = int(attempts)
        self.last_cause = str(last_cause)
