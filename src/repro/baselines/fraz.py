"""FRaZ — the trial-and-error fixed-ratio baseline (Underwood et al.).

FRaZ reaches a target ratio by *running the compressor* on the full
dataset at iteratively refined error configurations. Following the
paper's configuration (Sec. V-A4):

* the global error-configuration search range is split into ``k = 3``
  bins;
* each bin receives an equal share of the total iteration budget
  ("max-iterations for each bin ... max-iterations and number-bins
  together provide us total max iterations"); a bin that does not
  contain the target burns its share probing unproductive configs;
* within a bin the search probes the edges and bisects the bracket
  enclosing the target ratio.

FRaZ is compressor-agnostic, so by default it traverses the *raw*
configuration axis (``search_scale="linear"``) — it has no prior that
useful error bounds span decades, which is why small targets take many
iterations to localize (the low-TCR struggles in Fig. 12).

Every iteration costs one full compression, which is exactly why the
paper measures FRaZ at one-to-two orders of magnitude more analysis
time than FXRZ (Table VIII) — more iterations buy accuracy (Fig. 12's
6- vs 15-iteration curves) at proportional cost.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration, SearchError
from repro.runtime.compat import UNSET, legacy


@dataclass(frozen=True)
class FRaZResult:
    """Outcome of one FRaZ search.

    Attributes:
        config: best error configuration found.
        measured_ratio: compression ratio at that configuration.
        target_ratio: the requested TCR.
        iterations: compressor runs spent (cache hits included — they
            still represent compressor work in the modeled system).
        search_seconds: total compressor time of those runs.
        evaluations: every (config, ratio) probed, in order.
        eval_seconds: wall time of each evaluation, in order.
    """

    config: float
    measured_ratio: float
    target_ratio: float
    iterations: int
    search_seconds: float
    evaluations: list[tuple[float, float]] = field(default_factory=list)
    eval_seconds: list[float] = field(default_factory=list)

    @property
    def estimation_error(self) -> float:
        return abs(self.target_ratio - self.measured_ratio) / self.target_ratio


def _probe_task(config: float, arrays: dict, compressor: Compressor):
    """One window probe (executor worker): ``(ratio, seconds)``."""
    tick = time.perf_counter()
    ratio = compressor.compression_ratio(arrays["data"], config)
    return ratio, time.perf_counter() - tick


def _probe_batch(configs: list, arrays: dict, compressor: Compressor):
    """A fat probe task: several edge probes in one dispatch.

    One batch runs on one worker; a single compression stream carries
    the kernel arena across its probes.
    """
    stream = compressor.compress_stream()
    results = []
    for config in configs:
        tick = time.perf_counter()
        ratio = stream.compress(arrays["data"], config).compression_ratio
        results.append((ratio, time.perf_counter() - tick))
    return results


class FRaZ:
    """Windowed iterative fixed-ratio search.

    Args:
        compressor: the error-controlled compressor to drive.
        max_iterations: total compressor-run budget (the paper uses 6
            and 15).
        n_bins: number of windows the global range is split into (the
            paper uses 3); the budget is divided evenly among them.
        search_scale: ``"linear"`` (default, the agnostic behavior) or
            ``"log"`` (an informed ablation variant).
        ctx: a :class:`~repro.runtime.RuntimeContext`. Its executor
            evaluates the window edge probes every bin opens with
            concurrently (they are known upfront and independent)
            before the inherently sequential bisections start — the
            recorded search is bit-identical to the serial one, only
            the wall clock changes. Its memo is shared across
            searches/paths; hits are charged their recorded compressor
            time, exactly like the legacy ``cache`` dict, so FRaZ's
            cost accounting stays honest.
        executor: deprecated — pass ``ctx=RuntimeContext(jobs=...)``.
        memo: deprecated — contexts share their memo automatically.
    """

    def __init__(
        self,
        compressor: Compressor,
        max_iterations: int = 15,
        n_bins: int = 3,
        search_scale: str = "linear",
        executor=UNSET,
        memo=UNSET,
        *,
        ctx=None,
    ) -> None:
        if max_iterations < 2:
            raise InvalidConfiguration("max_iterations must be >= 2")
        if n_bins < 1:
            raise InvalidConfiguration("n_bins must be >= 1")
        if search_scale not in ("linear", "log"):
            raise InvalidConfiguration("search_scale must be 'linear' or 'log'")
        self.compressor = compressor
        self.max_iterations = max_iterations
        self.n_bins = n_bins
        self.search_scale = search_scale
        self.ctx = ctx
        executor = legacy("FRaZ", "executor", executor)
        memo = legacy("FRaZ", "memo", memo)
        self.executor = (
            executor
            if executor is not None
            else (ctx.executor if ctx is not None else None)
        )
        self.memo = (
            memo if memo is not None else (ctx.memo if ctx is not None else None)
        )

    def search(
        self,
        data: np.ndarray,
        target_ratio: float,
        domain: tuple[float, float] | None = None,
        cache: dict[float, tuple[float, float]] | None = None,
    ) -> FRaZResult:
        """Find the config whose measured ratio is closest to the target.

        Args:
            data: the dataset to fix the ratio for.
            target_ratio: TCR.
            domain: (low, high) config range; defaults to the
                compressor's domain for ``data``.
            cache: optional shared ``config -> (ratio, seconds)`` memo;
                hits are charged their recorded compressor time, so
                repeated searches stay honest about FRaZ's cost while
                the *experiment harness* avoids redundant real runs.
        """
        sources: dict[str, int] = {}
        with obs.span(
            "fraz.search",
            compressor=self.compressor.name,
            target_ratio=float(target_ratio),
            max_iterations=self.max_iterations,
        ) as span:
            result = self._search_body(
                data, target_ratio, domain, cache, sources
            )
            span.set_attributes(
                iterations=result.iterations,
                measured_ratio=result.measured_ratio,
                search_seconds=result.search_seconds,
            )
        registry = obs.get_registry()
        if registry is not None:
            # Counters are flushed once per search, not per probe, so
            # the probe loop stays registry-free.
            registry.counter(
                "repro_fraz_searches_total", "FRaZ searches completed"
            ).inc()
            probes = registry.counter(
                "repro_fraz_probes_total",
                "FRaZ probes by source (run/memo/prefetch/cache)",
            )
            for source, count in sources.items():
                probes.inc(count, source=source)
            registry.counter(
                "repro_fraz_compressor_seconds_total",
                "compressor seconds charged to FRaZ searches",
            ).inc(result.search_seconds)
        return result

    def _search_body(
        self,
        data: np.ndarray,
        target_ratio: float,
        domain: tuple[float, float] | None,
        cache: dict[float, tuple[float, float]] | None,
        sources: dict[str, int],
    ) -> FRaZResult:
        if target_ratio <= 0:
            raise InvalidConfiguration("target ratio must be > 0")
        lo, hi = (
            domain if domain is not None else self.compressor.config_domain(data)
        )
        if lo >= hi:
            raise SearchError("empty search domain")
        log_space = self.search_scale == "log"
        if log_space and lo <= 0:
            raise SearchError("log-scale search requires a positive domain")

        def to_axis(c: float) -> float:
            return float(np.log10(c)) if log_space else float(c)

        def from_axis(x: float) -> float:
            return float(10.0**x) if log_space else float(x)

        evaluations: list[tuple[float, float]] = []
        eval_seconds: list[float] = []
        # Sorted probe record: the duplicate-probe check bisects this
        # instead of scanning every prior evaluation (O(log n) vs the
        # old O(n) scan per bisection step), and its keys are the same
        # normalized configs the memo cache uses.
        probed_configs: list[float] = []
        memo = self.memo
        fingerprint = memo.fingerprint(data) if memo is not None else None
        prefetched: dict[float, tuple[float, float]] = {}
        # One stream per search: every real probe compresses the same
        # array, so the kernel arena sized by the first run is reused by
        # all later bisection probes.
        stream = self.compressor.compress_stream()

        def already_probed(config: float) -> bool:
            at = bisect.bisect_left(probed_configs, config)
            for neighbor in probed_configs[max(at - 1, 0) : at + 1]:
                if abs(config - neighbor) < 1e-15:
                    return True
            return False

        def measure(config: float) -> tuple[float, float, str]:
            """(ratio, seconds, source) for a normalized config — the
            cheapest source wins: harness cache, executor prefetch,
            cross-path memo, then a real compressor run."""
            if cache is not None and config in cache:
                ratio, seconds = cache[config]
                return ratio, seconds, "cache"
            if config in prefetched:
                ratio, seconds = prefetched[config]
                return ratio, seconds, "prefetch"
            if memo is not None:
                record = memo.get(memo.key(fingerprint, self.compressor, config))
                if record is not None:
                    return record.ratio, record.seconds, "memo"
            tick = time.perf_counter()
            ratio = stream.compress(data, config).compression_ratio
            seconds = time.perf_counter() - tick
            if memo is not None:
                from repro.parallel.memo import MemoRecord

                memo.put(
                    memo.key(fingerprint, self.compressor, config),
                    MemoRecord(ratio=ratio, seconds=seconds),
                )
            return ratio, seconds, "run"

        def evaluate(config: float) -> float:
            config = self.compressor.normalize_config(config)
            with obs.span("fraz.probe", eb=config) as span:
                ratio, seconds, source = measure(config)
                span.set_attributes(
                    ratio=ratio, source=source, memo_hit=source != "run"
                )
            sources[source] = sources.get(source, 0) + 1
            if cache is not None:
                cache[config] = (ratio, seconds)
            evaluations.append((config, ratio))
            eval_seconds.append(seconds)
            bisect.insort(probed_configs, config)
            return ratio

        # Split the budget evenly across bins (early bins absorb the
        # remainder), mirroring the paper's per-bin max-iterations.
        base = self.max_iterations // self.n_bins
        remainder = self.max_iterations % self.n_bins
        budgets = [
            base + (1 if i < remainder else 0) for i in range(self.n_bins)
        ]
        edges = np.linspace(to_axis(lo), to_axis(hi), self.n_bins + 1)

        self._prefetch_edges(
            data, edges, budgets, from_axis, cache, prefetched, fingerprint
        )

        for i, budget in enumerate(budgets):
            if budget < 1:
                continue
            spent_before = len(evaluations)
            left_axis, right_axis = float(edges[i]), float(edges[i + 1])
            left_ratio = evaluate(from_axis(left_axis))
            if len(evaluations) - spent_before >= budget:
                continue
            right_ratio = evaluate(from_axis(right_axis))
            # Ratio direction along the axis differs by compressor
            # family (error bounds: up; precisions: down); infer it
            # from the edge probes like a config-agnostic tool must.
            increasing = right_ratio >= left_ratio
            # Bisect within the bin towards the target.
            while len(evaluations) - spent_before < budget:
                if right_axis - left_axis < 1e-12:
                    break
                mid_axis = 0.5 * (left_axis + right_axis)
                mid_config = self.compressor.normalize_config(from_axis(mid_axis))
                if already_probed(mid_config):
                    break  # precision compressors: integer grid exhausted
                mid_ratio = evaluate(mid_config)
                if (mid_ratio < target_ratio) == increasing:
                    left_axis, left_ratio = mid_axis, mid_ratio
                else:
                    right_axis, right_ratio = mid_axis, mid_ratio

        if not evaluations:
            raise SearchError("iteration budget too small to evaluate anything")
        return self._result(evaluations, eval_seconds, target_ratio)

    def _prefetch_edges(
        self,
        data: np.ndarray,
        edges: np.ndarray,
        budgets: list[int],
        from_axis,
        cache: dict | None,
        prefetched: dict[float, tuple[float, float]],
        fingerprint: str | None,
    ) -> None:
        """Concurrently evaluate the window edges the serial loop will open.

        Every bin with budget probes its left edge, and its right edge
        when at least two evaluations fit — a schedule known before the
        search starts. Those probes are independent full compressions
        (the dominant cost at small budgets: 6 iterations over 3 bins
        spend all but one run on edges), so they are fanned over the
        executor and parked in ``prefetched`` for ``evaluate`` to
        consume in the original serial order.
        """
        if self.executor is None:
            return
        pending: list[float] = []
        seen: set[float] = set()
        for i, budget in enumerate(budgets):
            if budget < 1:
                continue
            edge_configs = [from_axis(float(edges[i]))]
            if budget >= 2:
                edge_configs.append(from_axis(float(edges[i + 1])))
            for config in edge_configs:
                config = self.compressor.normalize_config(config)
                if config in seen:
                    continue
                seen.add(config)
                if cache is not None and config in cache:
                    continue
                if self.memo is not None and (
                    self.memo.peek(
                        self.memo.key(fingerprint, self.compressor, config)
                    )
                    is not None
                ):
                    continue
                pending.append(config)
        if len(pending) < 2:
            return  # nothing to overlap
        # Fat-task dispatch: at most one batch per worker, each batch a
        # single pool task running its probes over one stream.
        n_batches = max(1, min(self.executor.n_jobs, len(pending)))
        bounds = np.linspace(0, len(pending), n_batches + 1).astype(int)
        groups = [
            pending[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        grouped = self.executor.map(
            _probe_batch,
            groups,
            shared={"data": np.asarray(data)},
            context=self.compressor,
        )
        results = [result for group in grouped for result in group]
        for config, (ratio, seconds) in zip(pending, results):
            prefetched[config] = (ratio, seconds)
            if self.memo is not None:
                from repro.parallel.memo import MemoRecord

                self.memo.put(
                    self.memo.key(fingerprint, self.compressor, config),
                    MemoRecord(ratio=ratio, seconds=seconds),
                )

    @staticmethod
    def _result(
        evaluations: list[tuple[float, float]],
        eval_seconds: list[float],
        target_ratio: float,
    ) -> FRaZResult:
        best_config, best_ratio = min(
            evaluations, key=lambda e: abs(e[1] - target_ratio)
        )
        return FRaZResult(
            config=best_config,
            measured_ratio=best_ratio,
            target_ratio=float(target_ratio),
            iterations=len(evaluations),
            search_seconds=float(sum(eval_seconds)),
            evaluations=evaluations,
            eval_seconds=eval_seconds,
        )
