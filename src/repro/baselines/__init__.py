"""Baselines the paper compares against."""

from repro.baselines.fraz import FRaZ, FRaZResult

__all__ = ["FRaZ", "FRaZResult"]
