"""Descriptors for application fields and snapshot series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class FieldSnapshot:
    """One field at one timestep of one simulation configuration.

    Attributes:
        application: application name, e.g. ``"nyx"``.
        field: field name, e.g. ``"baryon_density"``.
        label: human-readable snapshot tag (timestep or config id).
        data: the grid values.
    """

    application: str
    field: str
    label: str
    data: np.ndarray

    def __post_init__(self) -> None:
        if self.data.size == 0:
            raise DatasetError("snapshot data must be non-empty")

    @property
    def name(self) -> str:
        """Fully qualified snapshot name."""
        return f"{self.application}/{self.field}@{self.label}"

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


@dataclass
class FieldSeries:
    """An ordered collection of snapshots of one application field."""

    application: str
    field: str
    snapshots: list[FieldSnapshot] = field(default_factory=list)

    def add(self, label: str, data: np.ndarray) -> None:
        """Append a snapshot with consistency checks."""
        snap = FieldSnapshot(
            application=self.application, field=self.field, label=label, data=data
        )
        if self.snapshots and data.shape != self.snapshots[0].data.shape:
            # Different simulation configurations legitimately differ in
            # size (e.g. RTM small vs big scale); keep but don't forbid.
            pass
        self.snapshots.append(snap)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)

    @property
    def name(self) -> str:
        return f"{self.application}/{self.field}"
