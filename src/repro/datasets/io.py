"""Persistence for field series (.npz archives).

Synthetic generation is cheap here, but real workflows receive their
snapshots from simulations and instruments; this module gives
:class:`~repro.datasets.base.FieldSeries` a portable on-disk form so
training corpora can be assembled once and shared (the deployment
story of Sec. III-A).
"""

from __future__ import annotations

import io
import json
import pathlib

import numpy as np

from repro.datasets.base import FieldSeries
from repro.errors import DatasetError

_FORMAT_VERSION = 1


def save_series(series: FieldSeries, path: str | pathlib.Path) -> None:
    """Write a series and its snapshot labels to an ``.npz`` archive."""
    if not len(series):
        raise DatasetError("cannot save an empty series")
    meta = {
        "format_version": _FORMAT_VERSION,
        "application": series.application,
        "field": series.field,
        "labels": [snap.label for snap in series],
    }
    arrays = {
        f"snap{i}": snap.data for i, snap in enumerate(series)
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    pathlib.Path(path).write_bytes(buffer.getvalue())


def load_series_file(path: str | pathlib.Path) -> FieldSeries:
    """Restore a series saved by :func:`save_series`."""
    try:
        with np.load(pathlib.Path(path)) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
    except (KeyError, ValueError, OSError) as exc:
        raise DatasetError(f"not a field-series archive: {exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported series format {meta.get('format_version')!r}"
        )
    series = FieldSeries(application=meta["application"], field=meta["field"])
    for i, label in enumerate(meta["labels"]):
        key = f"snap{i}"
        if key not in arrays:
            raise DatasetError(f"archive missing snapshot {key}")
        series.add(label, arrays[key])
    return series
