"""Synthetic Hurricane Isabel fields over timesteps.

The Hurricane Isabel dataset provides 48 timesteps of atmospheric
fields on a (100, 500, 500) grid; the paper uses QCLOUD (cloud water
mixing ratio) and TC (temperature) for its capability level 1
assessment — train on timesteps {5,10,15,20,25,30}, test on 48.

The synthetic storm is a translating, strengthening Rankine-style
vortex:

* **TC** — a smooth temperature field with a warm-core anomaly that
  follows the vortex; large value range and moderate smoothness
  (Table I: range ~105, mean ~46).
* **QCLOUD** — cloud water confined to spiral rainbands around the
  eyewall: *mostly exact zeros*, which makes it the showcase for the
  compressibility-adjustment optimization (constant blocks, Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.grf import power_spectrum_noise
from repro.errors import DatasetError

FIELDS = ("TC", "QCLOUD")

#: Total timesteps in the (synthetic) simulation, matching Isabel's 48.
MAX_TIMESTEP = 48


def _vortex_geometry(
    shape: tuple[int, int, int], timestep: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distance-from-eye, angle and height grids at ``timestep``."""
    nz, ny, nx = shape
    frac = timestep / MAX_TIMESTEP
    # Storm track: drifts diagonally but stays well inside the domain,
    # as Isabel stays in frame for all 48 steps; the strengthening
    # vortex therefore covers *more* area at later timesteps.
    cy = 0.38 + 0.22 * frac
    cx = 0.62 - 0.22 * frac
    z = np.linspace(0.0, 1.0, nz)[:, None, None]
    y = np.linspace(0.0, 1.0, ny)[None, :, None]
    x = np.linspace(0.0, 1.0, nx)[None, None, :]
    r = np.sqrt((y - cy) ** 2 + (x - cx) ** 2)
    theta = np.arctan2(y - cy, x - cx)
    return r, theta, np.broadcast_to(z, shape)


def generate_hurricane_field(
    field: str,
    timestep: int,
    shape: tuple[int, int, int] = (16, 48, 48),
    seed: int = 0,
) -> np.ndarray:
    """Generate one Hurricane field snapshot as float32.

    Args:
        field: ``"TC"`` or ``"QCLOUD"``.
        timestep: 1..48; controls the storm position and intensity.
        shape: (nz, ny, nx) grid.
        seed: configuration seed (one Isabel run -> keep fixed).
    """
    if field not in FIELDS:
        raise DatasetError(f"unknown Hurricane field {field!r}; choose from {FIELDS}")
    if not 1 <= timestep <= MAX_TIMESTEP:
        raise DatasetError(f"timestep must be in [1, {MAX_TIMESTEP}]")
    r, theta, z = _vortex_geometry(shape, timestep)
    intensity = 0.6 + 0.8 * (timestep / MAX_TIMESTEP)
    base_seed = seed * 577 + timestep

    if field == "TC":
        # Background lapse-rate temperature + warm core + synoptic noise.
        background = 25.0 - 70.0 * z
        warm_core = 12.0 * intensity * np.exp(-((r / 0.12) ** 2)) * (1.0 - 0.5 * z)
        synoptic = 4.0 * power_spectrum_noise(shape, 3.0, base_seed)
        data = background + warm_core + synoptic
    else:  # QCLOUD
        # Spiral rainbands: moisture where the spiral phase aligns,
        # thresholded so most of the domain is exactly zero.
        spiral = np.cos(3.0 * theta - 14.0 * r + 6.0 * (timestep / MAX_TIMESTEP))
        eyewall = np.exp(-(((r - 0.10) / 0.05) ** 2))
        bands = np.exp(-(((r - 0.28) / 0.10) ** 2)) * np.maximum(spiral, 0.0)
        turbulence = np.maximum(
            power_spectrum_noise(shape, 2.5, base_seed + 3), 0.0
        )
        cloud = intensity * (eyewall + 0.7 * bands) * (0.4 + 0.6 * turbulence)
        vertical = np.exp(-(((z - 0.35) / 0.30) ** 2))
        data = 1.5e-3 * cloud * vertical
        data[data < 2e-5] = 0.0
    return data.astype(np.float32)
