"""Catalog of named datasets mirroring the paper's Table V.

Grid sizes are scaled down (~48^3 instead of 512^3) so the complete
experiment matrix runs on one machine; every quantity the framework
consumes (features, compression ratios, estimation errors) is
size-intensive, so the shapes of the results survive the scaling.

The training/test split functions encode the paper's two capability
levels (Sec. IV-A / V-A2):

* **Hurricane** (level 1): train timesteps {5,10,15,20,25,30}, test 48.
* **Nyx** (level 2): train config Nyx-1 (6 snapshots), test config
  Nyx-2 (different spectral index / amplitude / seed).
* **RTM** (level 2): train the small-scale simulation's 7 snapshots,
  test the big-scale simulation.
* **QMCPack** (level 2): train the two small problem sizes, test the
  large one.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.base import FieldSeries
from repro.datasets.hurricane import generate_hurricane_field
from repro.datasets.nyx import FIELDS as NYX_FIELDS
from repro.datasets.nyx import generate_nyx_field
from repro.datasets.qmcpack import generate_qmcpack_field
from repro.datasets.rtm import generate_rtm_snapshots
from repro.errors import DatasetError

#: Hurricane training timesteps (Sec. V-A2) and the held-out test step.
HURRICANE_TRAIN_STEPS = (5, 10, 15, 20, 25, 30)
HURRICANE_TEST_STEP = 48

#: RTM snapshot steps, scaled from the paper's (50..500) to our grid;
#: the earliest step sits past the Ricker source peak (1/f = 20), as
#: the paper's step-50 start sits past its source injection.
RTM_SMALL_STEPS = (30, 45, 55, 65, 80, 90, 100)
RTM_BIG_STEPS = (100, 130)

_NYX1 = {"alpha": 3.2, "sigma": 1.0, "seed": 11}
_NYX2 = {"alpha": 2.75, "sigma": 1.3, "seed": 42}

APPLICATIONS = ("nyx", "qmcpack", "rtm", "hurricane")


def dataset_catalog() -> dict[str, dict]:
    """Description of every named dataset (the Table V analogue)."""
    return {
        "nyx-1": {
            "application": "nyx",
            "fields": list(NYX_FIELDS),
            "timesteps": 6,
            "shape": (48, 48, 48),
            "domain": "Cosmology",
            "role": "train (level 2)",
        },
        "nyx-2": {
            "application": "nyx",
            "fields": list(NYX_FIELDS),
            "timesteps": 1,
            "shape": (48, 48, 48),
            "domain": "Cosmology",
            "role": "test (level 2)",
        },
        "qmcpack-1": {
            "application": "qmcpack",
            "fields": ["spin0"],
            "timesteps": 1,
            "shape": (8, 28, 18, 18),
            "domain": "Quantum Structure",
            "role": "train (level 2)",
        },
        "qmcpack-2": {
            "application": "qmcpack",
            "fields": ["spin0", "spin1"],
            "timesteps": 1,
            "shape": (12, 28, 18, 18),
            "domain": "Quantum Structure",
            "role": "train (level 2)",
        },
        "qmcpack-3": {
            "application": "qmcpack",
            "fields": ["spin0", "spin1"],
            "timesteps": 1,
            "shape": (18, 28, 18, 18),
            "domain": "Quantum Structure",
            "role": "test (level 2)",
        },
        "rtm-small": {
            "application": "rtm",
            "fields": ["pressure"],
            "timesteps": len(RTM_SMALL_STEPS),
            "shape": (48, 48, 24),
            "domain": "Seismic Wave",
            "role": "train (level 2)",
        },
        "rtm-big": {
            "application": "rtm",
            "fields": ["pressure"],
            "timesteps": len(RTM_BIG_STEPS),
            "shape": (72, 72, 32),
            "domain": "Seismic Wave",
            "role": "test (level 2)",
        },
        "hurricane": {
            "application": "hurricane",
            "fields": ["TC", "QCLOUD"],
            "timesteps": len(HURRICANE_TRAIN_STEPS) + 1,
            "shape": (16, 48, 48),
            "domain": "Weather",
            "role": "train steps 5-30, test step 48 (level 1)",
        },
    }


@lru_cache(maxsize=64)
def load_series(name: str, field: str) -> FieldSeries:
    """Materialize one named dataset's field series.

    Results are cached; callers must treat the arrays as read-only.
    """
    catalog = dataset_catalog()
    if name not in catalog:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(catalog)}"
        )
    entry = catalog[name]
    if field not in entry["fields"]:
        raise DatasetError(
            f"dataset {name!r} has fields {entry['fields']}, not {field!r}"
        )
    app = entry["application"]
    series = FieldSeries(application=app, field=field)

    if name in ("nyx-1", "nyx-2"):
        cfg = _NYX1 if name == "nyx-1" else _NYX2
        steps = range(6) if name == "nyx-1" else [0]
        for t in steps:
            series.add(
                f"{name}-t{t}",
                generate_nyx_field(
                    field, shape=entry["shape"], timestep=t, **cfg
                ),
            )
    elif name.startswith("qmcpack"):
        n_orbitals = entry["shape"][0]
        grid = entry["shape"][1:]
        seed = {"qmcpack-1": 3, "qmcpack-2": 5, "qmcpack-3": 9}[name]
        series.add(
            name,
            generate_qmcpack_field(
                field, n_orbitals=n_orbitals, grid_shape=grid, seed=seed
            ),
        )
    elif name.startswith("rtm"):
        steps = RTM_SMALL_STEPS if name == "rtm-small" else RTM_BIG_STEPS
        seed = 17 if name == "rtm-small" else 23
        for t, snap in generate_rtm_snapshots(entry["shape"], list(steps), seed=seed):
            series.add(f"{name}-t{t}", snap)
    else:  # hurricane
        for t in HURRICANE_TRAIN_STEPS + (HURRICANE_TEST_STEP,):
            series.add(
                f"hurricane-t{t}",
                generate_hurricane_field(field, timestep=t, shape=entry["shape"]),
            )
    return series


def paper_training_series(application: str) -> list[FieldSeries]:
    """Training snapshots for one application's capability assessment."""
    if application == "nyx":
        return [load_series("nyx-1", f) for f in NYX_FIELDS]
    if application == "qmcpack":
        return [
            load_series("qmcpack-1", "spin0"),
            load_series("qmcpack-2", "spin0"),
            load_series("qmcpack-2", "spin1"),
        ]
    if application == "rtm":
        return [load_series("rtm-small", "pressure")]
    if application == "hurricane":
        out = []
        for field in ("TC", "QCLOUD"):
            full = load_series("hurricane", field)
            series = FieldSeries(application="hurricane", field=field)
            for snap in full:
                if not snap.label.endswith(f"t{HURRICANE_TEST_STEP}"):
                    series.snapshots.append(snap)
            out.append(series)
        return out
    raise DatasetError(f"unknown application {application!r}")


def paper_test_series(application: str) -> list[FieldSeries]:
    """Held-out snapshots for one application's capability assessment."""
    if application == "nyx":
        return [load_series("nyx-2", f) for f in NYX_FIELDS]
    if application == "qmcpack":
        return [
            load_series("qmcpack-3", "spin0"),
            load_series("qmcpack-3", "spin1"),
        ]
    if application == "rtm":
        return [load_series("rtm-big", "pressure")]
    if application == "hurricane":
        out = []
        for field in ("TC", "QCLOUD"):
            full = load_series("hurricane", field)
            series = FieldSeries(application="hurricane", field=field)
            for snap in full:
                if snap.label.endswith(f"t{HURRICANE_TEST_STEP}"):
                    series.snapshots.append(snap)
            out.append(series)
        return out
    raise DatasetError(f"unknown application {application!r}")
