"""Synthetic scientific datasets standing in for SDRBench.

The paper evaluates on Nyx (cosmology), QMCPack (quantum structure),
RTM (seismic wave propagation) and Hurricane Isabel (weather) fields
downloaded from SDRBench. Those multi-GB archives are not available
offline, so this package generates physics-inspired synthetic
equivalents that reproduce each application's *feature signature*
(Table I) and support the paper's two capability levels: multiple
timesteps of one simulation (level 1) and multiple simulation
configurations of one application (level 2).
"""

from repro.datasets.base import FieldSnapshot, FieldSeries
from repro.datasets.grf import gaussian_random_field, power_spectrum_noise
from repro.datasets.nyx import generate_nyx_field
from repro.datasets.qmcpack import generate_qmcpack_field
from repro.datasets.rtm import RTMSimulator, generate_rtm_snapshots
from repro.datasets.hurricane import generate_hurricane_field
from repro.datasets.io import load_series_file, save_series
from repro.datasets.registry import (
    dataset_catalog,
    load_series,
    paper_test_series,
    paper_training_series,
)

__all__ = [
    "FieldSnapshot",
    "FieldSeries",
    "gaussian_random_field",
    "power_spectrum_noise",
    "generate_nyx_field",
    "generate_qmcpack_field",
    "RTMSimulator",
    "generate_rtm_snapshots",
    "generate_hurricane_field",
    "dataset_catalog",
    "save_series",
    "load_series_file",
    "load_series",
    "paper_training_series",
    "paper_test_series",
]
