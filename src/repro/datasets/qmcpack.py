"""Synthetic QMCPack orbital fields.

QMCPack stores electronic orbitals on a 4-D grid (orbital index x 3-D
spatial grid, e.g. 288x115x69x69 in Table V). Orbitals are smooth
oscillatory wavefunctions — standing-wave textures whose frequency
grows with the orbital index — which is exactly the "wave texture"
regime the paper's MSD feature targets (Sec. IV-C, Fig. 4).

Two fields mirror the paper's Spin0/Spin1; different problem sizes
(QMCPack-1/2/3) vary the orbital count, realizing capability level 2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

FIELDS = ("spin0", "spin1")


def _orbital(
    grid: tuple[np.ndarray, np.ndarray, np.ndarray],
    index: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One orbital: Gaussian-envelope standing waves, frequency ~ index."""
    x, y, z = grid
    # Wave vectors grow with the orbital index like a particle-in-a-box
    # spectrum, saturating at the basis-set cutoff (larger problem
    # sizes add orbitals near the cutoff rather than ever-higher
    # frequencies); random orientation breaks axis alignment.
    base = 1.0 + 0.22 * min(index, 10)
    kx, ky, kz = base * (1.0 + 0.3 * rng.random(3))
    phase = rng.uniform(0, 2 * np.pi, 3)
    wave = (
        np.sin(kx * x + phase[0])
        * np.sin(ky * y + phase[1])
        * np.sin(kz * z + phase[2])
    )
    # Localized envelope (bound states decay away from the nuclei).
    cx, cy, cz = rng.uniform(0.25, 0.75, 3)
    width = rng.uniform(0.15, 0.4)
    envelope = np.exp(
        -(((x / np.pi - cx) ** 2 + (y / np.pi - cy) ** 2 + (z / np.pi - cz) ** 2))
        / (2 * width**2)
    )
    return wave * (0.3 + envelope)


def generate_qmcpack_field(
    field: str,
    n_orbitals: int = 12,
    grid_shape: tuple[int, int, int] = (28, 18, 18),
    seed: int = 0,
    amplitude: float = 18.0,
) -> np.ndarray:
    """Generate a (n_orbitals, *grid_shape) float32 orbital stack.

    Args:
        field: ``"spin0"`` or ``"spin1"`` (independent phases/centers).
        n_orbitals: leading dimension; the paper's problem sizes differ
            exactly here (288 vs 480 vs 816 orbitals).
        grid_shape: spatial grid.
        seed: configuration seed.
        amplitude: overall scale (Table I reports range ~35 for the
            big-scale snapshot).
    """
    if field not in FIELDS:
        raise DatasetError(f"unknown QMCPack field {field!r}; choose from {FIELDS}")
    if n_orbitals < 1:
        raise DatasetError("n_orbitals must be >= 1")
    spin_offset = 0 if field == "spin0" else 50_000
    axes = [np.linspace(0, np.pi, n) for n in grid_shape]
    grid = np.meshgrid(*axes, indexing="ij")
    out = np.empty((n_orbitals,) + tuple(grid_shape), dtype=np.float64)
    for orbital in range(n_orbitals):
        rng = np.random.default_rng(seed * 7919 + spin_offset + orbital)
        out[orbital] = _orbital(tuple(grid), orbital, rng)
    # Shift positive-ish like the paper's reported mean (16.75 for a
    # 35.4 range): orbitals ride on a positive baseline.
    out = amplitude * (0.5 + 0.45 * out)
    return out.astype(np.float32)
