"""Reverse Time Migration (RTM) snapshots via an FDTD acoustic solver.

RTM propagates a seismic wavefield through a velocity model; the
snapshots the paper compresses (RTM-Small/RTM-Big in Table V) are the
pressure field at increasing timesteps. This module integrates the
3-D acoustic wave equation

    u_tt = c(x)^2 * laplacian(u) + source

with a second-order leapfrog scheme, a Ricker-wavelet point source and
a layered velocity model — producing the expanding wavefronts and tiny
value ranges (Table I: range 0.05-0.16) with strong wave texture that
make RTM the most compressible application in Fig. 3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _ricker(t: np.ndarray, peak_frequency: float) -> np.ndarray:
    """Ricker (Mexican-hat) source wavelet."""
    arg = (np.pi * peak_frequency * (t - 1.0 / peak_frequency)) ** 2
    return (1.0 - 2.0 * arg) * np.exp(-arg)


class RTMSimulator:
    """Leapfrog integrator for the 3-D acoustic wave equation.

    Args:
        shape: grid dimensions (nx, ny, nz).
        layers: number of horizontal velocity layers.
        peak_frequency: source wavelet frequency (grid units).
        seed: randomizes layer speeds and the source position.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] = (48, 48, 24),
        layers: int = 4,
        peak_frequency: float = 0.05,
        seed: int = 0,
    ) -> None:
        if any(n < 8 for n in shape):
            raise DatasetError("RTM grid must be at least 8 in every dimension")
        self.shape = shape
        rng = np.random.default_rng(seed)
        # Layered velocity model along z (depth): faster with depth.
        nz = shape[2]
        speeds = np.sort(rng.uniform(0.25, 0.45, layers))
        boundaries = np.linspace(0, nz, layers + 1).astype(int)
        c = np.empty(nz)
        for i in range(layers):
            c[boundaries[i] : boundaries[i + 1]] = speeds[i]
        self.velocity = np.broadcast_to(c, shape).copy()
        self.peak_frequency = peak_frequency
        sx = int(rng.integers(shape[0] // 3, 2 * shape[0] // 3))
        sy = int(rng.integers(shape[1] // 3, 2 * shape[1] // 3))
        self.source = (sx, sy, 2)
        self._u_prev = np.zeros(shape)
        self._u = np.zeros(shape)
        self._step = 0

    def _laplacian(self, u: np.ndarray) -> np.ndarray:
        lap = -2.0 * u.ndim * u
        for axis in range(u.ndim):
            lap += np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis)
        return lap

    def step(self, n_steps: int = 1) -> None:
        """Advance the field ``n_steps`` leapfrog steps (dt = 1)."""
        for _ in range(n_steps):
            lap = self._laplacian(self._u)
            u_next = (
                2.0 * self._u
                - self._u_prev
                + (self.velocity**2) * lap
            )
            t = float(self._step)
            u_next[self.source] += _ricker(
                np.array([t]), self.peak_frequency
            )[0]
            # Crude absorbing edges: damp a 3-cell boundary shell.
            for axis in range(3):
                for sl in (slice(0, 3), slice(-3, None)):
                    idx = [slice(None)] * 3
                    idx[axis] = sl
                    u_next[tuple(idx)] *= 0.90
            self._u_prev = self._u
            self._u = u_next
            self._step += 1

    @property
    def field(self) -> np.ndarray:
        """Current pressure field as float32."""
        return self._u.astype(np.float32)

    @property
    def timestep(self) -> int:
        return self._step


def generate_rtm_snapshots(
    shape: tuple[int, int, int],
    snapshot_steps: list[int],
    seed: int = 0,
) -> list[tuple[int, np.ndarray]]:
    """Run one RTM simulation, capturing the listed timesteps.

    Returns:
        list of ``(timestep, field)`` pairs in ascending step order.
    """
    if not snapshot_steps:
        raise DatasetError("snapshot_steps must be non-empty")
    steps = sorted(set(snapshot_steps))
    if steps[0] < 1:
        raise DatasetError("snapshot steps must be >= 1")
    sim = RTMSimulator(shape=shape, seed=seed)
    out = []
    for target in steps:
        sim.step(target - sim.timestep)
        out.append((target, sim.field))
    return out
