"""Gaussian random fields by spectral synthesis.

Cosmological and atmospheric fields are well modelled as realizations
of power-law power spectra ``P(k) ~ k**-alpha``: white noise is shaped
in Fourier space and transformed back, yielding smooth, statistically
isotropic fields whose roughness is controlled by ``alpha`` — the knob
the registry uses to realize *different simulation configurations* of
one application (capability level 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _radial_wavenumbers(shape: tuple[int, ...]) -> np.ndarray:
    """|k| grid for an n-dimensional FFT of ``shape``."""
    axes = [np.fft.fftfreq(n) * n for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = np.zeros(shape, dtype=np.float64)
    for g in grids:
        k2 += g * g
    return np.sqrt(k2)


def power_spectrum_noise(
    shape: tuple[int, ...],
    alpha: float,
    seed: int,
) -> np.ndarray:
    """White noise shaped by an isotropic ``k**-alpha`` spectrum.

    Returns a zero-mean, unit-variance float64 field.
    """
    if not shape or any(n < 2 for n in shape):
        raise DatasetError("shape must have every dimension >= 2")
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(shape)
    spectrum = np.fft.fftn(noise)
    k = _radial_wavenumbers(shape)
    k[tuple(0 for _ in shape)] = 1.0  # keep DC finite; zeroed below
    amplitude = k ** (-alpha / 2.0)
    amplitude[tuple(0 for _ in shape)] = 0.0
    shaped = np.real(np.fft.ifftn(spectrum * amplitude))
    std = shaped.std()
    if std == 0:
        raise DatasetError("degenerate spectrum produced a constant field")
    return (shaped - shaped.mean()) / std


def gaussian_random_field(
    shape: tuple[int, ...],
    alpha: float = 3.0,
    sigma: float = 1.0,
    mean: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """A GRF with mean ``mean`` and standard deviation ``sigma``."""
    return mean + sigma * power_spectrum_noise(shape, alpha, seed)
