"""Synthetic Nyx cosmology fields.

Nyx outputs per-cell baryon/dark-matter densities, temperature and
velocities on a uniform grid. The synthetic stand-ins reproduce the
statistical character the paper relies on:

* **baryon_density / dark_matter_density** — lognormal transforms of a
  power-law GRF: mostly near the cosmic mean with rare sharp overdense
  *halos* (used by the halo-mislocation analysis of Sec. V-C).
* **temperature** — positive, large-amplitude, correlated with density.
* **velocity_x** — signed, smoother GRF.

Different simulation configurations (Nyx-1 vs Nyx-2 in Table V) differ
in spectral index, fluctuation amplitude and seed, which changes both
the compression ratios and the extracted features — the level-2
generalization challenge.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.grf import power_spectrum_noise
from repro.errors import DatasetError

FIELDS = ("baryon_density", "dark_matter_density", "temperature", "velocity_x")


def generate_nyx_field(
    field: str,
    shape: tuple[int, int, int] = (48, 48, 48),
    alpha: float = 3.2,
    sigma: float = 1.0,
    seed: int = 0,
    timestep: int = 0,
) -> np.ndarray:
    """Generate one Nyx field snapshot as float32.

    Args:
        field: one of :data:`FIELDS`.
        shape: grid dimensions.
        alpha: spectral index of the underlying GRF (structure scale).
        sigma: fluctuation amplitude (density contrast strength).
        seed: base RNG seed of the simulation configuration.
        timestep: snapshot index; later steps have slightly more
            developed (sharper) structure, emulating gravitational
            collapse over time.
    """
    if field not in FIELDS:
        raise DatasetError(f"unknown Nyx field {field!r}; choose from {FIELDS}")
    # Structure growth: contrast increases mildly with time.
    growth = 1.0 + 0.06 * timestep
    base_seed = seed * 1009 + timestep * 101
    delta = power_spectrum_noise(shape, alpha, base_seed)

    if field == "baryon_density":
        data = np.exp(sigma * growth * delta)
        data /= data.mean()
    elif field == "dark_matter_density":
        # DM is more clustered: heavier lognormal tail.
        data = np.exp(1.4 * sigma * growth * delta)
        data /= data.mean()
    elif field == "temperature":
        # IGM temperature-density relation: T ~ T0 * rho^(gamma-1).
        rho = np.exp(sigma * growth * delta)
        rho /= rho.mean()
        thermal = power_spectrum_noise(shape, alpha - 0.5, base_seed + 7)
        data = 1.0e4 * rho**0.6 * np.exp(0.1 * thermal)
    else:  # velocity_x
        data = 2.5e7 * power_spectrum_noise(shape, alpha + 0.8, base_seed + 13)
    return data.astype(np.float32)
