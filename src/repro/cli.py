"""Command-line interface for the FXRZ library.

Commands mirror the library's lifecycle so a shell user can run the
whole fixed-ratio workflow on ``.npy`` files:

* ``repro train``     — fit a pipeline on training arrays, save it.
* ``repro estimate``  — predict the error config for a target ratio,
  PSNR or SSIM (``--target-ratio``/``--target-psnr``/``--target-ssim``),
  or answer a Pareto query (``--frontier "cr>=10"``); see
  ``docs/OBJECTIVES.md``.
* ``repro estimate-batch`` (alias ``serve``) — push a JSONL request
  batch through the estimation service (batched, cached, concurrent);
  ``--stats`` appends the service metrics snapshot. ``--shards N``
  serves through the fault-tolerant multi-process supervisor instead
  (``--queue-depth`` bounds admission, ``--deadline-ms`` sets the
  per-request deadline; see ``docs/ROBUSTNESS.md``).
* ``repro compress``  — fixed-ratio compress one array to a blob file.
* ``repro decompress``— reconstruct an array from a blob file.
* ``repro search``    — run the FRaZ baseline for comparison.
* ``repro dump``      — simulate a (optionally fault-injected) parallel dump.
* ``repro obs-report``— render a recorded span trace as a per-phase cost tree.
* ``repro outcomes-report`` — summarize a serving outcome log
  (``--outcome-log`` on ``serve``/``estimate``/``compress`` writes one).
* ``repro retrain``   — fit candidate models from a registry entry plus
  an outcome log and canary them against ``latest``
  (see ``docs/LIFECYCLE.md``).
* ``repro datasets``  — list the built-in synthetic dataset catalog.

``train``/``estimate``/``estimate-batch``/``compress``/``search`` share
the runtime session flags (``--jobs``, ``--trace``, ``--metrics``,
``--fallback``, ``--min-confidence``, ``--runtime-profile``) from
:mod:`repro.runtime`; ``main`` builds one
:class:`~repro.runtime.RuntimeContext` per invocation and every
subcommand draws its executor/memo/tracer/registry from it, so teardown
(pool shutdown, trace export, metrics flush) is deterministic even when
the command fails. See ``docs/RUNTIME.md`` and
``docs/OBSERVABILITY.md``.

``estimate`` and ``compress`` run through the guarded inference engine:
``--fallback`` picks the terminal rung of its degradation ladder
(``none`` raises on out-of-distribution inputs, ``curve`` adds
training-curve interpolation, ``fraz`` adds a bounded FRaZ search), and
the output names the tier that produced the configuration.

Blob files are a small self-describing container: a JSON header
(compressor, config, shape, dtype) followed by the compressed payload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro import obs
from repro.baselines.fraz import FRaZ
from repro.compressors import available_compressors, get_compressor
from repro.compressors.base import CompressedBlob
from repro.config import FXRZConfig
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.pipeline import FXRZ
from repro.datasets.registry import dataset_catalog
from repro.errors import ReproError, ServiceOverloadedError
from repro.hpc.iosim import DumpScenario, simulate_dump, simulate_faulty_dump
from repro.robustness import FaultSpec, GuardedInferenceEngine, RetryPolicy
from repro.runtime import RuntimeContext, runtime_parent_parser
from repro.serving import (
    EstimateRequest,
    EstimationService,
    ModelRegistry,
    ShardedEstimationService,
)

_MAGIC = b"FXRZBLOB"


def _load_array(path: str) -> np.ndarray:
    array = np.load(path)
    if not isinstance(array, np.ndarray):
        raise ReproError(f"{path} does not contain a plain ndarray")
    return array


def write_blob(blob: CompressedBlob, path: str | pathlib.Path) -> None:
    """Serialize a compressed blob with a self-describing header."""
    header = json.dumps(
        {
            "compressor": blob.compressor,
            "config": blob.config,
            "shape": list(blob.original_shape),
            "dtype": blob.original_dtype,
        }
    ).encode("utf-8")
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(len(header).to_bytes(4, "little"))
        f.write(header)
        f.write(blob.data)


def read_blob(path: str | pathlib.Path) -> CompressedBlob:
    """Inverse of :func:`write_blob`."""
    raw = pathlib.Path(path).read_bytes()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ReproError(f"{path} is not an FXRZ blob file")
    header_len = int.from_bytes(raw[8:12], "little")
    header = json.loads(raw[12 : 12 + header_len].decode("utf-8"))
    return CompressedBlob(
        data=raw[12 + header_len :],
        original_shape=tuple(header["shape"]),
        original_dtype=header["dtype"],
        compressor=header["compressor"],
        config=float(header["config"]),
    )


def _cmd_train(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    config = FXRZConfig(
        sampling_stride=args.stride,
        stationary_points=args.stationary_points,
        augmented_samples=args.augmented_samples,
        use_adjustment=not args.no_adjustment,
    )
    pipeline = FXRZ(get_compressor(args.compressor), config=config, ctx=ctx)
    arrays = [_load_array(p) for p in args.inputs]
    with obs.profiled("training.fit", n_datasets=len(arrays)):
        report = pipeline.fit(arrays)
    save_pipeline(pipeline, args.model)
    print(
        f"trained on {report.n_datasets} arrays "
        f"({report.n_samples} samples) in {report.total_seconds:.1f}s; "
        f"saved to {args.model}"
    )
    return 0


def _objective_from_args(args: argparse.Namespace):
    """Resolve the target flags into one Objective (``None`` when absent).

    ``--ratio`` and ``--target-ratio`` are synonyms (the former predates
    objectives); ``--target-psnr``/``--target-ssim`` pick the quality
    kinds. Exactly one target may be given.
    """
    from repro.core.objective import as_objective

    given = [
        (flag, value)
        for flag, value in (
            ("--ratio", getattr(args, "ratio", None)),
            ("--target-ratio", getattr(args, "target_ratio", None)),
            ("--target-psnr", getattr(args, "target_psnr", None)),
            ("--target-ssim", getattr(args, "target_ssim", None)),
        )
        if value is not None
    ]
    if len(given) > 1:
        flags = " and ".join(flag for flag, _ in given)
        raise ReproError(f"pass exactly one target ({flags} given)")
    if not given:
        return None
    flag, value = given[0]
    if flag in ("--ratio", "--target-ratio"):
        return as_objective(float(value))
    kind = "psnr" if flag == "--target-psnr" else "ssim"
    return as_objective(f"{kind}:{float(value):g}")


def _guarded_estimate(
    args: argparse.Namespace, ctx: RuntimeContext, objective, outcome_log=None
):
    """Shared guarded-inference path of ``estimate`` and ``compress``.

    The guarded engine records only to an *explicit* log (so a service
    wrapping one never double-records); ``estimate`` hands it the
    session's, while ``compress`` records its own measured outcome.
    Ratio objectives take the legacy positional path (bit-identical to
    pre-objective releases); quality objectives take the keyword path.
    """
    pipeline = load_pipeline(args.model)
    data = _load_array(args.input)
    engine = GuardedInferenceEngine(pipeline, ctx=ctx, outcome_log=outcome_log)
    if objective.kind == "ratio":
        estimate = engine.estimate(data, objective.tcr, dataset_key=args.input)
    else:
        estimate = engine.estimate(
            data, dataset_key=args.input, objective=objective
        )
    return pipeline, data, estimate


def _tier_note(estimate) -> str:
    note = f"tier {estimate.tier}, confidence {estimate.confidence:.2f}"
    if estimate.fallback_reason:
        note += f"; {estimate.fallback_reason}"
    return note


def _cmd_estimate(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    if args.frontier:
        return _cmd_frontier(args, ctx)
    objective = _objective_from_args(args)
    if objective is None:
        raise ReproError(
            "estimate needs a target (--ratio, --target-ratio, "
            "--target-psnr or --target-ssim) or a --frontier query"
        )
    _, _, estimate = _guarded_estimate(
        args, ctx, objective, outcome_log=ctx.lifecycle
    )
    if objective.is_quality:
        print(
            f"estimated config: {estimate.config:.6g} "
            f"(objective {objective.canonical}, "
            f"analysis {estimate.analysis_seconds * 1e3:.1f}ms; "
            f"{_tier_note(estimate)})"
        )
    else:
        print(
            f"estimated config: {estimate.config:.6g} "
            f"(ACR {estimate.adjusted_target:.2f}, R {estimate.nonconstant:.2f}, "
            f"analysis {estimate.analysis_seconds * 1e3:.1f}ms; "
            f"{_tier_note(estimate)})"
        )
    return 0


def _cmd_frontier(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    """Answer a Pareto query (``--frontier "cr>=10"``) in one sweep."""
    pipeline = load_pipeline(args.model)
    data = _load_array(args.input)
    front = pipeline.frontier(data, points=args.frontier_points)
    for point in front.points:
        print(
            f"  config {point.config:.6g}: CR {point.ratio:.1f}x, "
            f"PSNR {point.psnr:.1f} dB"
        )
    answer = front.query(args.frontier)
    if answer is None:
        print(f"frontier: no point satisfies {args.frontier!r}")
        return 1
    print(
        f"frontier({args.frontier}): config {answer.config:.6g} -> "
        f"CR {answer.ratio:.1f}x, PSNR {answer.psnr:.1f} dB"
    )
    return 0


def _load_batch_pipeline(args: argparse.Namespace):
    """The model behind ``estimate-batch``: a file or a registry entry."""
    if args.model:
        return load_pipeline(args.model)
    if args.registry:
        registry = ModelRegistry(args.registry)
        return registry.load(
            args.compressor, args.fingerprint or None, args.version
        )
    raise ReproError("estimate-batch needs --model or --registry")


def _read_batch_requests(path: str) -> list[dict]:
    """Parse a JSONL request file: one target per line.

    Each line carries ``"input"`` plus either ``"ratio"`` (the legacy
    grammar) or ``"objective"`` (a canonical objective string such as
    ``"psnr:60"`` — see ``docs/OBJECTIVES.md``).
    """
    specs: list[dict] = []
    for lineno, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            spec = json.loads(line)
        except ValueError as exc:
            raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if (
            not isinstance(spec, dict)
            or "input" not in spec
            or ("ratio" not in spec and "objective" not in spec)
        ):
            raise ReproError(
                f'{path}:{lineno}: each request needs "input" and '
                f'"ratio" or "objective"'
            )
        if "ratio" in spec and "objective" in spec:
            raise ReproError(
                f'{path}:{lineno}: "ratio" and "objective" are exclusive'
            )
        specs.append(spec)
    if not specs:
        raise ReproError(f"{path} holds no requests")
    return specs


def _submit_with_backpressure(service, request: EstimateRequest):
    """Submit, honoring the service's shed/retry-after backpressure.

    A CLI batch is a cooperative client: when the sharded service sheds
    a request it waits the suggested ``retry_after`` and resubmits
    instead of dropping work on the floor.
    """
    while True:
        try:
            return service.submit(request)
        except ServiceOverloadedError as exc:
            time.sleep(max(exc.retry_after, 0.01))


def _cmd_estimate_batch(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    pipeline = _load_batch_pipeline(args)
    specs = _read_batch_requests(args.requests)
    arrays: dict[str, np.ndarray] = {}
    for spec in specs:
        path = str(spec["input"])
        if path not in arrays:
            arrays[path] = _load_array(path)

    guarded = args.engine == "guarded"
    deadline = (args.deadline_ms / 1e3) if args.deadline_ms else None
    if args.shards > 0:
        service = ShardedEstimationService.for_pipeline(
            pipeline,
            guarded=guarded,
            ctx=ctx,
            shards=args.shards,
            queue_depth=args.queue_depth,
            default_deadline=deadline,
        )
    else:
        service = EstimationService.for_pipeline(
            pipeline,
            guarded=guarded,
            ctx=ctx,
            workers=args.workers,
            max_batch=args.max_batch,
            default_deadline=deadline,
        )
    try:
        futures = [
            _submit_with_backpressure(
                service,
                EstimateRequest(
                    data=arrays[str(spec["input"])],
                    target_ratio=(
                        float(spec["ratio"]) if "ratio" in spec else 0.0
                    ),
                    request_id=str(spec.get("id", "")),
                    dataset_id=str(spec["input"]),
                    objective=(
                        str(spec["objective"]) if "objective" in spec else None
                    ),
                ),
            )
            for spec in specs
        ]
        records = []
        failures = 0
        trace_ids: list[int] = []
        for spec, future in zip(specs, futures):
            record = {
                "id": str(spec.get("id", "")),
                "input": str(spec["input"]),
            }
            if "ratio" in spec:
                record["ratio"] = float(spec["ratio"])
            else:
                record["objective"] = str(spec["objective"])
            try:
                served = future.result()
            except Exception as exc:  # noqa: BLE001 — reported per line
                failures += 1
                record["error"] = str(exc)
            else:
                objective = getattr(served.estimate, "objective", None)
                record.update(
                    {
                        "id": served.request_id,
                        "config": served.estimate.config,
                        "objective": objective.canonical if objective else "",
                        "acr": served.estimate.adjusted_target,
                        "nonconstant": served.estimate.nonconstant,
                        "tier": served.estimate.tier,
                        "confidence": served.estimate.confidence,
                        "latency_ms": served.latency_seconds * 1e3,
                        "cache_hit": served.cache_hit,
                        "batch_size": served.batch_size,
                        "trace_id": getattr(served, "trace_id", 0),
                    }
                )
                if getattr(served, "trace_id", 0):
                    trace_ids.append(served.trace_id)
            records.append(json.dumps(record))
        snapshot = service.metrics
        supervision = getattr(service, "stats", None)
    finally:
        service.close()

    text = "\n".join(records) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(
            f"served {len(records)} request(s) ({failures} failed) over "
            f"{len(arrays)} dataset(s); wrote {args.output}"
        )
    else:
        print(text, end="")
    if args.stats:
        print("-- service stats --")
        for line in snapshot.lines():
            print(line)
        if supervision is not None:
            print(
                f"supervision     admitted {supervision.admitted}, "
                f"shed {supervision.shed}, expired {supervision.expired}, "
                f"redelivered {supervision.redelivered}, "
                f"fallbacks {supervision.fallbacks}, "
                f"respawns {supervision.respawns}, kills {supervision.kills}"
            )
        if trace_ids:
            shown = ", ".join(str(t) for t in trace_ids[:4])
            more = (
                f" (+{len(trace_ids) - 4} more)" if len(trace_ids) > 4 else ""
            )
            print(f"trace ids       {shown}{more}")
    return 0


def _cmd_compress(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    objective = _objective_from_args(args)
    if objective is None:
        raise ReproError(
            "compress needs a target (--ratio, --target-ratio, "
            "--target-psnr or --target-ssim)"
        )
    pipeline, data, estimate = _guarded_estimate(args, ctx, objective)
    blob = pipeline.compressor.compress(data, estimate.config)
    write_blob(blob, args.output)
    measured = blob.compression_ratio
    measured_psnr = None
    reconstruction = None
    if objective.is_quality:
        # Quality targets are verified against the decompressed truth —
        # one extra decompression, no extra compression.
        from repro.analysis.distortion import psnr as measure_psnr

        reconstruction = pipeline.compressor.decompress(blob)
        measured_psnr = float(measure_psnr(data, reconstruction))
    if ctx.lifecycle is not None:
        # Estimate and measured truth meet here — the highest-value
        # record the online learning loop gets.
        ctx.lifecycle.record_estimate(
            estimate,
            dataset_key=args.input,
            compressor=pipeline.compressor.name,
            measured_ratio=measured,
            measured_psnr=measured_psnr,
            source="compress",
        )
    if objective.kind == "psnr":
        miss = abs(measured_psnr - objective.db)
        print(
            f"target {objective.canonical} -> measured "
            f"{measured_psnr:.1f} dB (miss {miss:.1f} dB) at "
            f"{measured:.1f}x ({_tier_note(estimate)}); wrote "
            f"{blob.nbytes} bytes to {args.output}"
        )
    elif objective.kind == "ssim":
        from repro.analysis.distortion import ssim as measure_ssim

        measured_ssim = float(measure_ssim(data, reconstruction))
        print(
            f"target {objective.canonical} -> measured SSIM "
            f"{measured_ssim:.4f} (PSNR {measured_psnr:.1f} dB) at "
            f"{measured:.1f}x ({_tier_note(estimate)}); wrote "
            f"{blob.nbytes} bytes to {args.output}"
        )
    else:
        error = abs(objective.tcr - measured) / objective.tcr
        print(
            f"target {objective.tcr:.1f}x -> measured {measured:.1f}x "
            f"(error {error:.1%}; {_tier_note(estimate)}); wrote "
            f"{blob.nbytes} bytes to {args.output}"
        )
    return 0


def _cmd_decompress(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    blob = read_blob(args.input)
    kwargs = {}
    compressor = get_compressor(blob.compressor, **kwargs)
    array = compressor.decompress(blob)
    np.save(args.output, array)
    print(
        f"reconstructed {array.shape} {array.dtype} array from "
        f"{blob.compressor}@{blob.config:g}; wrote {args.output}"
    )
    return 0


def _cmd_search(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    comp = get_compressor(args.compressor)
    data = _load_array(args.input)
    searcher = FRaZ(comp, max_iterations=args.iterations, ctx=ctx)
    result = searcher.search(data, args.ratio)
    print(
        f"FRaZ({args.iterations}): config {result.config:.6g} -> "
        f"{result.measured_ratio:.1f}x (error {result.estimation_error:.1%}) "
        f"in {result.iterations} compressor runs / {result.search_seconds:.2f}s"
    )
    return 0


def _cmd_dump(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    scenario = DumpScenario(
        n_ranks=args.ranks,
        bytes_per_rank=args.bytes_per_rank,
        compression_ratio=args.ratio,
        compress_throughput=args.throughput,
        analysis_seconds=args.analysis_seconds,
        shared_bandwidth=args.shared_bandwidth,
    )
    faults = FaultSpec(
        seed=args.fault_seed,
        rank_failure_prob=args.fail_prob,
        straggler_prob=args.straggler_prob,
        straggler_slowdown=args.straggler_slowdown,
        write_error_prob=args.write_error_prob,
    )
    if not any((args.fail_prob, args.straggler_prob, args.write_error_prob)):
        breakdown = simulate_dump(scenario)
        print(
            f"fault-free dump of {args.ranks} ranks: {breakdown.total:.1f}s "
            f"(analysis {breakdown.analysis:.1f}s, compression "
            f"{breakdown.compression:.1f}s, write {breakdown.write:.1f}s)"
        )
        return 0
    retry = None if args.no_retry else RetryPolicy(
        max_attempts=args.retries, base_delay=args.base_delay
    )
    report = simulate_faulty_dump(scenario, faults, retry=retry)
    print(
        f"dump of {args.ranks} ranks completed in "
        f"{report.completion_seconds:.1f}s "
        f"({report.overhead:.2f}x the fault-free {report.fault_free_seconds:.1f}s); "
        f"{report.failed_ranks} rank(s) retried, "
        f"{report.total_attempts} attempts total"
    )
    for outcome in report.ranks:
        if outcome.attempts > 1 or outcome.straggler:
            tags = ",".join(outcome.events) or "straggler"
            print(
                f"  rank {outcome.rank:5d}: {outcome.attempts} attempts, "
                f"{outcome.seconds:.1f}s ({tags})"
            )
    return 0


def _cmd_obs_report(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    spans = obs.load_trace(args.input)
    print(obs.render_cost_tree(spans, min_fraction=args.min_fraction))
    errors = sum(1 for span in spans if span.status == "error")
    if errors:
        print(f"({errors} span(s) recorded an error)")
    return 0


def _cmd_obs_top(args: argparse.Namespace, ctx: RuntimeContext) -> int:  # noqa: ARG001
    """Poll a service's scrape endpoint: health, supervision, SLO burn."""
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")

    def fetch(route: str) -> dict:
        try:
            with urllib.request.urlopen(
                base + route, timeout=args.timeout
            ) as response:
                return json.load(response)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ReproError(f"cannot scrape {base}{route}: {exc}") from None

    for iteration in range(args.iterations):
        if iteration:
            time.sleep(args.interval)
        health = fetch("/healthz")
        slo = fetch("/slo")
        stats = health.get("stats", {})
        shards = health.get("shards", [])
        ready = sum(1 for s in shards if s.get("state") == "ready")
        print(
            f"[{iteration + 1}/{args.iterations}] "
            f"healthy={health.get('healthy')} "
            f"shards {ready}/{len(shards)} ready; "
            f"admitted {stats.get('admitted', 0)}, "
            f"completed {stats.get('completed', 0)}, "
            f"failed {stats.get('failed', 0)}, "
            f"fallbacks {stats.get('fallbacks', 0)}, "
            f"kills {stats.get('kills', 0)}"
        )
        for status in slo.get("slos", []):
            compliance = status.get("compliance")
            burn = status.get("burn_rate")
            print(
                f"  slo {status.get('name', '?'):<14} "
                f"compliance "
                f"{'n/a' if compliance is None else format(compliance, '.4f'):>8} "
                f"burn {'n/a' if burn is None else format(burn, '8.2f')}"
                f"{'  ALERT' if status.get('alerting') else ''}"
            )
    return 0


def _cmd_outcomes_report(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    from repro.lifecycle import read_outcomes

    replay = read_outcomes(args.log)
    records = replay.records
    trainable = replay.trainable
    print(
        f"{args.log}: {len(records)} record(s) across "
        f"{len(replay.files)} file(s), {replay.torn_lines} torn line(s), "
        f"{len(trainable)} trainable"
    )
    if not records:
        return 0
    by_source: dict[str, int] = {}
    by_tier: dict[str, int] = {}
    for record in records:
        by_source[record.source or "unknown"] = (
            by_source.get(record.source or "unknown", 0) + 1
        )
        by_tier[record.tier or "unknown"] = (
            by_tier.get(record.tier or "unknown", 0) + 1
        )
    print(
        "by source: "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_source.items()))
    )
    print(
        "by tier:   "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_tier.items()))
    )
    errors = [
        record.relative_error
        for record in trainable
        if record.relative_error is not None
    ]
    if errors:
        print(
            f"measured records: median relative CR error "
            f"{float(np.median(errors)):.2%} over {len(errors)} record(s)"
        )
    if args.spans or args.trace_id:
        if not args.spans:
            raise ReproError("--trace-id needs --spans SPANS.jsonl to join")
        spans = obs.load_trace(args.spans)
        by_trace: dict[int, list] = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        traced = [r for r in records if getattr(r, "trace_id", 0)]
        joined = [r for r in traced if r.trace_id in by_trace]
        print(
            f"traces: {len(traced)} record(s) carry a trace id, "
            f"{len(joined)} joined against {args.spans} "
            f"({len(by_trace)} trace(s) in the file)"
        )
        if args.trace_id:
            tree_spans = by_trace.get(args.trace_id, [])
            if not tree_spans:
                raise ReproError(
                    f"trace {args.trace_id} has no spans in {args.spans}"
                )
            for record in records:
                if getattr(record, "trace_id", 0) == args.trace_id:
                    print(
                        f"trace {args.trace_id}: {record.dataset_key} "
                        f"tier={record.tier} source={record.source}"
                    )
            print(obs.render_cost_tree(tree_spans))
    return 0


def _cmd_retrain(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    from repro.lifecycle import BackgroundRetrainer, read_outcomes

    replay = read_outcomes(args.outcomes)
    if replay.torn_lines:
        print(
            f"note: skipped {replay.torn_lines} torn line(s) in "
            f"{args.outcomes}",
            file=sys.stderr,
        )
    registry = ModelRegistry(args.registry, ctx=ctx)
    retrainer = BackgroundRetrainer(
        registry,
        args.compressor,
        args.fingerprint or None,
        min_samples=args.min_samples,
        canary_fraction=args.canary_fraction,
        canary_margin=args.canary_margin,
        oversample=args.oversample,
        auto_promote=not args.no_promote,
        ctx=ctx,
    )
    result = retrainer.retrain(replay.records)
    print(
        f"retrain ({result.trainable} trainable record(s), "
        f"{result.train_rows} trained, {result.holdout} held out) "
        f"in {result.seconds:.1f}s: {result.reason}"
    )
    if result.candidate is not None:
        print(
            f"candidate: {result.candidate.compressor}/"
            f"{result.candidate.fingerprint} v{result.candidate.version}"
        )
    if result.promoted is not None:
        print(f"promoted v{result.promoted.version} to latest")
    elif result.report is not None and result.report.promote:
        print("canary passed; promotion skipped (--no-promote)")
    return 0


def _cmd_datasets(args: argparse.Namespace, ctx: RuntimeContext) -> int:  # noqa: ARG001
    for name, entry in dataset_catalog().items():
        print(
            f"{name:12} {entry['domain']:18} fields={','.join(entry['fields'])} "
            f"tsteps={entry['timesteps']} shape={entry['shape']}"
        )
    return 0


def _cmd_export(args: argparse.Namespace, ctx: RuntimeContext) -> int:
    from repro.datasets.registry import load_series

    series = load_series(args.dataset, args.field)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for snap in series:
        path = out_dir / f"{snap.label}.npy"
        np.save(path, snap.data)
        print(f"wrote {path} ({snap.data.shape}, {snap.data.dtype})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FXRZ fixed-ratio lossy compression"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # One shared parent parser supplies --jobs/--trace/--metrics/
    # --fallback/--min-confidence/--runtime-profile to every subcommand
    # that does real work; main() turns them into a RuntimeContext.
    runtime = runtime_parent_parser()

    train = sub.add_parser(
        "train", parents=[runtime], help="fit a pipeline on .npy arrays"
    )
    train.add_argument("inputs", nargs="+", help="training .npy files")
    train.add_argument("--model", required=True, help="output model .npz")
    train.add_argument("--compressor", default="sz", choices=available_compressors())
    train.add_argument("--stride", type=int, default=4)
    train.add_argument("--stationary-points", type=int, default=25)
    train.add_argument("--augmented-samples", type=int, default=250)
    train.add_argument("--no-adjustment", action="store_true")
    train.set_defaults(func=_cmd_train)

    def add_target_flags(cmd: argparse.ArgumentParser) -> None:
        """The objective flags shared by estimate and compress."""
        cmd.add_argument(
            "--ratio",
            type=float,
            default=None,
            help="target compression ratio (synonym of --target-ratio)",
        )
        cmd.add_argument(
            "--target-ratio",
            type=float,
            default=None,
            help="target compression ratio (TCR)",
        )
        cmd.add_argument(
            "--target-psnr",
            type=float,
            default=None,
            help="target PSNR in dB (quality objective)",
        )
        cmd.add_argument(
            "--target-ssim",
            type=float,
            default=None,
            help="target global SSIM in (0, 1] (quality objective)",
        )

    estimate = sub.add_parser(
        "estimate",
        parents=[runtime],
        help="predict config for a ratio or quality target",
    )
    estimate.add_argument("input", help="data .npy file")
    estimate.add_argument("--model", required=True)
    add_target_flags(estimate)
    estimate.add_argument(
        "--frontier",
        default="",
        help='Pareto query instead of a point estimate, e.g. "cr>=10" '
        'or "psnr>=60" (see docs/OBJECTIVES.md)',
    )
    estimate.add_argument(
        "--frontier-points",
        type=int,
        default=12,
        help="ratio grid size of the frontier sweep",
    )
    estimate.set_defaults(func=_cmd_estimate)

    batch = sub.add_parser(
        "estimate-batch",
        aliases=["serve"],
        parents=[runtime],
        help="serve a JSONL batch of estimation requests",
    )
    batch.add_argument(
        "requests",
        help='JSONL file, one {"input": "x.npy", "ratio": 40.0} or '
        '{"input": "x.npy", "objective": "psnr:60"} per line '
        '(optional "id")',
    )
    batch.add_argument("--model", default="", help="pipeline .npz archive")
    batch.add_argument(
        "--registry", default="", help="model registry root (instead of --model)"
    )
    batch.add_argument(
        "--compressor",
        default="sz",
        choices=available_compressors(),
        help="registry lookup: compressor name",
    )
    batch.add_argument(
        "--fingerprint", default="", help="registry lookup: corpus fingerprint"
    )
    batch.add_argument(
        "--version", default="latest", help='registry lookup: version or "latest"'
    )
    batch.add_argument("--output", default="", help="results JSONL (default stdout)")
    batch.add_argument(
        "--engine",
        choices=("guarded", "plain"),
        default="guarded",
        help="serve through the guarded ladder or the plain model",
    )
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument("--max-batch", type=int, default=32)
    batch.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve through N supervised worker-process shards "
        "(0 = in-process thread service)",
    )
    batch.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="sharded admission-queue bound; beyond it requests shed "
        "with a retry-after hint",
    )
    batch.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="per-request deadline in milliseconds (0 = none)",
    )
    batch.add_argument(
        "--stats", action="store_true", help="append the service metrics snapshot"
    )
    batch.set_defaults(func=_cmd_estimate_batch)

    compress = sub.add_parser(
        "compress",
        parents=[runtime],
        help="compress to a ratio or quality target",
    )
    compress.add_argument("input", help="data .npy file")
    compress.add_argument("--model", required=True)
    add_target_flags(compress)
    compress.add_argument("--output", required=True, help="output blob file")
    compress.set_defaults(func=_cmd_compress)

    decompress = sub.add_parser("decompress", help="reconstruct from a blob")
    decompress.add_argument("input", help="blob file")
    decompress.add_argument("--output", required=True, help="output .npy file")
    decompress.set_defaults(func=_cmd_decompress)

    search = sub.add_parser(
        "search", parents=[runtime], help="run the FRaZ baseline"
    )
    search.add_argument("input", help="data .npy file")
    search.add_argument("--compressor", default="sz", choices=available_compressors())
    search.add_argument("--ratio", type=float, required=True)
    search.add_argument("--iterations", type=int, default=15)
    search.set_defaults(func=_cmd_search)

    dump = sub.add_parser(
        "dump", help="simulate a parallel dump, optionally fault-injected"
    )
    dump.add_argument("--ranks", type=int, default=1024)
    dump.add_argument("--bytes-per-rank", type=float, default=512e6)
    dump.add_argument("--ratio", type=float, default=20.0)
    dump.add_argument("--throughput", type=float, default=200e6)
    dump.add_argument("--analysis-seconds", type=float, default=0.5)
    dump.add_argument("--shared-bandwidth", type=float, default=2e9)
    dump.add_argument("--fault-seed", type=int, default=0)
    dump.add_argument("--fail-prob", type=float, default=0.0)
    dump.add_argument("--straggler-prob", type=float, default=0.0)
    dump.add_argument("--straggler-slowdown", type=float, default=4.0)
    dump.add_argument("--write-error-prob", type=float, default=0.0)
    dump.add_argument("--retries", type=int, default=4)
    dump.add_argument(
        "--no-retry", action="store_true", help="any injected fault is terminal"
    )
    dump.add_argument("--base-delay", type=float, default=0.5)
    dump.set_defaults(func=_cmd_dump)

    # The positional is named "input", not "trace": the runtime context
    # reads the --trace *flag* via getattr, and a positional named
    # "trace" would make it install tracing and clobber the file it is
    # reporting on.
    obs_report = sub.add_parser(
        "obs-report", help="render a recorded span trace as a cost tree"
    )
    obs_report.add_argument("input", help="JSONL trace from --trace")
    obs_report.add_argument(
        "--min-fraction",
        type=float,
        default=0.0,
        help="hide phases below this share of total wall time (e.g. 0.01)",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    outcomes = sub.add_parser(
        "outcomes-report", help="summarize a serving outcome log"
    )
    outcomes.add_argument("log", help="outcome JSONL from --outcome-log")
    outcomes.add_argument(
        "--spans",
        default="",
        help="span JSONL (from --trace or /spans) to join trace ids against",
    )
    outcomes.add_argument(
        "--trace-id",
        type=int,
        default=0,
        help="render the span tree of one trace id (needs --spans)",
    )
    outcomes.set_defaults(func=_cmd_outcomes_report)

    obs_top = sub.add_parser(
        "obs-top",
        help="poll a service scrape endpoint: health, supervision, SLO burn",
    )
    obs_top.add_argument(
        "url", help="scrape base URL, e.g. http://127.0.0.1:9464"
    )
    obs_top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    obs_top.add_argument(
        "--iterations", type=int, default=1, help="polls before exiting"
    )
    obs_top.add_argument("--timeout", type=float, default=5.0)
    obs_top.set_defaults(func=_cmd_obs_top)

    retrain = sub.add_parser(
        "retrain",
        parents=[runtime],
        help="retrain a registry model from an outcome log (canary-gated)",
    )
    retrain.add_argument(
        "--registry", required=True, help="model registry root"
    )
    retrain.add_argument(
        "--compressor", default="sz", choices=available_compressors()
    )
    retrain.add_argument(
        "--fingerprint", default="", help="registry entry fingerprint"
    )
    retrain.add_argument(
        "--outcomes", required=True, help="outcome JSONL from --outcome-log"
    )
    retrain.add_argument("--min-samples", type=int, default=64)
    retrain.add_argument(
        "--canary-fraction",
        type=float,
        default=0.25,
        help="most-recent fraction of trainable outcomes held out",
    )
    retrain.add_argument(
        "--canary-margin",
        type=float,
        default=0.0,
        help="fractional improvement required to promote",
    )
    retrain.add_argument(
        "--oversample",
        type=int,
        default=4,
        help="outcome-row replication against the augmented base matrix",
    )
    retrain.add_argument(
        "--no-promote",
        action="store_true",
        help="publish the candidate but never flip the latest alias",
    )
    retrain.set_defaults(func=_cmd_retrain)

    datasets = sub.add_parser("datasets", help="list the built-in catalog")
    datasets.set_defaults(func=_cmd_datasets)

    export = sub.add_parser(
        "export", help="materialize a built-in dataset as .npy files"
    )
    export.add_argument("dataset", help="catalog name, e.g. nyx-1")
    export.add_argument("field", help="field name, e.g. baryon_density")
    export.add_argument("--out", required=True, help="output directory")
    export.set_defaults(func=_cmd_export)
    return parser


#: Parser memo for :func:`main` — building the ~15-subcommand parser
#: costs a few ms, which embedders calling ``main`` per request (the
#: smoke examples, services wrapping the CLI) would otherwise pay every
#: time. ``build_parser`` stays un-memoized for callers that customize.
_PARSER: argparse.ArgumentParser | None = None

#: The runtime context of the most recent :func:`main` invocation.
#: Tests assert on it to pin the teardown contract: after main()
#: returns — success or failure — the context is closed, its worker
#: pool is gone and its shared-memory segments are unlinked.
_LAST_CONTEXT: RuntimeContext | None = None


def main(argv: list[str] | None = None) -> int:
    global _PARSER, _LAST_CONTEXT
    if _PARSER is None:
        _PARSER = build_parser()
    args = _PARSER.parse_args(argv)
    ctx = RuntimeContext.from_args(args)
    _LAST_CONTEXT = ctx
    try:
        with ctx:
            with obs.span(f"cli.{args.command}"):
                return args.func(args, ctx)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # ``with ctx`` already closed it on the happy path; this makes
        # teardown unconditional for exits that never entered the
        # block (argparse quirks) and keeps close() idempotent.
        ctx.close()
        for note in ctx.teardown_notes:
            print(note, file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
