"""Command-line interface for the FXRZ library.

Commands mirror the library's lifecycle so a shell user can run the
whole fixed-ratio workflow on ``.npy`` files:

* ``repro train``     — fit a pipeline on training arrays, save it.
* ``repro estimate``  — predict the error config for a target ratio.
* ``repro compress``  — fixed-ratio compress one array to a blob file.
* ``repro decompress``— reconstruct an array from a blob file.
* ``repro search``    — run the FRaZ baseline for comparison.
* ``repro datasets``  — list the built-in synthetic dataset catalog.

Blob files are a small self-describing container: a JSON header
(compressor, config, shape, dtype) followed by the compressed payload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.baselines.fraz import FRaZ
from repro.compressors import available_compressors, get_compressor
from repro.compressors.base import CompressedBlob
from repro.config import FXRZConfig
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.pipeline import FXRZ
from repro.datasets.registry import dataset_catalog
from repro.errors import ReproError

_MAGIC = b"FXRZBLOB"


def _load_array(path: str) -> np.ndarray:
    array = np.load(path)
    if not isinstance(array, np.ndarray):
        raise ReproError(f"{path} does not contain a plain ndarray")
    return array


def write_blob(blob: CompressedBlob, path: str | pathlib.Path) -> None:
    """Serialize a compressed blob with a self-describing header."""
    header = json.dumps(
        {
            "compressor": blob.compressor,
            "config": blob.config,
            "shape": list(blob.original_shape),
            "dtype": blob.original_dtype,
        }
    ).encode("utf-8")
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(len(header).to_bytes(4, "little"))
        f.write(header)
        f.write(blob.data)


def read_blob(path: str | pathlib.Path) -> CompressedBlob:
    """Inverse of :func:`write_blob`."""
    raw = pathlib.Path(path).read_bytes()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ReproError(f"{path} is not an FXRZ blob file")
    header_len = int.from_bytes(raw[8:12], "little")
    header = json.loads(raw[12 : 12 + header_len].decode("utf-8"))
    return CompressedBlob(
        data=raw[12 + header_len :],
        original_shape=tuple(header["shape"]),
        original_dtype=header["dtype"],
        compressor=header["compressor"],
        config=float(header["config"]),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    config = FXRZConfig(
        sampling_stride=args.stride,
        stationary_points=args.stationary_points,
        augmented_samples=args.augmented_samples,
        use_adjustment=not args.no_adjustment,
    )
    pipeline = FXRZ(get_compressor(args.compressor), config=config)
    arrays = [_load_array(p) for p in args.inputs]
    report = pipeline.fit(arrays)
    save_pipeline(pipeline, args.model)
    print(
        f"trained on {report.n_datasets} arrays "
        f"({report.n_samples} samples) in {report.total_seconds:.1f}s; "
        f"saved to {args.model}"
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    pipeline = load_pipeline(args.model)
    data = _load_array(args.input)
    estimate = pipeline.estimate_config(data, args.ratio)
    print(
        f"estimated config: {estimate.config:.6g} "
        f"(ACR {estimate.adjusted_target:.2f}, R {estimate.nonconstant:.2f}, "
        f"analysis {estimate.analysis_seconds * 1e3:.1f}ms)"
    )
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    pipeline = load_pipeline(args.model)
    data = _load_array(args.input)
    result = pipeline.compress_to_ratio(data, args.ratio)
    write_blob(result.blob, args.output)
    print(
        f"target {args.ratio:.1f}x -> measured {result.measured_ratio:.1f}x "
        f"(error {result.estimation_error:.1%}); wrote "
        f"{result.blob.nbytes} bytes to {args.output}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = read_blob(args.input)
    kwargs = {}
    compressor = get_compressor(blob.compressor, **kwargs)
    array = compressor.decompress(blob)
    np.save(args.output, array)
    print(
        f"reconstructed {array.shape} {array.dtype} array from "
        f"{blob.compressor}@{blob.config:g}; wrote {args.output}"
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    comp = get_compressor(args.compressor)
    data = _load_array(args.input)
    searcher = FRaZ(comp, max_iterations=args.iterations)
    result = searcher.search(data, args.ratio)
    print(
        f"FRaZ({args.iterations}): config {result.config:.6g} -> "
        f"{result.measured_ratio:.1f}x (error {result.estimation_error:.1%}) "
        f"in {result.iterations} compressor runs / {result.search_seconds:.2f}s"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:  # noqa: ARG001
    for name, entry in dataset_catalog().items():
        print(
            f"{name:12} {entry['domain']:18} fields={','.join(entry['fields'])} "
            f"tsteps={entry['timesteps']} shape={entry['shape']}"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.datasets.registry import load_series

    series = load_series(args.dataset, args.field)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for snap in series:
        path = out_dir / f"{snap.label}.npy"
        np.save(path, snap.data)
        print(f"wrote {path} ({snap.data.shape}, {snap.data.dtype})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FXRZ fixed-ratio lossy compression"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="fit a pipeline on .npy arrays")
    train.add_argument("inputs", nargs="+", help="training .npy files")
    train.add_argument("--model", required=True, help="output model .npz")
    train.add_argument("--compressor", default="sz", choices=available_compressors())
    train.add_argument("--stride", type=int, default=4)
    train.add_argument("--stationary-points", type=int, default=25)
    train.add_argument("--augmented-samples", type=int, default=250)
    train.add_argument("--no-adjustment", action="store_true")
    train.set_defaults(func=_cmd_train)

    estimate = sub.add_parser("estimate", help="predict config for a ratio")
    estimate.add_argument("input", help="data .npy file")
    estimate.add_argument("--model", required=True)
    estimate.add_argument("--ratio", type=float, required=True)
    estimate.set_defaults(func=_cmd_estimate)

    compress = sub.add_parser("compress", help="fixed-ratio compress")
    compress.add_argument("input", help="data .npy file")
    compress.add_argument("--model", required=True)
    compress.add_argument("--ratio", type=float, required=True)
    compress.add_argument("--output", required=True, help="output blob file")
    compress.set_defaults(func=_cmd_compress)

    decompress = sub.add_parser("decompress", help="reconstruct from a blob")
    decompress.add_argument("input", help="blob file")
    decompress.add_argument("--output", required=True, help="output .npy file")
    decompress.set_defaults(func=_cmd_decompress)

    search = sub.add_parser("search", help="run the FRaZ baseline")
    search.add_argument("input", help="data .npy file")
    search.add_argument("--compressor", default="sz", choices=available_compressors())
    search.add_argument("--ratio", type=float, required=True)
    search.add_argument("--iterations", type=int, default=15)
    search.set_defaults(func=_cmd_search)

    datasets = sub.add_parser("datasets", help="list the built-in catalog")
    datasets.set_defaults(func=_cmd_datasets)

    export = sub.add_parser(
        "export", help="materialize a built-in dataset as .npy files"
    )
    export.add_argument("dataset", help="catalog name, e.g. nyx-1")
    export.add_argument("field", help="field name, e.g. baryon_density")
    export.add_argument("--out", required=True, help="output directory")
    export.set_defaults(func=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
