"""Per-compressor throughput calibration for the dump model."""

from __future__ import annotations

import time

import numpy as np

from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration


def measure_throughput(
    compressor: Compressor,
    data: np.ndarray,
    config: float,
    repeats: int = 2,
) -> float:
    """Compression throughput in bytes/second (best of ``repeats``)."""
    if repeats < 1:
        raise InvalidConfiguration("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        compressor.compress(data, config)
        best = min(best, time.perf_counter() - start)
    if best <= 0:
        best = 1e-9
    return data.nbytes / best
