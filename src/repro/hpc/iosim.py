"""Analytic model of parallel data dumping on a supercomputer.

The paper's final experiment (Sec. V-H / conclusion) dumps data from up
to 4,096 cores on ANL Bebop through a shared GPFS filesystem
(~2 GB/s aggregate), comparing end-to-end time when the fixed-ratio
configuration comes from FXRZ versus FRaZ. The mechanism behind the
1.18-8.71x gain is simple and fully captured by this model:

* every rank must *find* its error configuration before dumping:
  FXRZ pays one cheap feature pass; FRaZ pays ``iterations`` full
  compressor runs;
* then every rank compresses once and writes through the shared
  filesystem, whose aggregate bandwidth all ranks divide.

As rank count grows, the shared write stage stops scaling while the
per-rank search cost stays constant, so FRaZ's overhead dominates at
small scale (compute-bound) and shrinks relative to I/O at the largest
scale — the paper's 8.71x..1.18x band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidConfiguration, RetryExhausted
from repro.robustness.faults import FaultSpec, RetryPolicy, backoff_schedule
from repro.runtime.compat import UNSET


@dataclass(frozen=True)
class DumpScenario:
    """One parallel dump configuration.

    Attributes:
        n_ranks: number of MPI ranks dumping simultaneously.
        bytes_per_rank: uncompressed data owned by each rank.
        compression_ratio: achieved ratio (both strategies compress to
            the same target ratio, so the written volume matches).
        compress_throughput: single-rank compressor speed (bytes/s).
        analysis_seconds: per-rank configuration-search cost — FXRZ's
            feature pass or FRaZ's ``iterations x compression`` time.
        shared_bandwidth: aggregate filesystem bandwidth (bytes/s).
        per_rank_bandwidth: link ceiling of a single rank (bytes/s).
    """

    n_ranks: int
    bytes_per_rank: float
    compression_ratio: float
    compress_throughput: float
    analysis_seconds: float
    shared_bandwidth: float = 2e9
    per_rank_bandwidth: float = 1e9

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise InvalidConfiguration("n_ranks must be >= 1")
        if min(
            self.bytes_per_rank,
            self.compression_ratio,
            self.compress_throughput,
            self.shared_bandwidth,
            self.per_rank_bandwidth,
        ) <= 0:
            raise InvalidConfiguration("scenario quantities must be positive")
        if self.analysis_seconds < 0:
            raise InvalidConfiguration("analysis_seconds must be >= 0")


@dataclass(frozen=True)
class DumpBreakdown:
    """End-to-end dump time and its stages (seconds)."""

    analysis: float
    compression: float
    write: float

    @property
    def total(self) -> float:
        return self.analysis + self.compression + self.write


def simulate_dump(scenario: DumpScenario, *, ctx=None) -> DumpBreakdown:
    """End-to-end wall time of one parallel dump.

    Analysis and compression are perfectly parallel (each rank works on
    its own data); the write stage shares the filesystem: each rank's
    effective write bandwidth is ``min(per_rank, shared / n_ranks)``.
    The simulation is pure arithmetic; ``ctx`` is accepted for API
    uniformity with :func:`simulate_faulty_dump`.
    """
    analysis = scenario.analysis_seconds
    compression = scenario.bytes_per_rank / scenario.compress_throughput
    compressed = scenario.bytes_per_rank / scenario.compression_ratio
    write_bw = min(
        scenario.per_rank_bandwidth,
        scenario.shared_bandwidth / scenario.n_ranks,
    )
    write = compressed / write_bw
    return DumpBreakdown(analysis=analysis, compression=compression, write=write)


# -- fault-injected dumping ----------------------------------------------------


@dataclass(frozen=True)
class RankOutcome:
    """What happened to one rank during a fault-injected dump.

    Attributes:
        rank: rank index.
        attempts: attempts spent (1 = clean first try).
        seconds: wall time including lost work and backoff delays.
        straggler: whether the rank ran at the straggler slowdown.
        events: the fault observed on each non-final attempt, in order
            (``"rank-failure"`` or ``"write-error"``).
    """

    rank: int
    attempts: int
    seconds: float
    straggler: bool
    events: tuple[str, ...] = ()


@dataclass(frozen=True)
class FaultyDumpReport:
    """Completion report of a fault-injected parallel dump.

    Attributes:
        completion_seconds: wall time until the slowest rank finished.
        fault_free_seconds: the same scenario's happy-path time.
        ranks: per-rank outcomes, index-ordered.
    """

    completion_seconds: float
    fault_free_seconds: float
    ranks: tuple[RankOutcome, ...] = field(default_factory=tuple)

    @property
    def total_attempts(self) -> int:
        return sum(r.attempts for r in self.ranks)

    @property
    def failed_ranks(self) -> int:
        """Ranks that needed more than one attempt."""
        return sum(1 for r in self.ranks if r.attempts > 1)

    @property
    def overhead(self) -> float:
        """Completion time relative to the fault-free dump (>= 1)."""
        return self.completion_seconds / self.fault_free_seconds


def simulate_faulty_dump(
    scenario: DumpScenario,
    faults: FaultSpec,
    retry: RetryPolicy | None | object = UNSET,
    *,
    ctx=None,
) -> FaultyDumpReport:
    """Wall time of a parallel dump under seeded, injectable faults.

    Each rank owns a deterministic random stream derived from
    ``(faults.seed, rank)`` and works through its analysis +
    compression + write budget in attempts:

    * a **rank failure** kills the attempt a uniform fraction into the
      remaining work; the checkpoint preserves
      ``faults.checkpoint_fraction`` of the progress made;
    * a **write error** costs the whole attempt's time but loses only
      the write stage (computed data survives in memory);
    * **stragglers** run all compute/write at
      ``faults.straggler_slowdown``.

    Failed attempts wait out the retry policy's jittered exponential
    backoff before restarting. A rank that exhausts its attempt budget
    aborts the dump.

    Args:
        scenario: the happy-path dump description.
        faults: seeded fault probabilities.
        retry: backoff/budget policy; an explicit ``None`` disables
            retries (any fault is terminal). Left unset, the policy
            comes from ``ctx`` when one is given, else retries are
            disabled.
        ctx: a :class:`~repro.runtime.RuntimeContext`; supplies
            ``ctx.retry_policy`` when ``retry`` is left unset.

    Returns:
        A :class:`FaultyDumpReport` with per-rank attempt counts.

    Raises:
        RetryExhausted: some rank saw a fault with retries disabled, or
            faulted on every attempt in its budget; carries ``attempts``
            and ``last_cause``.
    """
    if retry is UNSET:
        retry = ctx.retry_policy if ctx is not None else None
    policy = retry if retry is not None else RetryPolicy(
        max_attempts=1, base_delay=0.0, jitter=0.0
    )
    clean = simulate_dump(scenario)
    write_seconds = clean.write
    outcomes = []
    for rank in range(scenario.n_ranks):
        rng = faults.rank_rng(rank)
        straggler = bool(rng.random() < faults.straggler_prob)
        slow = faults.straggler_slowdown if straggler else 1.0
        delays = backoff_schedule(policy, policy.max_attempts - 1, rng)
        remaining = clean.analysis + slow * (clean.compression + write_seconds)
        elapsed = 0.0
        events: list[str] = []
        attempts = 0
        while attempts < policy.max_attempts:
            attempts += 1
            draw = rng.random()
            if draw < faults.rank_failure_prob:
                lost_at = rng.random()
                done = lost_at * remaining
                elapsed += done
                remaining -= faults.checkpoint_fraction * done
                events.append("rank-failure")
            elif draw < faults.rank_failure_prob + faults.write_error_prob:
                elapsed += remaining
                # Compute survives; only the write stage is redone.
                remaining = min(remaining, slow * write_seconds)
                events.append("write-error")
            else:
                elapsed += remaining
                remaining = 0.0
                break
            if attempts < policy.max_attempts:
                elapsed += float(delays[attempts - 1])
        if remaining > 0.0:
            cause = events[-1] if events else "unknown fault"
            raise RetryExhausted(
                f"rank {rank} failed after {attempts} attempt(s) "
                f"(last cause: {cause}; retries "
                f"{'disabled' if policy.max_attempts == 1 else 'exhausted'})",
                attempts=attempts,
                last_cause=cause,
            )
        outcomes.append(
            RankOutcome(
                rank=rank,
                attempts=attempts,
                seconds=elapsed,
                straggler=straggler,
                events=tuple(events),
            )
        )
    return FaultyDumpReport(
        completion_seconds=max(o.seconds for o in outcomes),
        fault_free_seconds=clean.total,
        ranks=tuple(outcomes),
    )
