"""Analytic model of parallel data dumping on a supercomputer.

The paper's final experiment (Sec. V-H / conclusion) dumps data from up
to 4,096 cores on ANL Bebop through a shared GPFS filesystem
(~2 GB/s aggregate), comparing end-to-end time when the fixed-ratio
configuration comes from FXRZ versus FRaZ. The mechanism behind the
1.18-8.71x gain is simple and fully captured by this model:

* every rank must *find* its error configuration before dumping:
  FXRZ pays one cheap feature pass; FRaZ pays ``iterations`` full
  compressor runs;
* then every rank compresses once and writes through the shared
  filesystem, whose aggregate bandwidth all ranks divide.

As rank count grows, the shared write stage stops scaling while the
per-rank search cost stays constant, so FRaZ's overhead dominates at
small scale (compute-bound) and shrinks relative to I/O at the largest
scale — the paper's 8.71x..1.18x band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class DumpScenario:
    """One parallel dump configuration.

    Attributes:
        n_ranks: number of MPI ranks dumping simultaneously.
        bytes_per_rank: uncompressed data owned by each rank.
        compression_ratio: achieved ratio (both strategies compress to
            the same target ratio, so the written volume matches).
        compress_throughput: single-rank compressor speed (bytes/s).
        analysis_seconds: per-rank configuration-search cost — FXRZ's
            feature pass or FRaZ's ``iterations x compression`` time.
        shared_bandwidth: aggregate filesystem bandwidth (bytes/s).
        per_rank_bandwidth: link ceiling of a single rank (bytes/s).
    """

    n_ranks: int
    bytes_per_rank: float
    compression_ratio: float
    compress_throughput: float
    analysis_seconds: float
    shared_bandwidth: float = 2e9
    per_rank_bandwidth: float = 1e9

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise InvalidConfiguration("n_ranks must be >= 1")
        if min(
            self.bytes_per_rank,
            self.compression_ratio,
            self.compress_throughput,
            self.shared_bandwidth,
            self.per_rank_bandwidth,
        ) <= 0:
            raise InvalidConfiguration("scenario quantities must be positive")
        if self.analysis_seconds < 0:
            raise InvalidConfiguration("analysis_seconds must be >= 0")


@dataclass(frozen=True)
class DumpBreakdown:
    """End-to-end dump time and its stages (seconds)."""

    analysis: float
    compression: float
    write: float

    @property
    def total(self) -> float:
        return self.analysis + self.compression + self.write


def simulate_dump(scenario: DumpScenario) -> DumpBreakdown:
    """End-to-end wall time of one parallel dump.

    Analysis and compression are perfectly parallel (each rank works on
    its own data); the write stage shares the filesystem: each rank's
    effective write bandwidth is ``min(per_rank, shared / n_ranks)``.
    """
    analysis = scenario.analysis_seconds
    compression = scenario.bytes_per_rank / scenario.compress_throughput
    compressed = scenario.bytes_per_rank / scenario.compression_ratio
    write_bw = min(
        scenario.per_rank_bandwidth,
        scenario.shared_bandwidth / scenario.n_ranks,
    )
    write = compressed / write_bw
    return DumpBreakdown(analysis=analysis, compression=compression, write=write)
