"""Parallel data-dumping model (the paper's Bebop experiment)."""

from repro.hpc.iosim import (
    DumpBreakdown,
    DumpScenario,
    FaultyDumpReport,
    RankOutcome,
    simulate_dump,
    simulate_faulty_dump,
)
from repro.hpc.throughput import measure_throughput

__all__ = [
    "DumpScenario",
    "DumpBreakdown",
    "FaultyDumpReport",
    "RankOutcome",
    "simulate_dump",
    "simulate_faulty_dump",
    "measure_throughput",
]
