"""Parallel data-dumping model (the paper's Bebop experiment)."""

from repro.hpc.iosim import DumpBreakdown, DumpScenario, simulate_dump
from repro.hpc.throughput import measure_throughput

__all__ = ["DumpScenario", "DumpBreakdown", "simulate_dump", "measure_throughput"]
