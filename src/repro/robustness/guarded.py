"""Guarded inference: validate, score confidence, degrade gracefully.

The ladder, from cheapest to most expensive:

1. **model** — the regression forest, accepted only when the input
   passes validation and the confidence score (per-tree spread x
   training-feature envelope) clears ``min_confidence``.
2. **curve** — interpolate the training curve of the nearest training
   dataset (the same curves augmentation built, read backwards). Costs
   nothing extra and cannot return a wild extrapolation, but only
   answers targets inside the anchored ratio range.
3. **fraz** — a bounded FRaZ search (Underwood et al., IPDPS'20): runs
   the actual compressor a handful of times. Slow, but correct by
   construction — the terminal rung of the ladder.

Every answer records which tier produced it and why, so a 4,096-rank
dump can log *how* each rank chose its configuration.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.baselines.fraz import FRaZ
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.features import extract_features
from repro.core.inference import Estimate
from repro.core.objective import (
    Objective,
    QualityModel,
    RatioTarget,
    as_objective,
)
from repro.errors import (
    FallbackExhaustedError,
    InvalidConfiguration,
    NotFittedError,
    OutOfDistributionError,
    ReproError,
)
from repro.robustness.confidence import FeatureEnvelope, score_confidence
from repro.robustness.validation import validate_field
from repro.runtime.compat import UNSET, legacy

#: Ladder tiers each ``fallback`` setting may use, in order.
_LADDERS = {
    "none": ("model",),
    "curve": ("model", "curve"),
    "fraz": ("model", "curve", "fraz"),
}

#: Quality objectives use their own two-rung ladder: the analytic prior
#: (compression-free, trusted only for calibrated models or the
#: SZ-style quantizer it is exact for), then measured probe refinement
#: — the quality analogue of the FRaZ rung. ``fallback="none"`` forbids
#: running the compressor, exactly as it forbids the FRaZ rung.
_QUALITY_LADDERS = {
    "none": ("analytic",),
    "curve": ("analytic", "probe"),
    "fraz": ("analytic", "probe"),
}

#: How far (fractionally) outside a curve's anchored ratio range the
#: curve tier will still answer by clamping.
_CURVE_SLACK = 0.25


def _usable(config: float) -> bool:
    return math.isfinite(config) and config > 0.0


@dataclass(frozen=True)
class GuardedAnalysis:
    """Target-independent half of one guarded inference.

    Like :class:`~repro.core.inference.DatasetAnalysis` but carrying the
    validation report too (the FRaZ rung must compress the *patched*
    field, and field issues discount the model's confidence). A serving
    layer caches this per dataset and reuses it across targets.
    """

    report: object  # FieldReport
    features: np.ndarray
    nonconstant: float
    seconds: float


class GuardedInferenceEngine:
    """Drop-in, hardened replacement for the plain inference path.

    Args:
        pipeline: a fitted :class:`~repro.core.pipeline.FXRZ`.
        fallback: terminal rung of the ladder — ``"none"`` (model only;
            raises :class:`OutOfDistributionError` on low confidence),
            ``"curve"``, or ``"fraz"`` (always answers). ``None``
            defers to the runtime context's policy ("fraz" without
            one).
        min_confidence: model-tier acceptance threshold in [0, 1];
            ``None`` defers to the context's policy (0.5 without one).
        envelope_margin: fractional margin of the training envelope.
        fraz_iterations: compressor-run budget of the FRaZ rung.
        ctx: a :class:`~repro.runtime.RuntimeContext` supplying the
            fallback policy plus the memo/executor of the FRaZ rung;
            defaults to the pipeline's own context.
        outcome_log: a :class:`~repro.lifecycle.OutcomeLog`; when given,
            every estimate is recorded (source ``"guarded"``, with the
            FRaZ rung's measured ratio when that rung answered). Only
            an explicit log is used — never the context's — so layered
            callers (services, shards) that record at their own level
            do not double-log.
        memo: deprecated — contexts share their memo automatically.
        executor: deprecated — pass ``ctx=RuntimeContext(jobs=...)``.
        quality_model: the :class:`~repro.core.objective.QualityModel`
            answering PSNR/SSIM objectives; an uncalibrated analytic
            prior when not given.
        quality_probes: compressor-run budget of the quality probe rung.
    """

    def __init__(
        self,
        pipeline,
        fallback: str | None = None,
        min_confidence: float | None = None,
        envelope_margin: float = 0.05,
        fraz_iterations: int = 6,
        memo=UNSET,
        executor=UNSET,
        *,
        ctx=None,
        outcome_log=None,
        quality_model: QualityModel | None = None,
        quality_probes: int = 2,
    ) -> None:
        if ctx is None:
            ctx = getattr(pipeline, "ctx", None)
        if fallback is None:
            fallback = ctx.config.fallback if ctx is not None else "fraz"
        if min_confidence is None:
            min_confidence = ctx.config.min_confidence if ctx is not None else 0.5
        if fallback not in _LADDERS:
            raise InvalidConfiguration(
                f"fallback must be one of {sorted(_LADDERS)}, got {fallback!r}"
            )
        if not 0.0 <= min_confidence <= 1.0:
            raise InvalidConfiguration("min_confidence must be in [0, 1]")
        if not pipeline.is_fitted:
            raise NotFittedError("guarded inference needs a fitted pipeline")
        self.pipeline = pipeline
        self.ctx = ctx
        self.outcome_log = outcome_log
        self.fallback = fallback
        self.min_confidence = min_confidence
        self.fraz_iterations = fraz_iterations
        self.quality = quality_model or QualityModel()
        self.quality_probes = int(quality_probes)
        memo = legacy("GuardedInferenceEngine", "memo", memo)
        executor = legacy("GuardedInferenceEngine", "executor", executor)
        if memo is None:
            memo = ctx.memo if ctx is not None else getattr(pipeline, "memo", None)
        if executor is None and ctx is not None:
            executor = ctx.executor
        self.memo = memo
        self.executor = executor
        self.compressor = pipeline.compressor
        self.config = pipeline.config
        self.model = pipeline.model
        self._records = list(pipeline._training.records)
        self.envelope = FeatureEnvelope(
            self._envelope_rows(), margin=envelope_margin
        )

    def _envelope_rows(self) -> np.ndarray:
        """Training envelope corners: each record at its ACR extremes.

        The augmented training rows for one record share its feature
        vector and sweep ACR over the curve's anchored ratio range, so
        the two extreme rows per record span the exact axis-aligned box
        the model was fitted in.
        """
        rows = []
        for rec in self._records:
            lo, hi = rec.curve.ratio_range
            lo = max(lo, 1.0)
            hi = max(hi, lo)
            for ratio in (lo, hi):
                acr = adjusted_ratio(float(ratio), rec.nonconstant)
                rows.append(np.concatenate((rec.features, [acr])))
        return np.vstack(rows)

    # -- ladder rungs ----------------------------------------------------------

    def _model_config(self, features: np.ndarray, acr: float) -> float:
        """The plain engine's prediction (range-rescaled, normalized)."""
        row = np.concatenate((features, [acr]))[None, :]
        raw = float(self.model.predict(row)[0])
        if self.compressor.config_scale == "log":
            raw = 10.0**raw * max(float(features[0]), 1e-30)
        return float(self.compressor.normalize_config(raw))

    def _curve_config(self, features: np.ndarray, acr: float) -> float | None:
        """Nearest training curve, inverted at ``acr``; None if outside."""
        span = self.envelope.span[: features.size]
        best = min(
            self._records,
            key=lambda rec: float(
                np.sum(((rec.features - features) / span) ** 2)
            ),
        )
        lo, hi = best.curve.ratio_range
        lo, hi = min(lo, hi), max(lo, hi)
        if not (lo / (1.0 + _CURVE_SLACK) <= acr <= hi * (1.0 + _CURVE_SLACK)):
            return None
        config = best.curve.config_for_ratio(float(np.clip(acr, lo, hi)))
        query_range = float(features[0])
        train_range = float(best.features[0])
        if (
            self.compressor.config_scale == "log"
            and query_range > 0.0
            and train_range > 0.0
        ):
            # Absolute error bounds scale with the data's amplitude;
            # transfer the curve's bound range-normalized, exactly as
            # the model is trained (see TrainingEngine). A degenerate
            # (zero) range on either side makes the ratio meaningless,
            # so the bound transfers unscaled instead.
            config *= query_range / train_range
        try:
            config = float(self.compressor.normalize_config(config))
        except InvalidConfiguration:
            return None
        return config if _usable(config) else None

    def _fraz_config(self, data: np.ndarray, target_ratio: float):
        # Hand over the already-resolved resources directly: routing
        # them back through the constructor keywords would trip the
        # deprecation shims the caller never used. Returns the full
        # search result — this rung ran the real compressor, so its
        # measured ratio is ground truth worth logging.
        searcher = FRaZ(self.compressor, max_iterations=self.fraz_iterations)
        searcher.ctx = self.ctx
        searcher.executor = self.executor
        searcher.memo = self.memo
        return searcher.search(data, target_ratio)

    # -- public API ------------------------------------------------------------

    def analyze(self, data: np.ndarray) -> GuardedAnalysis:
        """Validate ``data`` and run the target-independent analysis once."""
        with obs.span("guarded.analyze") as span:
            start = time.perf_counter()
            with obs.span("guarded.validate"):
                report = validate_field(data)
            span.set_attribute("issues", len(report.issues))
            features = extract_features(
                report.data, stride=self.config.sampling_stride
            ).selected()
            if self.config.use_adjustment:
                # Named like the plain engine's phase so obs-report
                # aggregates the adjustment cost across both paths.
                with obs.span(
                    "inference.adjustment",
                    block_size=int(self.config.block_size),
                ):
                    nonconstant = nonconstant_fraction(
                        report.data,
                        block_size=self.config.block_size,
                        lam=self.config.lam,
                    )
            else:
                nonconstant = 1.0
            return GuardedAnalysis(
                report=report,
                features=features,
                nonconstant=nonconstant,
                seconds=time.perf_counter() - start,
            )

    def estimate(
        self,
        data: np.ndarray,
        target_ratio: float | None = None,
        analysis: GuardedAnalysis | None = None,
        *,
        dataset_key: str = "",
        objective: Objective | float | str | None = None,
    ) -> Estimate:
        """Guarded version of :meth:`InferenceEngine.estimate`.

        Never returns a NaN/Inf/non-positive configuration: low-
        confidence model answers fall through the ladder, and if every
        permitted rung fails, :class:`FallbackExhaustedError` (or
        :class:`OutOfDistributionError` for ``fallback="none"``) is
        raised instead of a bad number. Quality objectives walk their
        own ladder (analytic prior, then measured probes — see
        ``_QUALITY_LADDERS``).

        ``analysis`` accepts a cached :meth:`analyze` result for
        ``data``, skipping the validation/feature/block passes.
        ``dataset_key`` labels the outcome-log record when this engine
        carries an :class:`~repro.lifecycle.OutcomeLog`. ``objective``
        (an :class:`~repro.core.objective.Objective`, canonical string
        or bare ratio) is mutually exclusive with ``target_ratio``.
        """
        if objective is not None:
            if target_ratio is not None:
                raise InvalidConfiguration(
                    "pass either target_ratio or objective, not both"
                )
            resolved = as_objective(objective)
        else:
            if target_ratio is None:
                raise InvalidConfiguration(
                    "an estimate needs a target_ratio or an objective"
                )
            try:
                target_ratio = float(target_ratio)
            except (TypeError, ValueError) as exc:
                raise InvalidConfiguration(
                    f"target ratio must be a number: {exc}"
                ) from exc
            if not math.isfinite(target_ratio) or target_ratio <= 0:
                raise InvalidConfiguration(
                    "target ratio must be finite and > 0"
                )
            resolved = RatioTarget(target_ratio)

        if isinstance(resolved, RatioTarget):
            span_attrs = {"target_ratio": resolved.tcr}
        else:
            span_attrs = {"objective": resolved.canonical}
        with obs.span("guarded.estimate", **span_attrs) as span:
            try:
                if isinstance(resolved, RatioTarget):
                    estimate, measured_ratio = self._estimate_body(
                        data, resolved.tcr, analysis
                    )
                    measured_psnr = None
                else:
                    estimate, measured_psnr = self._estimate_quality_body(
                        data, resolved, analysis
                    )
                    measured_ratio = None
            except (OutOfDistributionError, FallbackExhaustedError):
                registry = obs.get_registry()
                if registry is not None:
                    registry.counter(
                        "repro_guarded_exhausted_total",
                        "guarded estimates whose ladder exhausted",
                    ).inc()
                raise
            span.set_attributes(
                tier=estimate.tier,
                confidence=estimate.confidence,
                config=estimate.config,
            )
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "repro_guarded_tier_total", "guarded answers by tier"
            ).inc(tier=estimate.tier)
            if estimate.tier != "model":
                registry.counter(
                    "repro_guarded_fallbacks_total",
                    "guarded answers produced by a fallback tier",
                ).inc()
        if self.outcome_log is not None:
            try:
                self.outcome_log.record_estimate(
                    estimate,
                    dataset_key=dataset_key,
                    compressor=self.compressor.name,
                    measured_ratio=measured_ratio,
                    measured_psnr=measured_psnr,
                    source="guarded",
                )
            except OSError:
                pass  # a full disk must not fail the estimate
        return estimate

    def _estimate_quality_body(
        self,
        data: np.ndarray,
        objective: Objective,
        analysis: GuardedAnalysis | None,
    ) -> tuple[Estimate, float | None]:
        """Walk the quality ladder: analytic prior, then measured probes."""
        start = time.perf_counter()
        if analysis is None:
            analysis = self.analyze(data)
        report = analysis.report
        confidence = 0.25 if report.issues else 1.0

        config: float | None = None
        tier = ""
        fallback_reason = ""
        measured: float | None = None
        for rung in _QUALITY_LADDERS[self.fallback]:
            with obs.span(
                "guarded.tier", tier=rung, accepted=False
            ) as rung_span:
                if rung == "analytic":
                    # The closed form is only trustworthy without
                    # measurement when the field is clean and the model
                    # is calibrated (or the quantizer it is exact for).
                    if report.issues:
                        fallback_reason = (
                            "field issues: " + ",".join(report.issues)
                        )
                        continue
                    if not self.quality.trusts(self.compressor):
                        fallback_reason = (
                            f"analytic prior uncalibrated for "
                            f"{self.compressor.name!r}"
                        )
                        continue
                    try:
                        lo, hi = self.compressor.config_domain(report.data)
                        candidate = float(
                            np.clip(
                                self.quality.analytic_config(
                                    report.data, objective
                                ),
                                lo,
                                hi,
                            )
                        )
                    except ReproError as exc:
                        fallback_reason = f"analytic prior failed: {exc}"
                        continue
                    if not _usable(candidate):
                        fallback_reason = (
                            f"analytic prior produced unusable config "
                            f"{candidate!r}"
                        )
                        continue
                    config, tier = candidate, "analytic"
                    rung_span.set_attribute("accepted", True)
                    break
                if rung == "probe":
                    # Terminal rung: measured refinement on the patched
                    # field — the quality analogue of the FRaZ rung.
                    try:
                        result = self.quality.refine(
                            self.compressor,
                            report.data,
                            objective,
                            probes=max(self.quality_probes, 1),
                            ctx=self.ctx,
                        )
                        candidate = float(result.config)
                    except ReproError as exc:
                        fallback_reason += f"; probe refinement failed: {exc}"
                        continue
                    if not _usable(candidate):
                        fallback_reason += (
                            f"; probe refinement produced unusable config "
                            f"{candidate!r}"
                        )
                        continue
                    config, tier = candidate, "probe"
                    measured = result.measured
                    rung_span.set_attribute("accepted", True)
                    break

        if config is None:
            detail = fallback_reason.lstrip("; ") or "no tier produced a config"
            if self.fallback == "none":
                raise OutOfDistributionError(
                    f"analytic tier rejected and fallbacks disabled: {detail}"
                )
            raise FallbackExhaustedError(
                f"quality ladder exhausted ({self.fallback}): {detail}"
            )

        if objective.kind != "psnr":
            # The outcome log's measured-quality column is PSNR-denominated;
            # an SSIM probe measurement would be apples to oranges there.
            measured = None

        estimate = Estimate(
            config=config,
            target_ratio=0.0,
            adjusted_target=0.0,
            nonconstant=analysis.nonconstant,
            features=analysis.features,
            analysis_seconds=time.perf_counter() - start,
            tier=tier,
            confidence=confidence,
            fallback_reason=fallback_reason.lstrip("; "),
            objective=objective,
        )
        return estimate, measured

    def _estimate_body(
        self,
        data: np.ndarray,
        target_ratio: float,
        analysis: GuardedAnalysis | None,
    ) -> tuple[Estimate, float | None]:
        start = time.perf_counter()
        if analysis is None:
            analysis = self.analyze(data)
        report = analysis.report
        features = analysis.features
        nonconstant = analysis.nonconstant
        acr = adjusted_ratio(float(target_ratio), nonconstant)

        with obs.span("guarded.confidence") as conf_span:
            confidence_report = score_confidence(
                self.model, self.envelope, np.concatenate((features, [acr]))
            )
            conf_span.set_attribute("score", confidence_report.score)
        confidence = confidence_report.score
        if report.issues:
            # A patched or degenerate field is evidence the model never
            # saw data like this, independent of where the features land.
            confidence = min(confidence, 0.25)

        reasons: list[str] = []
        if report.issues:
            reasons.append("field issues: " + ",".join(report.issues))
        if confidence_report.envelope_violation > 0.0:
            reasons.append(
                f"outside training envelope by "
                f"{confidence_report.envelope_violation:.2f} spans"
            )
        if not math.isnan(confidence_report.tree_std):
            reasons.append(f"tree spread {confidence_report.tree_std:.3f}")

        config: float | None = None
        tier = ""
        fallback_reason = ""
        measured_ratio: float | None = None
        for rung in _LADDERS[self.fallback]:
            with obs.span(
                "guarded.tier", tier=rung, accepted=False
            ) as rung_span:
                if rung == "model":
                    if confidence < self.min_confidence:
                        fallback_reason = (
                            f"model confidence {confidence:.2f} < "
                            f"{self.min_confidence:.2f} ({'; '.join(reasons)})"
                        )
                        continue
                    try:
                        candidate = self._model_config(features, acr)
                    except InvalidConfiguration as exc:
                        fallback_reason = f"model produced unusable config ({exc})"
                        continue
                    if not _usable(candidate):
                        fallback_reason = (
                            f"model produced unusable config {candidate!r}"
                        )
                        continue
                    config, tier = candidate, "model"
                    rung_span.set_attribute("accepted", True)
                    break
                if rung == "curve":
                    candidate = self._curve_config(features, acr)
                    if candidate is None:
                        fallback_reason += (
                            "; target outside every training curve's range"
                        )
                        continue
                    config, tier = candidate, "curve"
                    rung_span.set_attribute("accepted", True)
                    break
                if rung == "fraz":
                    try:
                        search = self._fraz_config(
                            report.data, float(target_ratio)
                        )
                        candidate = float(search.config)
                    except ReproError as exc:
                        fallback_reason += f"; FRaZ search failed: {exc}"
                        continue
                    if not _usable(candidate):
                        fallback_reason += (
                            f"; FRaZ produced unusable config {candidate!r}"
                        )
                        continue
                    config, tier = candidate, "fraz"
                    measured_ratio = float(search.measured_ratio)
                    rung_span.set_attribute("accepted", True)
                    break

        if config is None:
            detail = fallback_reason.lstrip("; ") or "no tier produced a config"
            if self.fallback == "none":
                raise OutOfDistributionError(
                    f"model tier rejected and fallbacks disabled: {detail}"
                )
            raise FallbackExhaustedError(
                f"degradation ladder exhausted ({self.fallback}): {detail}"
            )

        elapsed = time.perf_counter() - start
        estimate = Estimate(
            config=config,
            target_ratio=float(target_ratio),
            adjusted_target=acr,
            nonconstant=nonconstant,
            features=features,
            analysis_seconds=elapsed,
            tier=tier,
            confidence=confidence,
            fallback_reason=fallback_reason.lstrip("; "),
        )
        return estimate, measured_ratio
