"""Runtime-field validation and sanitization for guarded inference.

Feature extraction silently propagates NaN/Inf (a mean over a
NaN-polluted field is NaN), after which the regression model returns a
NaN error bound that every downstream consumer trusts. The guard here
inspects the field *before* features are computed: hard-invalid inputs
(empty, all-non-finite) are rejected; recoverable pollution (isolated
NaN/Inf values) is patched with finite surrogates so the pipeline can
continue, with the patching recorded so the caller can discount its
confidence in the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class FieldReport:
    """Outcome of validating one runtime field.

    Attributes:
        data: the array guarded inference should operate on — the input
            itself when clean, a patched copy when non-finite values
            were replaced.
        issues: machine-readable issue tags, e.g. ``("nan", "inf")``;
            empty for a clean field.
        nonfinite_fraction: fraction of values that had to be patched.
        constant: True when every (finite) value is identical.
    """

    data: np.ndarray
    issues: tuple[str, ...]
    nonfinite_fraction: float
    constant: bool

    @property
    def clean(self) -> bool:
        return not self.issues


def validate_field(data: np.ndarray, max_nonfinite: float = 0.5) -> FieldReport:
    """Validate ``data`` for inference; patch recoverable pollution.

    Non-finite values are replaced by the median of the finite values
    (NaN) or the finite min/max (-Inf/+Inf), which keeps the field's
    scale statistics meaningful for feature extraction.

    Raises:
        InvalidConfiguration: empty input, non-float-convertible input,
            or more than ``max_nonfinite`` of the values non-finite —
            past that point no patched statistic is trustworthy.
    """
    try:
        array = np.asarray(data, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InvalidConfiguration(f"field is not numeric: {exc}") from exc
    if array.size == 0:
        raise InvalidConfiguration("cannot run inference on an empty field")

    finite = np.isfinite(array)
    n_bad = int(array.size - np.count_nonzero(finite))
    issues: list[str] = []
    if n_bad == array.size:
        raise InvalidConfiguration("field contains no finite values")
    bad_fraction = n_bad / array.size
    if bad_fraction > max_nonfinite:
        raise InvalidConfiguration(
            f"{bad_fraction:.0%} of the field is non-finite "
            f"(limit {max_nonfinite:.0%})"
        )

    patched = array
    if n_bad:
        finite_values = array[finite]
        patched = array.copy()
        nan_mask = np.isnan(array)
        if nan_mask.any():
            issues.append("nan")
            patched[nan_mask] = float(np.median(finite_values))
        pos_inf = np.isposinf(array)
        neg_inf = np.isneginf(array)
        if pos_inf.any() or neg_inf.any():
            issues.append("inf")
            patched[pos_inf] = float(finite_values.max())
            patched[neg_inf] = float(finite_values.min())

    constant = bool(np.ptp(patched) == 0.0)
    if constant:
        issues.append("constant")
    return FieldReport(
        data=patched,
        issues=tuple(issues),
        nonfinite_fraction=bad_fraction,
        constant=constant,
    )
