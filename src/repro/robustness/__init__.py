"""Robustness layer: guarded inference and fault-tolerant dumping.

FXRZ's value proposition is predicting an error bound *without* running
the compressor — which means a bad prediction silently ships a wrong
configuration to every rank of a parallel dump. This package makes that
failure mode loud and recoverable:

* :class:`GuardedInferenceEngine` validates inputs, scores the model's
  confidence (per-tree forest variance + training-feature envelope) and
  walks a degradation ladder — model prediction, training-curve
  interpolation, bounded FRaZ search — recording which tier answered.
* :class:`FaultSpec` / :class:`RetryPolicy` describe seeded,
  deterministic faults (rank failure, stragglers, transient write
  errors) and the retry/backoff discipline used by
  :func:`repro.hpc.iosim.simulate_faulty_dump`.
"""

from repro.robustness.confidence import ConfidenceReport, FeatureEnvelope
from repro.robustness.faults import FaultSpec, RetryPolicy, backoff_schedule
from repro.robustness.guarded import GuardedInferenceEngine
from repro.robustness.validation import FieldReport, validate_field

__all__ = [
    "ConfidenceReport",
    "FeatureEnvelope",
    "FaultSpec",
    "RetryPolicy",
    "backoff_schedule",
    "GuardedInferenceEngine",
    "FieldReport",
    "validate_field",
]
