"""Fault and retry specifications for the parallel-dump simulator.

Everything here is deterministic under a seed: each rank derives its own
:func:`numpy.random.default_rng` stream from ``(seed, rank)``, so a
4,096-rank scenario reproduces bit-for-bit regardless of evaluation
order, and the backoff jitter is part of that same stream.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class FaultSpec:
    """Seeded, injectable faults for one dump scenario.

    Attributes:
        seed: master seed; rank ``r`` uses stream ``(seed, r)``.
        rank_failure_prob: per-attempt probability that a rank dies
            mid-work (node crash); it restarts from its checkpoint.
        straggler_prob: probability a rank is a straggler for the whole
            dump (slow node, contended link).
        straggler_slowdown: work-time multiplier for straggler ranks.
        write_error_prob: per-attempt probability the final write fails
            transiently (I/O error on the shared filesystem); computed
            data survives, the write is redone.
        checkpoint_fraction: fraction of the progress made before a
            rank failure that the checkpoint preserves (0 = restart
            from scratch, 1 = perfect checkpointing).
        worker_crash_prob: serving fault — per-request probability the
            shard process exits abruptly mid-request (node OOM-kill,
            segfault). The supervisor detects the death, respawns the
            shard and redistributes its in-flight requests.
        worker_hang_prob: serving fault — per-request probability the
            shard wedges (sleeps ``hang_seconds``) instead of replying;
            exercised against the supervisor's hang detection.
        slow_reply_prob: serving fault — per-request probability the
            shard delays its reply by ``slow_reply_seconds`` (straggler
            shard, contended node).
        slow_reply_seconds: the injected straggler delay.
        hang_seconds: how long an injected hang sleeps (long enough
            that the supervisor must kill the shard, short enough that
            an undetected hang still ends a test run).
        poison_request_prob: serving fault — probability that a given
            *request* is poison, keyed on its request id: a poison
            request crashes **every** shard it is delivered to, so only
            a redelivery cap plus degradation-ladder fallback can
            complete it.
    """

    seed: int = 0
    rank_failure_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0
    write_error_prob: float = 0.0
    checkpoint_fraction: float = 0.5
    worker_crash_prob: float = 0.0
    worker_hang_prob: float = 0.0
    slow_reply_prob: float = 0.0
    slow_reply_seconds: float = 0.05
    hang_seconds: float = 60.0
    poison_request_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "rank_failure_prob",
            "straggler_prob",
            "write_error_prob",
            "worker_crash_prob",
            "worker_hang_prob",
            "slow_reply_prob",
            "poison_request_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise InvalidConfiguration(f"{name} must be in [0, 1)")
        if self.slow_reply_seconds < 0.0:
            raise InvalidConfiguration("slow_reply_seconds must be >= 0")
        if self.hang_seconds <= 0.0:
            raise InvalidConfiguration("hang_seconds must be > 0")
        if self.rank_failure_prob + self.write_error_prob >= 1.0:
            raise InvalidConfiguration(
                "rank_failure_prob + write_error_prob must be < 1"
            )
        if self.straggler_slowdown < 1.0:
            raise InvalidConfiguration("straggler_slowdown must be >= 1")
        if not 0.0 <= self.checkpoint_fraction <= 1.0:
            raise InvalidConfiguration("checkpoint_fraction must be in [0, 1]")

    def rank_rng(self, rank: int) -> np.random.Generator:
        """The deterministic random stream owned by ``rank``."""
        return np.random.default_rng([self.seed & 0x7FFFFFFF, rank])

    @property
    def has_serving_faults(self) -> bool:
        """Whether any serving-side fault is enabled."""
        return any(
            (
                self.worker_crash_prob,
                self.worker_hang_prob,
                self.slow_reply_prob,
                self.poison_request_prob,
            )
        )

    def serving_rng(self, shard: int, generation: int = 0) -> np.random.Generator:
        """The fault stream of one shard *incarnation*.

        Folding the respawn generation into the key keeps a respawned
        shard from replaying the exact draws that just killed it —
        otherwise a crash-prone seed would loop the same shard to
        death forever.
        """
        return np.random.default_rng(
            [self.seed & 0x7FFFFFFF, 0x5EED + shard, generation]
        )

    def is_poison(self, request_id: str) -> bool:
        """Whether ``request_id`` names a poison request.

        Keyed on the request id (not the shard stream) so the same
        request is poison on *every* shard it is redelivered to — the
        defining property of a poison message.
        """
        if self.poison_request_prob <= 0.0:
            return False
        rng = np.random.default_rng(
            [self.seed & 0x7FFFFFFF, zlib.crc32(request_id.encode("utf-8"))]
        )
        return bool(rng.uniform() < self.poison_request_prob)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a per-rank attempt budget.

    Attributes:
        max_attempts: total attempts a rank may spend (1 = no retries).
        base_delay: seconds before the first retry.
        backoff: multiplicative factor between consecutive delays.
        max_delay: ceiling on a single delay.
        jitter: fractional +/- jitter applied to each delay (drawn from
            the rank's seeded stream, so schedules stay deterministic).
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidConfiguration("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidConfiguration("delays must be >= 0")
        if self.backoff < 1.0:
            raise InvalidConfiguration("backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise InvalidConfiguration("jitter must be in [0, 1)")


#: A policy that disables retries entirely: the first fault is final.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


def backoff_schedule(
    policy: RetryPolicy,
    n_delays: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The first ``n_delays`` retry delays (seconds) under ``policy``.

    Deterministic for a given generator state: delay ``i`` is
    ``min(base * backoff**i, max_delay)`` scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn sequentially from ``rng``.
    """
    if n_delays < 0:
        raise InvalidConfiguration("n_delays must be >= 0")
    exponents = np.arange(n_delays, dtype=np.float64)
    delays = np.minimum(
        policy.base_delay * policy.backoff**exponents, policy.max_delay
    )
    if policy.jitter > 0.0 and rng is not None and n_delays:
        delays = delays * (1.0 + policy.jitter * rng.uniform(-1.0, 1.0, n_delays))
    return delays
