"""Confidence scoring for model-tier predictions.

Two independent signals, multiplied into one score in [0, 1]:

* **Ensemble spread** — the per-tree variance of the random forest.
  Trees that agree have all seen the queried region during training;
  trees that disagree are extrapolating ("Black-Box Statistical
  Prediction of Lossy Compression Ratios", Underwood et al., 2023,
  motivates attaching exactly this kind of signal to ratio predictions).
* **Feature envelope** — an axis-aligned bounding box over the training
  rows (five features + adjusted ratio). Queries outside the box force
  the forest to extrapolate past its leaves, where its piecewise-
  constant answer is frozen at the boundary value.

Both signals degrade smoothly (exponentials of a normalized violation)
rather than flipping a hard bit, so callers can pick their own
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration

#: Ensemble spread (in model-target units) that halves the spread score.
_SPREAD_SCALE = 0.5


@dataclass(frozen=True)
class ConfidenceReport:
    """Breakdown of one confidence evaluation.

    Attributes:
        score: combined confidence in [0, 1].
        spread_score: per-tree agreement component.
        envelope_score: in-distribution component.
        tree_std: raw standard deviation of the per-tree predictions
            (NaN when the model exposes no ensemble).
        envelope_violation: worst per-dimension distance outside the
            training envelope, in units of that dimension's span
            (0 when inside).
    """

    score: float
    spread_score: float
    envelope_score: float
    tree_std: float
    envelope_violation: float


class FeatureEnvelope:
    """Axis-aligned training-feature envelope with a soft margin.

    Args:
        rows: training input rows, shape ``(n, d)``.
        margin: fractional span expansion on each side; queries within
            the margin are still considered in-distribution.
    """

    def __init__(self, rows: np.ndarray, margin: float = 0.05) -> None:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] < 1:
            raise InvalidConfiguration("envelope needs a (n, d) row matrix")
        if margin < 0:
            raise InvalidConfiguration("margin must be >= 0")
        lo = rows.min(axis=0)
        hi = rows.max(axis=0)
        # Degenerate dimensions (a single training dataset) get a span
        # floor proportional to their magnitude so any nearby query
        # still counts as inside.
        span = np.maximum(hi - lo, 1e-9 * np.maximum(np.abs(lo), 1.0))
        self.lo = lo - margin * span
        self.hi = hi + margin * span
        self.span = span

    def violation(self, row: np.ndarray) -> float:
        """Worst per-dimension overshoot, in span units (0 = inside)."""
        row = np.asarray(row, dtype=np.float64).ravel()
        if row.size != self.lo.size:
            raise InvalidConfiguration(
                f"query has {row.size} dims, envelope has {self.lo.size}"
            )
        below = (self.lo - row) / self.span
        above = (row - self.hi) / self.span
        worst = float(np.max(np.maximum(below, above)))
        return max(worst, 0.0)

    def contains(self, row: np.ndarray) -> bool:
        return self.violation(row) == 0.0


def ensemble_spread(model, row: np.ndarray) -> float:
    """Std of the per-tree predictions; NaN when there is no ensemble."""
    estimators = getattr(model, "estimators_", None)
    if not estimators:
        return float("nan")
    row = np.atleast_2d(np.asarray(row, dtype=np.float64))
    preds = np.array([float(tree.predict(row)[0]) for tree in estimators])
    return float(preds.std())


def score_confidence(
    model,
    envelope: FeatureEnvelope,
    row: np.ndarray,
    spread_scale: float = _SPREAD_SCALE,
) -> ConfidenceReport:
    """Combine ensemble spread and envelope distance into one score."""
    std = ensemble_spread(model, row)
    if np.isnan(std):
        # No ensemble to interrogate: stay neutral and let the envelope
        # (and the caller's validation) carry the decision.
        spread_score = 1.0
    else:
        spread_score = float(np.exp(-std / spread_scale * np.log(2.0)))
    violation = envelope.violation(row)
    envelope_score = float(np.exp(-4.0 * violation))
    return ConfidenceReport(
        score=spread_score * envelope_score,
        spread_score=spread_score,
        envelope_score=envelope_score,
        tree_std=std,
        envelope_violation=violation,
    )
