"""Compressibility Adjustment — CA (paper Sec. IV-E2, Fig. 6-7).

Smooth (near-constant) regions compress to almost nothing and distort
the relationship between global statistics and achievable ratio. CA
splits the grid into small cubic blocks, classifies each block as
*constant* when its value range falls below ``lambda * |mean value|``
(Table IV: lambda = 0.15 is optimal), and rescales the user's target
ratio by the non-constant fraction R:

    ACR = TCR * R        (Formula 4)
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_BLOCK_SIZE, DEFAULT_LAMBDA
from repro.errors import InvalidConfiguration


def _block_ranges(data: np.ndarray, block_size: int) -> np.ndarray:
    """Per-block value range; trailing partial blocks are edge-padded."""
    pad = [(0, (-n) % block_size) for n in data.shape]
    if any(p[1] for p in pad):
        data = np.pad(data, pad, mode="edge")
    split = []
    for n in data.shape:
        split.extend((n // block_size, block_size))
    ndim = data.ndim
    work = data.reshape(split)
    perm = [2 * i for i in range(ndim)] + [2 * i + 1 for i in range(ndim)]
    work = work.transpose(perm)
    grid = work.shape[:ndim]
    flat = work.reshape(int(np.prod(grid)), -1)
    return (flat.max(axis=1) - flat.min(axis=1)).reshape(grid)


def constant_block_mask(
    data: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    lam: float = DEFAULT_LAMBDA,
) -> np.ndarray:
    """Boolean block grid: True where a block is constant (Fig. 6)."""
    if block_size < 2:
        raise InvalidConfiguration("block_size must be >= 2")
    if not 0.0 < lam < 1.0:
        raise InvalidConfiguration("lam must be in (0, 1)")
    data = np.asarray(data, dtype=np.float64)
    threshold = lam * abs(float(data.mean()))
    ranges = _block_ranges(data, block_size)
    return ranges <= threshold


def nonconstant_fraction(
    data: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    lam: float = DEFAULT_LAMBDA,
) -> float:
    """R: fraction of non-constant blocks in the dataset."""
    mask = constant_block_mask(data, block_size=block_size, lam=lam)
    return float(1.0 - mask.mean())


def adjusted_ratio(target_ratio: float, nonconstant: float) -> float:
    """Formula (4): ACR = TCR * R, floored to stay a valid ratio.

    A small-but-positive R legitimately clamps the adjusted target to
    the 1.0 floor (an almost-constant dataset still carries *some*
    information). R exactly 0 means every block is constant: any error
    bound reproduces the field and ACR = 0 is not a ratio the model was
    ever trained on, so the degenerate query is rejected outright.
    """
    if target_ratio <= 0:
        raise InvalidConfiguration("target ratio must be > 0")
    if not 0.0 <= nonconstant <= 1.0:
        raise InvalidConfiguration("nonconstant fraction must be in [0, 1]")
    if nonconstant == 0.0:
        raise InvalidConfiguration(
            "dataset is entirely constant (non-constant block fraction "
            "R = 0): the adjusted target ACR = TCR * R degenerates to 0, "
            "which no trained model can answer; compress the field with "
            "any error bound instead of estimating one"
        )
    return max(target_ratio * nonconstant, 1.0)
