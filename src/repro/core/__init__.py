"""FXRZ — the paper's primary contribution.

Feature-driven fixed-ratio lossy compression: extract cheap statistical
features, learn the (features, target ratio) -> error configuration
mapping from interpolation-augmented compression results, and at
runtime pick the error bound for a user's target compression ratio
without ever running the compressor.
"""

from repro.core.features import (
    FEATURE_NAMES,
    SELECTED_FEATURES,
    FeatureVector,
    extract_features,
    uniform_sample,
)
from repro.core.augmentation import CompressionCurve, build_curve
from repro.core.adjustment import (
    adjusted_ratio,
    constant_block_mask,
    nonconstant_fraction,
)
from repro.core.training import TrainingEngine, TrainingReport
from repro.core.inference import InferenceEngine, Estimate
from repro.core.objective import (
    FrontierPoint,
    Objective,
    ParetoFrontier,
    PSNRTarget,
    QualityModel,
    RatioTarget,
    SSIMTarget,
    as_objective,
    parse_objective,
)
from repro.core.pipeline import FXRZ, FixedRatioResult
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.tiling import TiledFixedRatio, TiledResult, tile_grid

__all__ = [
    "FEATURE_NAMES",
    "SELECTED_FEATURES",
    "FeatureVector",
    "extract_features",
    "uniform_sample",
    "CompressionCurve",
    "build_curve",
    "nonconstant_fraction",
    "constant_block_mask",
    "adjusted_ratio",
    "TrainingEngine",
    "TrainingReport",
    "InferenceEngine",
    "Estimate",
    "Objective",
    "RatioTarget",
    "PSNRTarget",
    "SSIMTarget",
    "QualityModel",
    "FrontierPoint",
    "ParetoFrontier",
    "as_objective",
    "parse_objective",
    "FXRZ",
    "FixedRatioResult",
    "save_pipeline",
    "load_pipeline",
    "TiledFixedRatio",
    "TiledResult",
    "tile_grid",
]
