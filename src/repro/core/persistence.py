"""Save/load trained FXRZ pipelines.

The paper's deployment story (Sec. III-A) is "the training triggered by
one user is expected to benefit many other users in the similar
domain" — which requires shipping a trained model as a file. This
module serializes a fitted :class:`~repro.core.pipeline.FXRZ` —
forest structure, training curves, configuration — into a single
``.npz`` archive and restores it without retraining.

Only the default random-forest model is supported (custom
``model_factory`` models would need their own codecs); that is the
model FXRZ adopts, and the one the registry trains.
"""

from __future__ import annotations

import hashlib
import io
import json
import pathlib
import zipfile
import zlib

import numpy as np

from repro.compressors import available_compressors, get_compressor
from repro.config import FXRZConfig
from repro.core.augmentation import CompressionCurve
from repro.core.inference import InferenceEngine
from repro.core.pipeline import FXRZ
from repro.core.training import _DatasetRecord
from repro.errors import (
    CompressionError,
    CorruptStreamError,
    InvalidConfiguration,
    NotFittedError,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

_FORMAT_VERSION = 1

#: Framed container: magic + container version + payload length + CRC32,
#: then the compressed npz payload. The frame catches truncation and
#: bit flips *before* any bytes reach the zip/npz machinery, whose own
#: failure modes (BadZipFile, struct.error) are not ReproErrors.
_MAGIC = b"FXRZPIPE"
_CONTAINER_VERSION = 1
_HEADER_LEN = len(_MAGIC) + 2 + 8 + 4


def _tree_to_arrays(tree: DecisionTreeRegressor) -> dict[str, np.ndarray]:
    if tree._nodes is None:
        raise NotFittedError("cannot serialize an unfitted tree")
    return dict(tree._nodes)


def _tree_from_arrays(arrays: dict[str, np.ndarray]) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree._nodes = {
        key: np.asarray(arrays[key])
        for key in ("feature", "threshold", "left", "right", "value")
    }
    return tree


def pipeline_fingerprint(pipeline: FXRZ) -> str:
    """Content fingerprint of a fitted pipeline's training corpus.

    Hashes what the model was *trained from* — per-record features,
    non-constant fractions and anchored curves, plus the compressor name
    and framework configuration — so two pipelines fitted on the same
    corpus with the same knobs share a fingerprint while any corpus or
    configuration change produces a new one. The model registry uses
    this as its on-disk key.
    """
    if not pipeline.is_fitted:
        raise NotFittedError("fingerprint needs a fitted pipeline")
    digest = hashlib.blake2b(digest_size=8)
    config = pipeline.config
    digest.update(
        json.dumps(
            {
                "compressor": pipeline.compressor.name,
                "sampling_stride": config.sampling_stride,
                "block_size": config.block_size,
                "lam": config.lam,
                "stationary_points": config.stationary_points,
                "augmented_samples": config.augmented_samples,
                "use_adjustment": config.use_adjustment,
                "seed": config.seed,
            },
            sort_keys=True,
        ).encode("utf-8")
    )
    for record in pipeline._training.records:
        for array in (
            record.features,
            np.array([record.nonconstant]),
            record.curve.configs,
            record.curve.ratios,
        ):
            digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
    return digest.hexdigest()


def save_pipeline(pipeline: FXRZ, path: str | pathlib.Path) -> None:
    """Serialize a fitted pipeline to ``path`` (.npz archive)."""
    if not pipeline.is_fitted:
        raise NotFittedError("fit the pipeline before saving")
    model = pipeline.model
    if not isinstance(model, RandomForestRegressor):
        raise InvalidConfiguration(
            "only the default RandomForestRegressor model can be saved"
        )

    config = pipeline.config
    # Constructor options a compressor may carry (zfp's mode, sz's
    # interpolation/entropy); persisted so the reloaded pipeline codes
    # exactly like the trained one.
    options = {
        key: getattr(pipeline.compressor, key)
        for key in ("mode", "interpolation", "entropy")
        if hasattr(pipeline.compressor, key)
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "compressor": pipeline.compressor.name,
        "compressor_options": options,
        "config": {
            "sampling_stride": config.sampling_stride,
            "block_size": config.block_size,
            "lam": config.lam,
            "stationary_points": config.stationary_points,
            "augmented_samples": config.augmented_samples,
            "use_adjustment": config.use_adjustment,
            "seed": config.seed,
        },
        "n_trees": len(model.estimators_),
        "n_records": len(pipeline._training.records),
    }

    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    }
    for i, tree in enumerate(model.estimators_):
        for key, value in _tree_to_arrays(tree).items():
            arrays[f"tree{i}_{key}"] = value
    for i, record in enumerate(pipeline._training.records):
        arrays[f"rec{i}_features"] = record.features
        arrays[f"rec{i}_nonconstant"] = np.array([record.nonconstant])
        arrays[f"rec{i}_configs"] = record.curve.configs
        arrays[f"rec{i}_ratios"] = record.curve.ratios
        arrays[f"rec{i}_logflag"] = np.array([int(record.curve.log_config)])

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    payload = buffer.getvalue()
    frame = (
        _MAGIC
        + _CONTAINER_VERSION.to_bytes(2, "little")
        + len(payload).to_bytes(8, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
    )
    pathlib.Path(path).write_bytes(frame + payload)


def _read_payload(raw: bytes, path: pathlib.Path) -> bytes:
    """Verify the container frame; returns the npz payload bytes.

    Archives written before the frame existed are bare npz files (zip
    magic ``PK``) and pass through unchanged.
    """
    if raw[:2] == b"PK":  # legacy bare-npz archive
        return raw
    if raw[: len(_MAGIC)] != _MAGIC:
        if len(raw) < len(_MAGIC) and _MAGIC.startswith(raw):
            # A prefix of the magic is a truncated archive, not a
            # foreign file — every truncation point must raise
            # CorruptStreamError, never misreport the file's type.
            raise CorruptStreamError(f"{path}: truncated archive header")
        raise InvalidConfiguration(f"{path} is not an FXRZ pipeline archive")
    if len(raw) < _HEADER_LEN:
        raise CorruptStreamError(f"{path}: truncated archive header")
    offset = len(_MAGIC)
    container_version = int.from_bytes(raw[offset : offset + 2], "little")
    if container_version > _CONTAINER_VERSION:
        raise InvalidConfiguration(
            f"{path} was written by a newer repro (container version "
            f"{container_version} > {_CONTAINER_VERSION}); upgrade to load it"
        )
    offset += 2
    length = int.from_bytes(raw[offset : offset + 8], "little")
    offset += 8
    crc = int.from_bytes(raw[offset : offset + 4], "little")
    payload = raw[_HEADER_LEN:]
    if len(payload) != length:
        raise CorruptStreamError(
            f"{path}: archive truncated ({len(payload)} of {length} "
            "payload bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise CorruptStreamError(f"{path}: archive checksum mismatch")
    return payload


def load_pipeline(path: str | pathlib.Path) -> FXRZ:
    """Restore a pipeline saved by :func:`save_pipeline`.

    Raises:
        CorruptStreamError: the archive is truncated or bit-flipped
            (checksum/length mismatch, undecodable npz payload).
        InvalidConfiguration: the file is not an FXRZ archive, was
            written by a newer format version, or names an unknown
            compressor.
    """
    path = pathlib.Path(path)
    payload = _read_payload(path.read_bytes(), path)
    try:
        with np.load(io.BytesIO(payload)) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise CorruptStreamError(
            f"{path}: archive payload is undecodable: {exc}"
        ) from exc

    try:
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise InvalidConfiguration(f"not an FXRZ pipeline archive: {exc}") from exc
    if not isinstance(meta, dict):
        raise InvalidConfiguration("archive metadata is not a mapping")
    version = meta.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise InvalidConfiguration(
            f"unsupported pipeline format {version!r}"
        )
    if version > _FORMAT_VERSION:
        raise InvalidConfiguration(
            f"archive format {version} is newer than this library's "
            f"{_FORMAT_VERSION}; upgrade repro to load it"
        )

    kwargs = dict(meta.get("compressor_options") or {})
    if meta.get("compressor_mode"):  # archives written before options
        kwargs["mode"] = meta["compressor_mode"]
    name = meta.get("compressor")
    try:
        compressor = get_compressor(name, **kwargs)
    except (CompressionError, TypeError) as exc:
        raise InvalidConfiguration(
            f"archive names unknown or unloadable compressor {name!r} "
            f"(available: {', '.join(available_compressors())}): {exc}"
        ) from exc
    try:
        config = FXRZConfig(**meta["config"])
    except (TypeError, ValueError, KeyError) as exc:
        raise InvalidConfiguration(
            f"archive carries an invalid FXRZ configuration: {exc}"
        ) from exc
    pipeline = FXRZ(compressor, config=config)

    try:
        n_trees = int(meta["n_trees"])
        n_records = int(meta["n_records"])
        if n_trees < 1 or n_records < 1:
            raise InvalidConfiguration(
                "archive must carry at least one tree and one record"
            )
        forest = RandomForestRegressor(n_estimators=n_trees)
        forest._trees = [
            _tree_from_arrays(
                {
                    key: arrays[f"tree{i}_{key}"]
                    for key in ("feature", "threshold", "left", "right", "value")
                }
            )
            for i in range(n_trees)
        ]

        records = []
        for i in range(n_records):
            curve = CompressionCurve(
                configs=arrays[f"rec{i}_configs"],
                ratios=arrays[f"rec{i}_ratios"],
                log_config=bool(arrays[f"rec{i}_logflag"][0]),
                build_seconds=0.0,
            )
            records.append(
                _DatasetRecord(
                    features=arrays[f"rec{i}_features"],
                    nonconstant=float(arrays[f"rec{i}_nonconstant"][0]),
                    curve=curve,
                )
            )
    except KeyError as exc:
        raise CorruptStreamError(
            f"archive is missing array {exc.args[0]!r}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise CorruptStreamError(f"archive arrays are malformed: {exc}") from exc

    pipeline._training.records = records
    pipeline._training._model = forest
    pipeline._inference = InferenceEngine(forest, compressor, config=config)
    return pipeline
