"""Save/load trained FXRZ pipelines.

The paper's deployment story (Sec. III-A) is "the training triggered by
one user is expected to benefit many other users in the similar
domain" — which requires shipping a trained model as a file. This
module serializes a fitted :class:`~repro.core.pipeline.FXRZ` —
forest structure, training curves, configuration — into a single
``.npz`` archive and restores it without retraining.

Only the default random-forest model is supported (custom
``model_factory`` models would need their own codecs); that is the
model FXRZ adopts, and the one the registry trains.
"""

from __future__ import annotations

import io
import json
import pathlib

import numpy as np

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.augmentation import CompressionCurve
from repro.core.inference import InferenceEngine
from repro.core.pipeline import FXRZ
from repro.core.training import _DatasetRecord
from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

_FORMAT_VERSION = 1


def _tree_to_arrays(tree: DecisionTreeRegressor) -> dict[str, np.ndarray]:
    if tree._nodes is None:
        raise NotFittedError("cannot serialize an unfitted tree")
    return dict(tree._nodes)


def _tree_from_arrays(arrays: dict[str, np.ndarray]) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree._nodes = {
        key: np.asarray(arrays[key])
        for key in ("feature", "threshold", "left", "right", "value")
    }
    return tree


def save_pipeline(pipeline: FXRZ, path: str | pathlib.Path) -> None:
    """Serialize a fitted pipeline to ``path`` (.npz archive)."""
    if not pipeline.is_fitted:
        raise NotFittedError("fit the pipeline before saving")
    model = pipeline.model
    if not isinstance(model, RandomForestRegressor):
        raise InvalidConfiguration(
            "only the default RandomForestRegressor model can be saved"
        )

    config = pipeline.config
    # Constructor options a compressor may carry (zfp's mode, sz's
    # interpolation/entropy); persisted so the reloaded pipeline codes
    # exactly like the trained one.
    options = {
        key: getattr(pipeline.compressor, key)
        for key in ("mode", "interpolation", "entropy")
        if hasattr(pipeline.compressor, key)
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "compressor": pipeline.compressor.name,
        "compressor_options": options,
        "config": {
            "sampling_stride": config.sampling_stride,
            "block_size": config.block_size,
            "lam": config.lam,
            "stationary_points": config.stationary_points,
            "augmented_samples": config.augmented_samples,
            "use_adjustment": config.use_adjustment,
            "seed": config.seed,
        },
        "n_trees": len(model.estimators_),
        "n_records": len(pipeline._training.records),
    }

    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    }
    for i, tree in enumerate(model.estimators_):
        for key, value in _tree_to_arrays(tree).items():
            arrays[f"tree{i}_{key}"] = value
    for i, record in enumerate(pipeline._training.records):
        arrays[f"rec{i}_features"] = record.features
        arrays[f"rec{i}_nonconstant"] = np.array([record.nonconstant])
        arrays[f"rec{i}_configs"] = record.curve.configs
        arrays[f"rec{i}_ratios"] = record.curve.ratios
        arrays[f"rec{i}_logflag"] = np.array([int(record.curve.log_config)])

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    pathlib.Path(path).write_bytes(buffer.getvalue())


def load_pipeline(path: str | pathlib.Path) -> FXRZ:
    """Restore a pipeline saved by :func:`save_pipeline`."""
    with np.load(pathlib.Path(path)) as archive:
        arrays = {key: archive[key] for key in archive.files}

    try:
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise InvalidConfiguration(f"not an FXRZ pipeline archive: {exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise InvalidConfiguration(
            f"unsupported pipeline format {meta.get('format_version')!r}"
        )

    kwargs = dict(meta.get("compressor_options") or {})
    if meta.get("compressor_mode"):  # archives written before options
        kwargs["mode"] = meta["compressor_mode"]
    compressor = get_compressor(meta["compressor"], **kwargs)
    config = FXRZConfig(**meta["config"])
    pipeline = FXRZ(compressor, config=config)

    forest = RandomForestRegressor(n_estimators=meta["n_trees"])
    forest._trees = [
        _tree_from_arrays(
            {
                key: arrays[f"tree{i}_{key}"]
                for key in ("feature", "threshold", "left", "right", "value")
            }
        )
        for i in range(meta["n_trees"])
    ]

    records = []
    for i in range(meta["n_records"]):
        curve = CompressionCurve(
            configs=arrays[f"rec{i}_configs"],
            ratios=arrays[f"rec{i}_ratios"],
            log_config=bool(arrays[f"rec{i}_logflag"][0]),
            build_seconds=0.0,
        )
        records.append(
            _DatasetRecord(
                features=arrays[f"rec{i}_features"],
                nonconstant=float(arrays[f"rec{i}_nonconstant"][0]),
                curve=curve,
            )
        )

    pipeline._training.records = records
    pipeline._training._model = forest
    pipeline._inference = InferenceEngine(forest, compressor, config=config)
    return pipeline
