"""FXRZ training engine (paper Fig. 1, steps 1-8).

For every training dataset the engine:

1. extracts the five adopted features on a stride-K subsample,
2. measures the non-constant block fraction R,
3. anchors a compression curve at ~25 stationary error configurations
   (the only compressor runs in the whole framework),
4. augments the curve into hundreds of (adjusted ratio, config) pairs,

then fits the regression model on rows
``[value_range, mean_value, MND, MLD, MSD, ACR] -> config`` (log-space
config for absolute-error compressors). The per-phase timing breakdown
feeds Table VI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compressors.base import Compressor
from repro.config import FXRZConfig
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.augmentation import CompressionCurve, build_curve
from repro.core.features import extract_features
from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.runtime.compat import UNSET, legacy, legacy_context


@dataclass
class TrainingReport:
    """Timing/size breakdown of one training run (Table VI)."""

    n_datasets: int = 0
    n_samples: int = 0
    stationary_seconds: float = 0.0
    augmentation_seconds: float = 0.0
    fit_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.stationary_seconds + self.augmentation_seconds + self.fit_seconds


@dataclass
class _DatasetRecord:
    """Cached per-dataset artifacts."""

    features: np.ndarray
    nonconstant: float
    curve: CompressionCurve


def default_model_factory(seed: int):
    """The model FXRZ adopts: a random forest regressor (Sec. IV-D)."""
    return RandomForestRegressor(
        n_estimators=40,
        max_depth=None,
        min_samples_leaf=2,
        max_features=None,
        random_state=seed,
    )


class TrainingEngine:
    """Accumulates training datasets and fits the error-config model.

    Args:
        compressor: the error-controlled compressor being modeled.
        config: framework knobs.
        model_factory: ``seed -> model`` override.
        ctx: a :class:`~repro.runtime.RuntimeContext`; supplies the
            sweep executor, the shared compression memo and the forest
            worker count.
        n_jobs: deprecated — pass ``ctx=RuntimeContext(jobs=...)``.
        executor: deprecated — pass a context whose config builds one.
        memo: deprecated — contexts share their memo automatically.
    """

    def __init__(
        self,
        compressor: Compressor,
        config: FXRZConfig | None = None,
        model_factory=None,
        n_jobs=UNSET,
        executor=UNSET,
        memo=UNSET,
        *,
        ctx=None,
    ) -> None:
        self.compressor = compressor
        self.config = config or FXRZConfig()
        self.model_factory = model_factory or default_model_factory
        ctx = legacy_context(
            ctx,
            n_jobs=legacy("TrainingEngine", "n_jobs", n_jobs),
            executor=legacy("TrainingEngine", "executor", executor),
            memo=legacy("TrainingEngine", "memo", memo),
        )
        self.ctx = ctx
        self.executor = ctx.executor if ctx is not None else None
        self.memo = ctx.memo if ctx is not None else None
        self.n_jobs = ctx.config.jobs if ctx is not None else None
        self.records: list[_DatasetRecord] = []
        self.report = TrainingReport()
        self._model = None

    def add_dataset(
        self,
        data: np.ndarray,
        domain: tuple[float, float] | None = None,
    ) -> CompressionCurve:
        """Ingest one training dataset; returns its anchored curve."""
        features = extract_features(
            data, stride=self.config.sampling_stride
        ).selected()
        nonconstant = (
            nonconstant_fraction(
                data, block_size=self.config.block_size, lam=self.config.lam
            )
            if self.config.use_adjustment
            else 1.0
        )
        curve = build_curve(
            self.compressor,
            data,
            n_points=self.config.stationary_points,
            domain=domain,
            ctx=self.ctx,
        )
        self.records.append(
            _DatasetRecord(features=features, nonconstant=nonconstant, curve=curve)
        )
        self.report.n_datasets += 1
        self.report.stationary_seconds += curve.build_seconds
        return curve

    def build_training_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Augment every curve into the model's (X, y) matrix."""
        if not self.records:
            raise InvalidConfiguration("no training datasets added")
        start = time.perf_counter()
        rows: list[np.ndarray] = []
        targets: list[float] = []
        log_target = self.compressor.config_scale == "log"
        for i, record in enumerate(self.records):
            ratios, configs = record.curve.sample(
                self.config.augmented_samples, seed=self.config.seed + i
            )
            # Absolute error bounds scale with the data's amplitude;
            # regressing the *range-normalized* bound lets one model
            # serve datasets whose value ranges differ by decades
            # (cross-scope training, Fig. 14).
            scale = max(float(record.features[0]), 1e-30)
            for ratio, cfg in zip(ratios, configs):
                acr = adjusted_ratio(float(ratio), record.nonconstant)
                rows.append(np.concatenate((record.features, [acr])))
                targets.append(np.log10(cfg / scale) if log_target else cfg)
        self.report.augmentation_seconds += time.perf_counter() - start
        x = np.vstack(rows)
        y = np.array(targets)
        self.report.n_samples = y.size
        return x, y

    def fit(self):
        """Train the regression model; returns it."""
        x, y = self.build_training_matrix()
        start = time.perf_counter()
        model = self.model_factory(self.config.seed)
        if self.n_jobs is not None and hasattr(model, "n_jobs"):
            # Seeds are drawn serially inside the forest, so the fitted
            # model is bit-identical at any worker count.
            model.n_jobs = self.n_jobs
        model.fit(x, y)
        self.report.fit_seconds += time.perf_counter() - start
        self._model = model
        return model

    @property
    def model(self):
        if self._model is None:
            raise NotFittedError("TrainingEngine.fit has not been called")
        return self._model
