"""The FXRZ facade: train once, fix ratios forever.

Typical use::

    from repro import FXRZ
    from repro.compressors import get_compressor

    fxrz = FXRZ(get_compressor("sz"))
    fxrz.fit(training_arrays)                  # runs the compressor ~25x/dataset
    result = fxrz.compress_to_ratio(new_data, target_ratio=80.0)
    print(result.measured_ratio, result.estimation_error)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.base import CompressedBlob, Compressor
from repro.config import FXRZConfig
from repro.core.inference import Estimate, InferenceEngine
from repro.core.training import TrainingEngine, TrainingReport
from repro.errors import InvalidConfiguration, NotFittedError
from repro.runtime.compat import UNSET, legacy, legacy_context


@dataclass(frozen=True)
class FixedRatioResult:
    """Outcome of a fixed-ratio compression request.

    Attributes:
        blob: the compressed payload at the estimated configuration.
        estimate: the inference record (config, ACR, timing, ...).
        measured_ratio: MCR actually achieved.
        compressions: compressor runs spent (1 + refinements used).
        measured_psnr: achieved PSNR in dB, measured by decompressing
            (quality-objective results only; ``None`` on ratio paths,
            which never decompress).
        estimation_error: Formula (5), |TCR - MCR| / TCR (``nan`` for
            quality objectives, which have no TCR).
    """

    blob: CompressedBlob
    estimate: Estimate
    measured_ratio: float
    compressions: int = 1
    measured_psnr: float | None = None

    @property
    def estimation_error(self) -> float:
        if self.estimate.target_ratio <= 0:
            # Quality-objective results have no TCR; Formula (5) is
            # undefined for them (the miss lives in measured_psnr).
            return float("nan")
        return abs(self.estimate.target_ratio - self.measured_ratio) / (
            self.estimate.target_ratio
        )


class FXRZ:
    """Feature-driven fixed-ratio compression framework.

    Args:
        compressor: any registered error-controlled compressor.
        config: framework knobs (sampling stride, CA lambda, ...).
        model_factory: ``seed -> model`` override for the Table III
            model comparison; defaults to the random forest.
        ctx: a :class:`~repro.runtime.RuntimeContext`; supplies the
            training-time executor, the shared compression memo and the
            forest worker count. Results are bit-identical at any
            worker count.
        n_jobs: deprecated — pass ``ctx=RuntimeContext(jobs=...)``.
        memo: deprecated — contexts share their memo automatically.
    """

    def __init__(
        self,
        compressor: Compressor,
        config: FXRZConfig | None = None,
        model_factory=None,
        n_jobs=UNSET,
        memo=UNSET,
        *,
        ctx=None,
    ) -> None:
        self.compressor = compressor
        self.config = config or FXRZConfig()
        ctx = legacy_context(
            ctx,
            n_jobs=legacy("FXRZ", "n_jobs", n_jobs),
            memo=legacy("FXRZ", "memo", memo),
        )
        self.ctx = ctx
        self.memo = ctx.memo if ctx is not None else None
        self.n_jobs = ctx.config.jobs if ctx is not None else None
        self._training = TrainingEngine(
            compressor,
            config=self.config,
            model_factory=model_factory,
            ctx=ctx,
        )
        self._inference: InferenceEngine | None = None

    # -- training --------------------------------------------------------------

    def fit(
        self,
        datasets: list[np.ndarray],
        domains: list[tuple[float, float] | None] | None = None,
    ) -> TrainingReport:
        """Train on a list of arrays; returns the timing report."""
        if not datasets:
            raise InvalidConfiguration("fit needs at least one dataset")
        if domains is None:
            domains = [None] * len(datasets)
        if len(domains) != len(datasets):
            raise InvalidConfiguration("domains must pair with datasets")
        for data, domain in zip(datasets, domains):
            self._training.add_dataset(data, domain=domain)
        model = self._training.fit()
        self._inference = InferenceEngine(
            model, self.compressor, config=self.config, ctx=self.ctx
        )
        return self._training.report

    @property
    def is_fitted(self) -> bool:
        return self._inference is not None

    @property
    def training_report(self) -> TrainingReport:
        return self._training.report

    @property
    def curves(self):
        """Anchored compression curves of the training datasets."""
        return [record.curve for record in self._training.records]

    @property
    def model(self):
        return self._training.model

    # -- inference -------------------------------------------------------------

    def trained_ratio_range(self, data: np.ndarray) -> tuple[float, float]:
        """Target-ratio span this pipeline can answer for ``data``.

        The model was fitted on adjusted ratios covering the training
        curves' anchored span; a request maps into that span through
        ``data``'s own non-constant fraction. Requests outside the
        returned range force the regressor to extrapolate and degrade
        accuracy — callers should clamp or warn.
        """
        if self._inference is None:
            raise NotFittedError("FXRZ.fit must be called first")
        records = self._training.records
        acr_lo = min(
            max(rec.curve.ratio_range[0] * rec.nonconstant, 1.0)
            for rec in records
        )
        acr_hi = max(
            rec.curve.ratio_range[1] * rec.nonconstant for rec in records
        )
        if self.config.use_adjustment:
            from repro.core.adjustment import nonconstant_fraction

            r = nonconstant_fraction(
                data, block_size=self.config.block_size, lam=self.config.lam
            )
        else:
            r = 1.0
        r = max(r, 1e-6)
        return max(acr_lo / r, 1.0), acr_hi / r

    def estimate_config(
        self,
        data: np.ndarray,
        target_ratio: float | None = None,
        *,
        objective=None,
    ) -> Estimate:
        """Pick the error configuration for a target (no compression for ratio).

        Either ``target_ratio`` (the paper's TCR) or ``objective`` — a
        :class:`~repro.core.objective.Objective`, its canonical string
        form (``"psnr:60"``), or a bare number meaning a ratio target.
        Quality objectives may spend probe compressions; see
        :class:`~repro.core.objective.QualityModel`.
        """
        if self._inference is None:
            raise NotFittedError("FXRZ.fit must be called first")
        return self._inference.estimate(data, target_ratio, objective=objective)

    def frontier(self, data: np.ndarray, analysis=None, *, ratios=None, points=12):
        """The (ratio, PSNR) Pareto frontier for ``data``.

        See :meth:`~repro.core.inference.InferenceEngine.frontier`.
        """
        if self._inference is None:
            raise NotFittedError("FXRZ.fit must be called first")
        return self._inference.frontier(
            data, analysis, ratios=ratios, points=points
        )

    def guarded(self, fallback: str | None = None, **kwargs):
        """A hardened inference engine over this fitted pipeline.

        Returns a
        :class:`~repro.robustness.guarded.GuardedInferenceEngine` whose
        ``estimate`` validates inputs, scores model confidence, and
        degrades through curve interpolation down to a bounded FRaZ
        search instead of returning a wild extrapolation. ``fallback``
        defaults to the runtime context's policy ("fraz" without one).
        See :mod:`repro.robustness` for the knobs.
        """
        from repro.robustness.guarded import GuardedInferenceEngine

        return GuardedInferenceEngine(self, fallback=fallback, **kwargs)

    def compress_to_ratio(
        self,
        data: np.ndarray,
        target_ratio: float,
        max_refinements: int = 0,
        tolerance: float = 0.05,
    ) -> FixedRatioResult:
        """Estimate the config, compress, and report the achieved ratio.

        With ``max_refinements > 0`` the pipeline spends extra
        compressions to tighten the result (an extension beyond the
        paper, which is compression-free): after measuring the achieved
        ratio, the *model itself* is re-queried with the target scaled
        by the observed miss (``TCR * TCR/MCR``) — a Newton-style step
        through the learned curve. Each refinement costs one
        compression, still far below FRaZ's 6-15.

        Args:
            data: array to compress.
            target_ratio: TCR.
            max_refinements: extra compressor runs allowed (0 = the
                paper's compression-free behaviour).
            tolerance: stop refining once Formula-(5) error is below
                this.
        """
        estimate = self.estimate_config(data, target_ratio)
        blob = self.compressor.compress(data, estimate.config)
        best = FixedRatioResult(
            blob=blob,
            estimate=estimate,
            measured_ratio=blob.compression_ratio,
        )
        scaled_target = target_ratio
        for step in range(max_refinements):
            if best.estimation_error <= tolerance:
                break
            miss = target_ratio / best.measured_ratio
            scaled_target = max(scaled_target * miss, 1.0)
            retry = self.estimate_config(data, scaled_target)
            if retry.config == best.estimate.config:
                break  # the model has no finer answer
            blob = self.compressor.compress(data, retry.config)
            candidate = FixedRatioResult(
                blob=blob,
                estimate=Estimate(
                    config=retry.config,
                    target_ratio=float(target_ratio),
                    adjusted_target=retry.adjusted_target,
                    nonconstant=retry.nonconstant,
                    features=retry.features,
                    analysis_seconds=estimate.analysis_seconds
                    + retry.analysis_seconds,
                ),
                measured_ratio=blob.compression_ratio,
                compressions=step + 2,
            )
            if candidate.estimation_error < best.estimation_error:
                best = candidate
        outcome_log = (
            self.ctx.lifecycle
            if self.ctx is not None and not self.ctx.closed
            else None
        )
        if outcome_log is not None:
            # The one place estimate and measured truth meet in a
            # single call — the highest-value record the online
            # learning loop gets (see repro.lifecycle).
            try:
                from repro.serving.cache import dataset_fingerprint

                outcome_log.record_estimate(
                    best.estimate,
                    dataset_key=dataset_fingerprint(
                        data, stride=self.config.sampling_stride
                    ),
                    compressor=self.compressor.name,
                    measured_ratio=best.measured_ratio,
                    source="compress",
                )
            except OSError:
                pass  # a full disk must not fail the compression
        return best

    def compress_to_objective(self, data: np.ndarray, objective) -> FixedRatioResult:
        """Estimate a config for ``objective``, compress, measure the truth.

        Ratio objectives delegate to :meth:`compress_to_ratio` (the
        paper's compression-free path). Quality objectives estimate via
        the quality model, compress once, and measure the achieved PSNR
        by decompressing — the measured value lands in
        ``result.measured_psnr`` and in the outcome log.
        """
        from repro.core.objective import as_objective

        objective = as_objective(objective)
        if objective.kind == "ratio":
            return self.compress_to_ratio(data, objective.value)
        estimate = self.estimate_config(data, objective=objective)
        blob = self.compressor.compress(data, estimate.config)
        from repro.analysis.distortion import psnr as measure_psnr

        reconstruction = self.compressor.decompress(blob)
        measured_psnr = float(measure_psnr(data, reconstruction))
        result = FixedRatioResult(
            blob=blob,
            estimate=estimate,
            measured_ratio=blob.compression_ratio,
            measured_psnr=measured_psnr,
        )
        outcome_log = (
            self.ctx.lifecycle
            if self.ctx is not None and not self.ctx.closed
            else None
        )
        if outcome_log is not None:
            try:
                from repro.serving.cache import dataset_fingerprint

                outcome_log.record_estimate(
                    estimate,
                    dataset_key=dataset_fingerprint(
                        data, stride=self.config.sampling_stride
                    ),
                    compressor=self.compressor.name,
                    measured_ratio=result.measured_ratio,
                    measured_psnr=measured_psnr,
                    source="compress",
                )
            except OSError:
                pass  # a full disk must not fail the compression
        return result
