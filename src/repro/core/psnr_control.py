"""PSNR-targeted error-bound selection (the related-work capability).

Tao et al. (cited in the paper's Sec. II) pick error bounds from a
target PSNR instead of a target ratio. For uniform quantization with
bin width ``2*eb``, quantization errors are ~uniform in ``[-eb, eb]``,
so

    RMSE ~ eb / sqrt(3)  =>  PSNR ~ -20 log10(eb / (range * sqrt(3)))

which inverts in closed form. The analytic estimate is exact only for
SZ-style quantizers; :func:`calibrated_bound_for_psnr` therefore also
offers a measured refinement that probes the compressor a couple of
times (still far cheaper than a full search).

This module complements FXRZ: ratio-targeted control needs learning
because ratios depend on data statistics; PSNR-targeted control is
nearly closed-form — exactly why the paper frames fixed-*ratio* as the
open problem.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.analysis.distortion import psnr
from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration

_SQRT3 = float(np.sqrt(3.0))


def analytic_bound_for_psnr(data: np.ndarray, target_psnr: float) -> float:
    """Closed-form error bound expected to deliver ``target_psnr``.

    Assumes uniform quantization error in ``[-eb, eb]`` (the SZ-style
    quantizer); other compressor families over- or under-deliver and
    should use :func:`calibrated_bound_for_psnr`.
    """
    if target_psnr <= 0:
        raise InvalidConfiguration("target PSNR must be > 0 dB")
    value_range = float(np.ptp(data))
    if value_range == 0:
        raise InvalidConfiguration("constant data has undefined PSNR")
    return value_range * _SQRT3 * 10.0 ** (-target_psnr / 20.0)


def calibrated_bound_for_psnr(
    compressor: Compressor,
    data: np.ndarray,
    target_psnr: float,
    probes: int = 2,
    memo=None,
    *,
    ctx=None,
) -> float:
    """Analytic estimate refined by measuring the compressor's PSNR.

    Each probe compresses once, measures the achieved PSNR, and scales
    the bound by the dB miss (PSNR is ~linear in ``-20 log10(eb)``).

    Args:
        compressor: an absolute-error-bounded compressor.
        data: the dataset.
        target_psnr: desired reconstruction quality in dB.
        probes: refinement compressions to spend (0 = pure analytic).
        memo: optional :class:`~repro.parallel.CompressionMemoCache`;
            probes whose PSNR an earlier caller already measured are
            answered from it, and fresh probes record both the ratio
            and the PSNR for everyone downstream.
        ctx: a :class:`~repro.runtime.RuntimeContext` whose shared memo
            is used when ``memo`` is not given.
    """
    if compressor.error_mode != "abs":
        raise InvalidConfiguration(
            "PSNR targeting requires an absolute-error compressor"
        )
    if probes < 0:
        raise InvalidConfiguration("probes must be >= 0")
    if memo is None and ctx is not None:
        memo = ctx.memo
    bound = analytic_bound_for_psnr(data, target_psnr)
    lo, hi = compressor.config_domain(data)
    bound = float(np.clip(bound, lo, hi))
    # Stairstep compressors (ZFP) have no config for every PSNR, so the
    # multiplicative correction can oscillate around the target; keep
    # the closest bound seen rather than the last.
    best_bound = bound
    best_miss = np.inf
    fingerprint = memo.fingerprint(data) if memo is not None else None
    for _ in range(probes):
        achieved = None
        key = None
        if memo is not None:
            key = memo.key(fingerprint, compressor, bound)
            record = memo.get(key)
            if record is not None and record.psnr is not None:
                achieved = record.psnr
        if achieved is None:
            tick = perf_counter()
            recon, blob = compressor.roundtrip(data, bound)
            seconds = perf_counter() - tick
            achieved = psnr(data, recon)
            if memo is not None:
                from repro.parallel.memo import MemoRecord

                memo.put(
                    key,
                    MemoRecord(
                        ratio=blob.compression_ratio,
                        seconds=seconds,
                        psnr=float(achieved) if np.isfinite(achieved) else None,
                    ),
                )
        if not np.isfinite(achieved):
            return bound  # lossless already; cannot miss the target
        miss_db = achieved - target_psnr
        if abs(miss_db) < abs(best_miss):
            best_miss = miss_db
            best_bound = bound
        if abs(miss_db) < 0.5:
            break
        # One dB of excess quality <=> the bound may grow by 10**(1/20).
        bound = float(np.clip(bound * 10.0 ** (miss_db / 20.0), lo, hi))
    return best_bound
