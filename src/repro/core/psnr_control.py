"""PSNR-targeted error-bound selection (the related-work capability).

Tao et al. (cited in the paper's Sec. II) pick error bounds from a
target PSNR instead of a target ratio. For uniform quantization with
bin width ``2*eb``, quantization errors are ~uniform in ``[-eb, eb]``,
so

    RMSE ~ eb / sqrt(3)  =>  PSNR ~ -20 log10(eb / (range * sqrt(3)))

which inverts in closed form. The analytic estimate is exact only for
SZ-style quantizers; :func:`calibrated_bound_for_psnr` therefore also
offers a measured refinement that probes the compressor a couple of
times (still far cheaper than a full search).

This module complements FXRZ: ratio-targeted control needs learning
because ratios depend on data statistics; PSNR-targeted control is
nearly closed-form — exactly why the paper frames fixed-*ratio* as the
open problem. Objective-driven callers reach it through
:class:`repro.core.objective.QualityModel`, which folds the closed
form in as the analytic prior of the PSNR rung.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.analysis.distortion import psnr
from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration
from repro.runtime.compat import UNSET, legacy

_SQRT3 = float(np.sqrt(3.0))


def analytic_bound_for_psnr(data: np.ndarray, target_psnr: float) -> float:
    """Closed-form error bound expected to deliver ``target_psnr``.

    Assumes uniform quantization error in ``[-eb, eb]`` (the SZ-style
    quantizer); other compressor families over- or under-deliver and
    should use :func:`calibrated_bound_for_psnr`.
    """
    if target_psnr <= 0:
        raise InvalidConfiguration("target PSNR must be > 0 dB")
    array = np.asarray(data)
    if not np.all(np.isfinite(array)):
        # np.ptp would silently propagate NaN/inf into the bound.
        raise InvalidConfiguration(
            "PSNR targeting requires finite data (found NaN or inf)"
        )
    value_range = float(np.ptp(array))
    if value_range == 0:
        raise InvalidConfiguration("constant data has undefined PSNR")
    return value_range * _SQRT3 * 10.0 ** (-target_psnr / 20.0)


def calibrated_bound_for_psnr(
    compressor: Compressor,
    data: np.ndarray,
    target_psnr: float,
    probes: int = 2,
    memo=UNSET,
    *,
    ctx=None,
) -> float:
    """Analytic estimate refined by measuring the compressor's PSNR.

    Each probe compresses once, measures the achieved PSNR, and scales
    the bound by the dB miss (PSNR is ~linear in ``-20 log10(eb)``).

    Args:
        compressor: an absolute-error-bounded compressor.
        data: the dataset.
        target_psnr: desired reconstruction quality in dB.
        probes: refinement compressions to spend (0 = pure analytic).
        memo: deprecated — pass ``ctx`` instead; the context's shared
            compression memo answers probes an earlier caller already
            measured and records fresh probes for everyone downstream.
        ctx: a :class:`~repro.runtime.RuntimeContext` whose shared memo
            is used for probe caching.
    """
    memo = legacy("calibrated_bound_for_psnr", "memo", memo)
    if memo is None and ctx is not None:
        memo = ctx.memo
    bound, _achieved, _spent = _calibrated_search(
        compressor, data, target_psnr, probes, memo
    )
    return bound


def _calibrated_search(
    compressor: Compressor,
    data: np.ndarray,
    target_psnr: float,
    probes: int,
    memo,
) -> tuple[float, float | None, int]:
    """The probe-refinement loop behind :func:`calibrated_bound_for_psnr`.

    Internal entry point for objective-driven callers (QualityModel,
    the guarded probe rung) that already resolved their memo and also
    need the measured PSNR: returns ``(bound, achieved, probes_spent)``
    where ``achieved`` is the PSNR measured at the returned bound
    (``None`` when no probe ran, or the probe came from the memo with
    an infinite/lossless result).
    """
    if compressor.error_mode != "abs":
        raise InvalidConfiguration(
            "PSNR targeting requires an absolute-error compressor"
        )
    if probes < 0:
        raise InvalidConfiguration("probes must be >= 0")
    bound = analytic_bound_for_psnr(data, target_psnr)
    lo, hi = compressor.config_domain(data)
    bound = float(np.clip(bound, lo, hi))
    # Stairstep compressors (ZFP) have no config for every PSNR, so the
    # multiplicative correction can oscillate around the target; keep
    # the closest bound seen rather than the last.
    best_bound = bound
    best_achieved: float | None = None
    best_miss = np.inf
    spent = 0
    fingerprint = memo.fingerprint(data) if memo is not None else None
    for _ in range(probes):
        achieved = None
        key = None
        if memo is not None:
            key = memo.key(fingerprint, compressor, bound)
            record = memo.get(key)
            if record is not None and record.psnr is not None:
                achieved = record.psnr
        if achieved is None:
            tick = perf_counter()
            recon, blob = compressor.roundtrip(data, bound)
            seconds = perf_counter() - tick
            spent += 1
            achieved = psnr(data, recon)
            if memo is not None:
                from repro.parallel.memo import MemoRecord

                memo.put(
                    key,
                    MemoRecord(
                        ratio=blob.compression_ratio,
                        seconds=seconds,
                        psnr=float(achieved) if np.isfinite(achieved) else None,
                    ),
                )
        if not np.isfinite(achieved):
            # Lossless already; cannot miss the target from above.
            return bound, None, spent
        miss_db = achieved - target_psnr
        if abs(miss_db) < abs(best_miss):
            best_miss = miss_db
            best_bound = bound
            best_achieved = float(achieved)
        if abs(miss_db) < 0.5:
            break
        # One dB of excess quality <=> the bound may grow by 10**(1/20).
        bound = float(np.clip(bound * 10.0 ** (miss_db / 20.0), lo, hi))
    return best_bound, best_achieved, spent
