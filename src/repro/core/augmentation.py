"""Data augmentation by curve interpolation (paper Sec. IV-B, Fig. 2).

Running a compressor is expensive, so FXRZ runs it at only ~25
"stationary" error configurations per training dataset and linearly
interpolates the resulting (config -> compression ratio) curve. The
interpolated curve then supplies arbitrarily many (ratio, config)
training pairs, and — read backwards — an error configuration for any
target ratio inside the anchored range.

Absolute-error compressors are interpolated in log-config space (their
useful bounds span decades); precision compressors in linear space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class CompressionCurve:
    """Interpolated (error configuration -> compression ratio) curve.

    Attributes:
        configs: stationary configs, ascending.
        ratios: measured compression ratios at those configs.
        log_config: whether interpolation runs in log10(config) space.
        build_seconds: wall time spent running the compressor.
    """

    configs: np.ndarray
    ratios: np.ndarray
    log_config: bool
    build_seconds: float

    def __post_init__(self) -> None:
        if self.configs.size != self.ratios.size or self.configs.size < 2:
            raise InvalidConfiguration("curve needs >= 2 stationary points")
        if np.any(np.diff(self.configs) <= 0):
            raise InvalidConfiguration("stationary configs must be ascending")

    @property
    def ratio_range(self) -> tuple[float, float]:
        """Valid (min, max) compression ratios covered by the anchors."""
        return float(self.ratios.min()), float(self.ratios.max())

    def _config_axis(self) -> np.ndarray:
        return np.log10(self.configs) if self.log_config else self.configs

    def ratio_for_config(self, config: float) -> float:
        """Interpolate the compression ratio at ``config`` (clamped)."""
        axis = self._config_axis()
        x = np.log10(config) if self.log_config else config
        return float(np.interp(x, axis, self.ratios))

    def config_for_ratio(self, ratio: float) -> float:
        """Interpolate the config expected to reach ``ratio`` (clamped).

        The measured ratio curve is made monotone (isotonic envelope)
        before inversion, which resolves the flat steps of stairwise
        compressors like ZFP to the cheapest config achieving each
        ratio. Curves whose ratio *falls* with the config axis —
        precision compressors like FPZIP — are inverted by traversing
        the axis in reverse.
        """
        axis = self._config_axis()
        ratios = self.ratios
        if ratios[0] > ratios[-1]:
            # Ratio decreases along the config axis: flip so the
            # envelope/interp below sees an ascending curve.
            axis = axis[::-1]
            ratios = ratios[::-1]
        monotone = np.maximum.accumulate(ratios)
        # np.interp needs strictly usable x: collapse duplicate ratios
        # to their first (cheapest) config.
        keep = np.concatenate(([True], np.diff(monotone) > 0))
        x = float(np.interp(ratio, monotone[keep], axis[keep]))
        return float(10.0**x) if self.log_config else x

    def sample(
        self, n_samples: int, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` augmented (ratio, config) training pairs.

        Ratios are spread log-uniformly over the anchored range (with
        tiny jitter when seeded) and mapped through
        :meth:`config_for_ratio`. Log spacing matters: achievable
        ratios span decades while users request targets from the low
        decades, so uniform spacing would starve exactly the region
        the model is queried in.
        """
        if n_samples < 1:
            raise InvalidConfiguration("n_samples must be >= 1")
        lo, hi = self.ratio_range
        lo = max(lo, 1.0)
        hi = max(hi, lo * (1.0 + 1e-9))
        log_lo, log_hi = np.log(lo), np.log(hi)
        log_ratios = np.linspace(log_lo, log_hi, n_samples)
        if seed is not None and n_samples > 2:
            rng = np.random.default_rng(seed)
            span = (log_hi - log_lo) / max(n_samples - 1, 1)
            log_ratios[1:-1] += rng.uniform(-0.25, 0.25, n_samples - 2) * span
        ratios = np.exp(log_ratios)
        configs = np.array([self.config_for_ratio(r) for r in ratios])
        return ratios, configs


def stationary_configs(
    compressor: Compressor,
    data: np.ndarray,
    n_points: int,
    domain: tuple[float, float] | None = None,
) -> np.ndarray:
    """Uniformly spanned error configurations (log or linear space)."""
    if n_points < 2:
        raise InvalidConfiguration("n_points must be >= 2")
    lo, hi = domain if domain is not None else compressor.config_domain(data)
    if lo >= hi:
        raise InvalidConfiguration("empty config domain")
    if compressor.config_scale == "log":
        configs = np.logspace(np.log10(lo), np.log10(hi), n_points)
    else:
        configs = np.unique(
            np.round(np.linspace(lo, hi, n_points)).astype(np.int64)
        ).astype(np.float64)
    return configs


def build_curve(
    compressor: Compressor,
    data: np.ndarray,
    n_points: int = 25,
    domain: tuple[float, float] | None = None,
) -> CompressionCurve:
    """Run the compressor at the stationary configs and anchor a curve."""
    configs = stationary_configs(compressor, data, n_points, domain)
    start = time.perf_counter()
    ratios = np.array(
        [compressor.compression_ratio(data, c) for c in configs]
    )
    elapsed = time.perf_counter() - start
    return CompressionCurve(
        configs=configs,
        ratios=ratios,
        log_config=compressor.config_scale == "log",
        build_seconds=elapsed,
    )
