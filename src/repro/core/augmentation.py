"""Data augmentation by curve interpolation (paper Sec. IV-B, Fig. 2).

Running a compressor is expensive, so FXRZ runs it at only ~25
"stationary" error configurations per training dataset and linearly
interpolates the resulting (config -> compression ratio) curve. The
interpolated curve then supplies arbitrarily many (ratio, config)
training pairs, and — read backwards — an error configuration for any
target ratio inside the anchored range.

Absolute-error compressors are interpolated in log-config space (their
useful bounds span decades); precision compressors in linear space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration
from repro.runtime.compat import UNSET, legacy


@dataclass(frozen=True)
class CompressionCurve:
    """Interpolated (error configuration -> compression ratio) curve.

    Attributes:
        configs: stationary configs, ascending.
        ratios: measured compression ratios at those configs.
        log_config: whether interpolation runs in log10(config) space.
        build_seconds: wall time spent running the compressor.
    """

    configs: np.ndarray
    ratios: np.ndarray
    log_config: bool
    build_seconds: float

    def __post_init__(self) -> None:
        if self.configs.size != self.ratios.size or self.configs.size < 2:
            raise InvalidConfiguration("curve needs >= 2 stationary points")
        if np.any(np.diff(self.configs) <= 0):
            raise InvalidConfiguration("stationary configs must be ascending")

    @property
    def ratio_range(self) -> tuple[float, float]:
        """Valid (min, max) compression ratios covered by the anchors."""
        return float(self.ratios.min()), float(self.ratios.max())

    def _config_axis(self) -> np.ndarray:
        return np.log10(self.configs) if self.log_config else self.configs

    def ratio_for_config(self, config: float) -> float:
        """Interpolate the compression ratio at ``config`` (clamped)."""
        axis = self._config_axis()
        x = np.log10(config) if self.log_config else config
        return float(np.interp(x, axis, self.ratios))

    def _inversion_table(self) -> tuple[np.ndarray, np.ndarray]:
        """The (monotone ratios, config axis) table ``np.interp`` inverts."""
        axis = self._config_axis()
        ratios = self.ratios
        if ratios[0] > ratios[-1]:
            # Ratio decreases along the config axis: flip so the
            # envelope/interp below sees an ascending curve.
            axis = axis[::-1]
            ratios = ratios[::-1]
        monotone = np.maximum.accumulate(ratios)
        # np.interp needs strictly usable x: collapse duplicate ratios
        # to their first (cheapest) config.
        keep = np.concatenate(([True], np.diff(monotone) > 0))
        return monotone[keep], axis[keep]

    def config_for_ratio(self, ratio: float) -> float:
        """Interpolate the config expected to reach ``ratio`` (clamped).

        The measured ratio curve is made monotone (isotonic envelope)
        before inversion, which resolves the flat steps of stairwise
        compressors like ZFP to the cheapest config achieving each
        ratio. Curves whose ratio *falls* with the config axis —
        precision compressors like FPZIP — are inverted by traversing
        the axis in reverse.
        """
        return float(self.configs_for_ratios(np.asarray([ratio]))[0])

    def configs_for_ratios(self, ratios: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`config_for_ratio` over a ratio array.

        The inversion table is built once and every ratio goes through
        one ``np.interp`` call, so sampling hundreds of augmented pairs
        costs one pass instead of one envelope build per ratio.
        """
        monotone, axis = self._inversion_table()
        x = np.interp(np.asarray(ratios, dtype=np.float64), monotone, axis)
        return np.power(10.0, x) if self.log_config else x

    def sample(
        self, n_samples: int, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` augmented (ratio, config) training pairs.

        Ratios are spread log-uniformly over the anchored range (with
        tiny jitter when seeded) and mapped through
        :meth:`config_for_ratio`. Log spacing matters: achievable
        ratios span decades while users request targets from the low
        decades, so uniform spacing would starve exactly the region
        the model is queried in.
        """
        if n_samples < 1:
            raise InvalidConfiguration("n_samples must be >= 1")
        lo, hi = self.ratio_range
        lo = max(lo, 1.0)
        hi = max(hi, lo * (1.0 + 1e-9))
        log_lo, log_hi = np.log(lo), np.log(hi)
        log_ratios = np.linspace(log_lo, log_hi, n_samples)
        if seed is not None and n_samples > 2:
            rng = np.random.default_rng(seed)
            span = (log_hi - log_lo) / max(n_samples - 1, 1)
            log_ratios[1:-1] += rng.uniform(-0.25, 0.25, n_samples - 2) * span
        ratios = np.exp(log_ratios)
        return ratios, self.configs_for_ratios(ratios)


def stationary_configs(
    compressor: Compressor,
    data: np.ndarray,
    n_points: int,
    domain: tuple[float, float] | None = None,
) -> np.ndarray:
    """Uniformly spanned error configurations (log or linear space)."""
    if n_points < 2:
        raise InvalidConfiguration("n_points must be >= 2")
    lo, hi = domain if domain is not None else compressor.config_domain(data)
    if lo >= hi:
        raise InvalidConfiguration("empty config domain")
    if compressor.config_scale == "log":
        configs = np.logspace(np.log10(lo), np.log10(hi), n_points)
    else:
        configs = np.unique(
            np.round(np.linspace(lo, hi, n_points)).astype(np.int64)
        ).astype(np.float64)
    return configs


def _sweep_task(config: float, arrays: dict, compressor: Compressor):
    """One stationary evaluation (executor worker): ``(ratio, seconds)``."""
    tick = time.perf_counter()
    ratio = compressor.compression_ratio(arrays["data"], config)
    return ratio, time.perf_counter() - tick


def _sweep_batch(configs: list, arrays: dict, compressor: Compressor):
    """A fat sweep task: many stationary evaluations in one dispatch.

    One batch runs on one worker, so a single
    :class:`~repro.compressors.base.CompressionStream` carries the
    kernel arena across every config in the batch — the first probe
    sizes the scratch buffers, the rest reuse them.
    """
    from repro.compressors.base import CompressionStream

    stream = CompressionStream(compressor)
    results = []
    for config in configs:
        tick = time.perf_counter()
        ratio = stream.compress(arrays["data"], config).compression_ratio
        results.append((ratio, time.perf_counter() - tick))
    return results


def build_curve(
    compressor: Compressor,
    data: np.ndarray,
    n_points: int = 25,
    domain: tuple[float, float] | None = None,
    *,
    ctx=None,
    executor=UNSET,
    memo=UNSET,
    fingerprint: str | None = None,
) -> CompressionCurve:
    """Run the compressor at the stationary configs and anchor a curve.

    The sweep is the only place the whole framework pays for compressor
    runs (Table VI's dominant offline cost), and its ~25 evaluations are
    independent, so two accelerations apply through ``ctx`` (a
    :class:`~repro.runtime.RuntimeContext`):

    * the context's executor fans the evaluations over workers; the
      field ships to process workers once via shared memory. Results
      are assembled in config order, so the curve is bit-identical to
      the serial one.
    * the context's memo resolves already-paid evaluations before
      anything is submitted and records the rest, so repeated sweeps
      (re-training, benchmarks) skip the compressor entirely.
      ``fingerprint`` optionally supplies the precomputed content hash
      of ``data``.

    ``executor=``/``memo=`` are deprecated; pass ``ctx=`` instead.

    ``build_seconds`` totals the *compressor* time of the evaluations
    (memo hits charge their recorded time), which is the quantity
    Table VI accounts — under a parallel executor the wall clock is
    lower.
    """
    executor = legacy("build_curve", "executor", executor)
    memo = legacy("build_curve", "memo", memo)
    if ctx is not None:
        if executor is None:
            executor = ctx.executor
        if memo is None:
            memo = ctx.memo
    configs = stationary_configs(compressor, data, n_points, domain)
    with obs.span(
        "augmentation.build_curve",
        compressor=compressor.name,
        n_points=int(configs.size),
    ) as span:
        ratios = np.empty(configs.size, dtype=np.float64)
        seconds = np.zeros(configs.size, dtype=np.float64)
        pending: list[int] = []
        keys: dict[int, tuple] = {}
        if memo is not None:
            if fingerprint is None:
                fingerprint = memo.fingerprint(data)
            for i, config in enumerate(configs):
                key = memo.key(fingerprint, compressor, float(config))
                record = memo.get(key)
                if record is None:
                    pending.append(i)
                    keys[i] = key
                else:
                    ratios[i], seconds[i] = record.ratio, record.seconds
        else:
            pending = list(range(configs.size))
        span.set_attributes(
            memo_hits=int(configs.size) - len(pending), evaluated=len(pending)
        )

        if pending:
            miss_configs = [float(configs[i]) for i in pending]
            if executor is not None:
                # Fat-task dispatch: one batch per worker instead of one
                # task per probe, so pool dispatch/pickling is paid per
                # worker and each batch reuses one compression stream.
                n_batches = max(1, min(executor.n_jobs, len(miss_configs)))
                bounds = np.linspace(
                    0, len(miss_configs), n_batches + 1
                ).astype(int)
                groups = [
                    miss_configs[lo:hi]
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                    if hi > lo
                ]
                grouped = executor.map(
                    _sweep_batch,
                    groups,
                    shared={"data": np.asarray(data)},
                    context=compressor,
                )
                results = [result for group in grouped for result in group]
            else:
                results = _sweep_batch(
                    miss_configs, {"data": data}, compressor
                )
            for i, (ratio, elapsed) in zip(pending, results):
                ratios[i], seconds[i] = ratio, elapsed
                if memo is not None:
                    from repro.parallel.memo import MemoRecord

                    memo.put(keys[i], MemoRecord(ratio=ratio, seconds=elapsed))

        return CompressionCurve(
            configs=configs,
            ratios=ratios,
            log_config=compressor.config_scale == "log",
            build_seconds=float(seconds.sum()),
        )
