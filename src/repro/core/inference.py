"""FXRZ inference engine (paper Fig. 1, steps 9-10).

Given a runtime dataset and an estimation objective, the engine
extracts the same sampled features as training and answers with an
error configuration. Ratio objectives (the paper's TCR) go through the
regression model — compression-free, with the target adjusted by the
non-constant block fraction (CA); quality objectives (PSNR/SSIM, see
:mod:`repro.core.objective`) go through the quality model, with the
closed forms of :mod:`repro.core.psnr_control` as the analytic prior.
The recorded ``analysis_seconds`` is what Table VIII compares against
FRaZ's iterative search cost.

The per-dataset half of that work (feature extraction + block
classification) is independent of the target, so it is split out
as :meth:`InferenceEngine.analyze`: a serving layer can run it once per
dataset and answer many targets from the cached
:class:`DatasetAnalysis` (see :mod:`repro.serving`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.compressors.base import Compressor
from repro.config import FXRZConfig
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.features import extract_features
from repro.core.objective import (
    Objective,
    ParetoFrontier,
    QualityModel,
    RatioTarget,
    as_objective,
    build_frontier,
)
from repro.errors import InvalidConfiguration


def _frozen_array(values: np.ndarray) -> np.ndarray:
    """A read-only float64 copy (or the input, if already locked)."""
    array = np.asarray(values, dtype=np.float64)
    if array.flags.writeable:
        array = array.copy()
        array.flags.writeable = False
    return array


@dataclass(frozen=True)
class DatasetAnalysis:
    """The target-independent half of one inference: what the dataset *is*.

    Attributes:
        features: the five adopted model-input features (read-only).
        nonconstant: the non-constant block fraction R (1.0 when CA is
            disabled).
        seconds: wall time spent computing this analysis.
    """

    features: np.ndarray
    nonconstant: float
    seconds: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", _frozen_array(self.features))


@dataclass(frozen=True, eq=False)
class Estimate:
    """One inference outcome.

    Attributes:
        config: the estimated error configuration (ready to pass to
            ``compressor.compress``).
        target_ratio: the requested TCR for ratio objectives, ``0.0``
            for quality objectives. Deprecated as an input — read
            ``objective`` instead; this stays a real field so existing
            constructors, pickles and ``replace()`` calls keep working.
        adjusted_target: ACR fed to the model (TCR when CA is off;
            ``0.0`` for quality objectives, which bypass the model).
        nonconstant: the measured non-constant block fraction R.
        features: the five model-input features (stored read-only, so a
            frozen ``Estimate`` cannot be mutated through its array).
        analysis_seconds: end-to-end inference wall time.
        tier: which engine produced ``config`` — ``"model"`` for the
            plain regression path, ``"curve"`` / ``"fraz"`` when guarded
            inference degraded to a fallback, ``"analytic"`` /
            ``"probe"`` for the quality rungs.
        confidence: the guarded engine's confidence in the *model* tier
            for this input (1.0 for the unguarded engine).
        fallback_reason: why guarded inference left the model tier
            (empty when the model answered).
        trace_id: the distributed-trace id this estimate was served
            under (0 when untraced). Excluded from equality — two
            estimates from different requests must still compare equal
            when the numbers agree (shard-vs-sequential parity).
        objective: the estimation target this estimate answers. ``None``
            in the constructor is normalized to
            ``RatioTarget(target_ratio)`` so pre-objective call sites
            produce fully-formed estimates.
    """

    config: float
    target_ratio: float
    adjusted_target: float
    nonconstant: float
    features: np.ndarray
    analysis_seconds: float
    tier: str = "model"
    confidence: float = 1.0
    fallback_reason: str = ""
    trace_id: int = 0
    objective: Objective | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", _frozen_array(self.features))
        if self.objective is None and self.target_ratio > 0:
            object.__setattr__(
                self, "objective", RatioTarget(self.target_ratio)
            )

    def __eq__(self, other: object) -> bool:
        # The generated dataclass __eq__ compares the features arrays
        # elementwise and raises on the ambiguous truth value; compare
        # them properly instead.
        if not isinstance(other, Estimate):
            return NotImplemented
        return (
            self.config == other.config
            and self.target_ratio == other.target_ratio
            and self.adjusted_target == other.adjusted_target
            and self.nonconstant == other.nonconstant
            and self.analysis_seconds == other.analysis_seconds
            and self.tier == other.tier
            and self.confidence == other.confidence
            and self.fallback_reason == other.fallback_reason
            and self.objective == other.objective
            and np.array_equal(self.features, other.features)
        )


class InferenceEngine:
    """Maps (dataset, objective) -> error configuration.

    ``ctx`` (a :class:`~repro.runtime.RuntimeContext`) is carried for
    API uniformity — ratio inference itself is compression-free, but
    engines hand the context on to the quality probes, the guarded
    ladder and serving layers.
    """

    def __init__(
        self,
        model,
        compressor: Compressor,
        config: FXRZConfig | None = None,
        *,
        ctx=None,
        quality: QualityModel | None = None,
        quality_probes: int = 2,
    ) -> None:
        self.model = model
        self.compressor = compressor
        self.config = config or FXRZConfig()
        self.ctx = ctx
        self._quality = quality
        self.quality_probes = int(quality_probes)

    @property
    def quality(self) -> QualityModel:
        """The quality model answering PSNR/SSIM objectives.

        An uncalibrated analytic prior until one is assigned (e.g.
        resolved from the registry beside the ratio model).
        """
        if self._quality is None:
            self._quality = QualityModel()
        return self._quality

    @quality.setter
    def quality(self, model: QualityModel | None) -> None:
        self._quality = model

    def analyze(self, data: np.ndarray) -> DatasetAnalysis:
        """Run the target-independent dataset analysis once.

        The returned record can be passed to :meth:`estimate` for any
        number of objectives on the *same* dataset, skipping the
        feature/block passes each time.
        """
        with obs.span("inference.analyze") as span:
            start = time.perf_counter()
            features = extract_features(
                data, stride=self.config.sampling_stride
            ).selected()
            if self.config.use_adjustment:
                with obs.span(
                    "inference.adjustment",
                    block_size=int(self.config.block_size),
                ):
                    nonconstant = nonconstant_fraction(
                        data,
                        block_size=self.config.block_size,
                        lam=self.config.lam,
                    )
            else:
                nonconstant = 1.0
            span.set_attribute("nonconstant", nonconstant)
            return DatasetAnalysis(
                features=features,
                nonconstant=nonconstant,
                seconds=time.perf_counter() - start,
            )

    def estimate(
        self,
        data: np.ndarray,
        target_ratio: float | None = None,
        analysis: DatasetAnalysis | None = None,
        *,
        objective: Objective | float | str | None = None,
    ) -> Estimate:
        """Predict the error configuration for an objective.

        Args:
            data: the runtime dataset.
            target_ratio: the user's TCR — the pre-objective calling
                convention, equivalent to
                ``objective=RatioTarget(target_ratio)``.
            analysis: a cached :meth:`analyze` result for ``data``; when
                given, the feature/block passes are skipped and
                ``analysis_seconds`` covers only the per-request
                remainder (adjustment + model query or quality probes).
            objective: a :class:`~repro.core.objective.Objective`, a
                canonical string (``"psnr:60"``) or a bare ratio.
                Mutually exclusive with ``target_ratio``.
        """
        if objective is not None:
            if target_ratio is not None:
                raise InvalidConfiguration(
                    "pass either target_ratio or objective, not both"
                )
            resolved = as_objective(objective)
        else:
            if target_ratio is None:
                raise InvalidConfiguration(
                    "an estimate needs a target_ratio or an objective"
                )
            if target_ratio <= 0:
                raise InvalidConfiguration("target ratio must be > 0")
            resolved = RatioTarget(float(target_ratio))
        if isinstance(resolved, RatioTarget):
            return self._estimate_ratio(data, resolved, analysis)
        return self._estimate_quality(data, resolved, analysis)

    def _estimate_ratio(
        self,
        data: np.ndarray,
        objective: RatioTarget,
        analysis: DatasetAnalysis | None,
    ) -> Estimate:
        target_ratio = objective.tcr
        with obs.span(
            "inference.estimate", target_ratio=float(target_ratio)
        ) as span:
            start = time.perf_counter()
            if analysis is None:
                analysis = self.analyze(data)
            features = analysis.features
            acr = adjusted_ratio(target_ratio, analysis.nonconstant)
            with obs.span("inference.model_query"):
                row = np.concatenate((features, [acr]))[None, :]
                raw = float(self.model.predict(row)[0])
            if self.compressor.config_scale == "log":
                # The model predicts the range-normalized bound; rescale by
                # this dataset's own sampled value range.
                raw = 10.0**raw * max(float(features[0]), 1e-30)
            config = self.compressor.normalize_config(raw)
            elapsed = time.perf_counter() - start
            span.set_attributes(adjusted_target=acr, config=config)
            return Estimate(
                config=config,
                target_ratio=float(target_ratio),
                adjusted_target=acr,
                nonconstant=analysis.nonconstant,
                features=features,
                analysis_seconds=elapsed,
                objective=objective,
            )

    def _estimate_quality(
        self,
        data: np.ndarray,
        objective: Objective,
        analysis: DatasetAnalysis | None,
    ) -> Estimate:
        with obs.span(
            "inference.estimate", objective=objective.canonical
        ) as span:
            start = time.perf_counter()
            if analysis is None:
                analysis = self.analyze(data)
            with obs.span(
                "inference.quality_query", objective=objective.canonical
            ):
                result = self.quality.refine(
                    self.compressor,
                    data,
                    objective,
                    probes=self.quality_probes,
                    ctx=self.ctx,
                )
            elapsed = time.perf_counter() - start
            tier = "probe" if result.probes_spent > 0 else "analytic"
            span.set_attributes(config=result.config, tier=tier)
            return Estimate(
                config=float(result.config),
                target_ratio=0.0,
                adjusted_target=0.0,
                nonconstant=analysis.nonconstant,
                features=analysis.features,
                analysis_seconds=elapsed,
                tier=tier,
                objective=objective,
            )

    def frontier(
        self,
        data: np.ndarray,
        analysis: DatasetAnalysis | None = None,
        *,
        ratios=None,
        points: int = 12,
    ) -> ParetoFrontier:
        """The learned config -> (CR, PSNR) trade-off for ``data``.

        Sweeps the ratio model over a target grid and predicts the PSNR
        of each resulting config with the quality model; the returned
        :class:`~repro.core.objective.ParetoFrontier` answers "best
        quality at CR >= N" (and the converse) in one call.
        """
        return build_frontier(
            self,
            data,
            analysis,
            ratios=ratios,
            points=points,
            quality=self.quality,
        )
