"""FXRZ inference engine (paper Fig. 1, steps 9-10).

Given a runtime dataset and a target compression ratio, the engine
extracts the same sampled features as training, adjusts the target by
the non-constant block fraction (CA), and asks the regression model for
the error configuration — all without touching the compressor. The
recorded ``analysis_seconds`` is what Table VIII compares against
FRaZ's iterative search cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor
from repro.config import FXRZConfig
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.features import extract_features
from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class Estimate:
    """One inference outcome.

    Attributes:
        config: the estimated error configuration (ready to pass to
            ``compressor.compress``).
        target_ratio: the user's TCR.
        adjusted_target: ACR fed to the model (TCR when CA is off).
        nonconstant: the measured non-constant block fraction R.
        features: the five model-input features.
        analysis_seconds: end-to-end inference wall time.
        tier: which engine produced ``config`` — ``"model"`` for the
            plain regression path, ``"curve"`` / ``"fraz"`` when guarded
            inference degraded to a fallback.
        confidence: the guarded engine's confidence in the *model* tier
            for this input (1.0 for the unguarded engine).
        fallback_reason: why guarded inference left the model tier
            (empty when the model answered).
    """

    config: float
    target_ratio: float
    adjusted_target: float
    nonconstant: float
    features: np.ndarray
    analysis_seconds: float
    tier: str = "model"
    confidence: float = 1.0
    fallback_reason: str = ""


class InferenceEngine:
    """Maps (dataset, target ratio) -> error configuration."""

    def __init__(
        self,
        model,
        compressor: Compressor,
        config: FXRZConfig | None = None,
    ) -> None:
        self.model = model
        self.compressor = compressor
        self.config = config or FXRZConfig()

    def estimate(self, data: np.ndarray, target_ratio: float) -> Estimate:
        """Predict the error configuration for ``target_ratio``."""
        if target_ratio <= 0:
            raise InvalidConfiguration("target ratio must be > 0")
        start = time.perf_counter()
        features = extract_features(
            data, stride=self.config.sampling_stride
        ).selected()
        nonconstant = (
            nonconstant_fraction(
                data, block_size=self.config.block_size, lam=self.config.lam
            )
            if self.config.use_adjustment
            else 1.0
        )
        acr = adjusted_ratio(target_ratio, nonconstant)
        row = np.concatenate((features, [acr]))[None, :]
        raw = float(self.model.predict(row)[0])
        if self.compressor.config_scale == "log":
            # The model predicts the range-normalized bound; rescale by
            # this dataset's own sampled value range.
            raw = 10.0**raw * max(float(features[0]), 1e-30)
        config = self.compressor.normalize_config(raw)
        elapsed = time.perf_counter() - start
        return Estimate(
            config=config,
            target_ratio=float(target_ratio),
            adjusted_target=acr,
            nonconstant=nonconstant,
            features=features,
            analysis_seconds=elapsed,
        )
