"""FXRZ inference engine (paper Fig. 1, steps 9-10).

Given a runtime dataset and a target compression ratio, the engine
extracts the same sampled features as training, adjusts the target by
the non-constant block fraction (CA), and asks the regression model for
the error configuration — all without touching the compressor. The
recorded ``analysis_seconds`` is what Table VIII compares against
FRaZ's iterative search cost.

The per-dataset half of that work (feature extraction + block
classification) is independent of the target ratio, so it is split out
as :meth:`InferenceEngine.analyze`: a serving layer can run it once per
dataset and answer many targets from the cached
:class:`DatasetAnalysis` (see :mod:`repro.serving`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.compressors.base import Compressor
from repro.config import FXRZConfig
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.features import extract_features
from repro.errors import InvalidConfiguration


def _frozen_array(values: np.ndarray) -> np.ndarray:
    """A read-only float64 copy (or the input, if already locked)."""
    array = np.asarray(values, dtype=np.float64)
    if array.flags.writeable:
        array = array.copy()
        array.flags.writeable = False
    return array


@dataclass(frozen=True)
class DatasetAnalysis:
    """The target-independent half of one inference: what the dataset *is*.

    Attributes:
        features: the five adopted model-input features (read-only).
        nonconstant: the non-constant block fraction R (1.0 when CA is
            disabled).
        seconds: wall time spent computing this analysis.
    """

    features: np.ndarray
    nonconstant: float
    seconds: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", _frozen_array(self.features))


@dataclass(frozen=True, eq=False)
class Estimate:
    """One inference outcome.

    Attributes:
        config: the estimated error configuration (ready to pass to
            ``compressor.compress``).
        target_ratio: the user's TCR.
        adjusted_target: ACR fed to the model (TCR when CA is off).
        nonconstant: the measured non-constant block fraction R.
        features: the five model-input features (stored read-only, so a
            frozen ``Estimate`` cannot be mutated through its array).
        analysis_seconds: end-to-end inference wall time.
        tier: which engine produced ``config`` — ``"model"`` for the
            plain regression path, ``"curve"`` / ``"fraz"`` when guarded
            inference degraded to a fallback.
        confidence: the guarded engine's confidence in the *model* tier
            for this input (1.0 for the unguarded engine).
        fallback_reason: why guarded inference left the model tier
            (empty when the model answered).
        trace_id: the distributed-trace id this estimate was served
            under (0 when untraced). Excluded from equality — two
            estimates from different requests must still compare equal
            when the numbers agree (shard-vs-sequential parity).
    """

    config: float
    target_ratio: float
    adjusted_target: float
    nonconstant: float
    features: np.ndarray
    analysis_seconds: float
    tier: str = "model"
    confidence: float = 1.0
    fallback_reason: str = ""
    trace_id: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", _frozen_array(self.features))

    def __eq__(self, other: object) -> bool:
        # The generated dataclass __eq__ compares the features arrays
        # elementwise and raises on the ambiguous truth value; compare
        # them properly instead.
        if not isinstance(other, Estimate):
            return NotImplemented
        return (
            self.config == other.config
            and self.target_ratio == other.target_ratio
            and self.adjusted_target == other.adjusted_target
            and self.nonconstant == other.nonconstant
            and self.analysis_seconds == other.analysis_seconds
            and self.tier == other.tier
            and self.confidence == other.confidence
            and self.fallback_reason == other.fallback_reason
            and np.array_equal(self.features, other.features)
        )


class InferenceEngine:
    """Maps (dataset, target ratio) -> error configuration.

    ``ctx`` (a :class:`~repro.runtime.RuntimeContext`) is carried for
    API uniformity — inference itself is compression-free, but engines
    hand the context on to the guarded ladder and serving layers.
    """

    def __init__(
        self,
        model,
        compressor: Compressor,
        config: FXRZConfig | None = None,
        *,
        ctx=None,
    ) -> None:
        self.model = model
        self.compressor = compressor
        self.config = config or FXRZConfig()
        self.ctx = ctx

    def analyze(self, data: np.ndarray) -> DatasetAnalysis:
        """Run the target-independent dataset analysis once.

        The returned record can be passed to :meth:`estimate` for any
        number of target ratios on the *same* dataset, skipping the
        feature/block passes each time.
        """
        with obs.span("inference.analyze") as span:
            start = time.perf_counter()
            features = extract_features(
                data, stride=self.config.sampling_stride
            ).selected()
            if self.config.use_adjustment:
                with obs.span(
                    "inference.adjustment",
                    block_size=int(self.config.block_size),
                ):
                    nonconstant = nonconstant_fraction(
                        data,
                        block_size=self.config.block_size,
                        lam=self.config.lam,
                    )
            else:
                nonconstant = 1.0
            span.set_attribute("nonconstant", nonconstant)
            return DatasetAnalysis(
                features=features,
                nonconstant=nonconstant,
                seconds=time.perf_counter() - start,
            )

    def estimate(
        self,
        data: np.ndarray,
        target_ratio: float,
        analysis: DatasetAnalysis | None = None,
    ) -> Estimate:
        """Predict the error configuration for ``target_ratio``.

        Args:
            data: the runtime dataset.
            target_ratio: the user's TCR.
            analysis: a cached :meth:`analyze` result for ``data``; when
                given, the feature/block passes are skipped and
                ``analysis_seconds`` covers only the per-request
                remainder (adjustment + model query).
        """
        if target_ratio <= 0:
            raise InvalidConfiguration("target ratio must be > 0")
        with obs.span(
            "inference.estimate", target_ratio=float(target_ratio)
        ) as span:
            start = time.perf_counter()
            if analysis is None:
                analysis = self.analyze(data)
            features = analysis.features
            acr = adjusted_ratio(target_ratio, analysis.nonconstant)
            with obs.span("inference.model_query"):
                row = np.concatenate((features, [acr]))[None, :]
                raw = float(self.model.predict(row)[0])
            if self.compressor.config_scale == "log":
                # The model predicts the range-normalized bound; rescale by
                # this dataset's own sampled value range.
                raw = 10.0**raw * max(float(features[0]), 1e-30)
            config = self.compressor.normalize_config(raw)
            elapsed = time.perf_counter() - start
            span.set_attributes(adjusted_target=acr, config=config)
            return Estimate(
                config=config,
                target_ratio=float(target_ratio),
                adjusted_target=acr,
                nonconstant=analysis.nonconstant,
                features=features,
                analysis_seconds=elapsed,
            )
