"""First-class estimation objectives: ratio, PSNR and SSIM targets.

The paper frames fixed-*ratio* as the open problem, but production
requests also arrive as quality targets (ROADMAP item 3): "give me the
error configuration that delivers 60 dB", or "the best quality I can
have at 10x". Ratio and quality are two views of one learned curve
(Ratio-Quality modeling, see PAPERS.md), so the estimation target is a
small closed algebra rather than a bare float:

* :class:`RatioTarget` — the paper's TCR, answered by the regression
  forest (compression-free);
* :class:`PSNRTarget` — answered by the calibrated quality model, with
  :mod:`repro.core.psnr_control`'s closed form as the analytic prior;
* :class:`SSIMTarget` — same shape, with a global-SSIM prior derived
  from the uniform-quantization noise model.

Every objective has a canonical string form (``"ratio:10"``,
``"psnr:60"``, ``"ssim:0.99"``) used verbatim in JSONL request files,
outcome-log rows, registry keys and CLI output, so the objective a
request carried is greppable end to end.

:class:`QualityModel` is the quality-side companion of the ratio
forest: it predicts config -> (CR, PSNR) jointly — PSNR from the
analytic prior plus a per-corpus calibration offset, CR from the ratio
model queried over a target grid — which is exactly what
:func:`build_frontier` sweeps to answer Pareto queries like "best PSNR
at CR >= 10" in one call.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidConfiguration

_SQRT3 = float(np.sqrt(3.0))

#: Objective kinds with a quality (distortion) semantic, as opposed to
#: the paper's native ratio semantic.
QUALITY_KINDS = ("psnr", "ssim")


@dataclass(frozen=True)
class Objective:
    """Base of the estimation-target algebra.

    Concrete variants carry one ``value`` and a class-level ``kind``;
    the canonical string ``"<kind>:<value>"`` round-trips through
    :func:`parse_objective` and is what rides JSONL files, work
    messages and outcome-log rows.
    """

    value: float

    kind = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))
        self._validate()

    def _validate(self) -> None:
        if not math.isfinite(self.value):
            raise InvalidConfiguration(
                f"{self.kind or 'objective'} target must be finite"
            )

    @property
    def canonical(self) -> str:
        """The wire form, e.g. ``"ratio:10"`` or ``"psnr:60"``."""
        return f"{self.kind}:{self.value:g}"

    @property
    def is_quality(self) -> bool:
        return self.kind in QUALITY_KINDS

    def __str__(self) -> str:
        return self.canonical


@dataclass(frozen=True)
class RatioTarget(Objective):
    """The paper's native target: a compression ratio (TCR)."""

    kind = "ratio"

    def _validate(self) -> None:
        super()._validate()
        if self.value <= 0:
            raise InvalidConfiguration("target ratio must be > 0")

    @property
    def tcr(self) -> float:
        return self.value


@dataclass(frozen=True)
class PSNRTarget(Objective):
    """A reconstruction-quality target in decibels."""

    kind = "psnr"

    def _validate(self) -> None:
        super()._validate()
        if self.value <= 0:
            raise InvalidConfiguration("target PSNR must be > 0 dB")

    @property
    def db(self) -> float:
        return self.value


@dataclass(frozen=True)
class SSIMTarget(Objective):
    """A global structural-similarity target in (0, 1]."""

    kind = "ssim"

    def _validate(self) -> None:
        super()._validate()
        if not 0.0 < self.value <= 1.0:
            raise InvalidConfiguration("target SSIM must be in (0, 1]")

    @property
    def s(self) -> float:
        return self.value


_KINDS: dict[str, type[Objective]] = {
    "ratio": RatioTarget,
    "psnr": PSNRTarget,
    "ssim": SSIMTarget,
}


def parse_objective(spec: str) -> Objective:
    """Parse a canonical objective string (``"psnr:60"``).

    A bare number is accepted as a ratio target — the pre-objective
    JSONL grammar — so existing request files keep parsing.
    """
    text = str(spec).strip()
    if ":" in text:
        kind, _, raw = text.partition(":")
        cls = _KINDS.get(kind.strip().lower())
        if cls is None:
            raise InvalidConfiguration(
                f"unknown objective kind {kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )
        try:
            return cls(float(raw))
        except ValueError as exc:
            raise InvalidConfiguration(
                f"objective {spec!r} has a non-numeric value"
            ) from exc
    try:
        return RatioTarget(float(text))
    except ValueError as exc:
        raise InvalidConfiguration(
            f"cannot parse objective {spec!r}; expected 'kind:value'"
        ) from exc


def as_objective(value) -> Objective:
    """Coerce an :class:`Objective`, number or canonical string."""
    if isinstance(value, Objective):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return RatioTarget(float(value))
    if isinstance(value, str):
        return parse_objective(value)
    raise InvalidConfiguration(
        f"cannot interpret {value!r} as an objective; pass an Objective, "
        "a ratio number or a 'kind:value' string"
    )


# -- quality model -------------------------------------------------------------


def analytic_bound_for_ssim(data: np.ndarray, target_ssim: float) -> float:
    """Closed-form error bound expected to deliver ``target_ssim``.

    For uniform quantization noise of variance ``eb^2 / 3`` added to a
    signal of variance ``sigma^2``, the global SSIM (with negligible
    stabilizers) is ``2 sigma^2 / (2 sigma^2 + eb^2/3)``; inverting
    gives ``eb = sigma * sqrt(6 (1 - s) / s)``.
    """
    target = SSIMTarget(target_ssim).value
    array = np.asarray(data, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise InvalidConfiguration("SSIM targeting requires finite data")
    sigma = float(np.std(array))
    if sigma == 0.0:
        raise InvalidConfiguration("constant data has undefined SSIM")
    if target >= 1.0:
        # The lossless knee: no positive bound delivers exactly 1.0, so
        # ask for the tightest bound the caller's domain clip allows.
        return float(np.finfo(np.float64).tiny)
    return sigma * math.sqrt(6.0 * (1.0 - target) / target)


@dataclass(frozen=True)
class QualityEstimate:
    """One quality-targeted bound selection.

    Attributes:
        config: the chosen error configuration.
        measured: the quality actually measured at the best probe
            (``None`` when no probe ran — pure analytic answer).
        probes_spent: compressor runs consumed by the refinement.
    """

    config: float
    measured: float | None
    probes_spent: int


@dataclass
class QualityModel:
    """The quality half of the learned config -> (CR, quality) curve.

    The ratio forest learns config(features, ACR); this model supplies
    the orthogonal axis: quality(config). The prior is analytic (the
    uniform-quantization noise model, exact for SZ-style quantizers);
    :meth:`calibrate` refines it into a per-corpus dB offset measured
    against the real compressor, which is the artifact the registry
    publishes beside each ratio model (same fingerprint, see
    :meth:`~repro.serving.registry.ModelRegistry.publish_quality`).

    Attributes:
        compressor: compressor name the calibration was measured on
            (informational; empty for an uncalibrated prior).
        offset_db: measured PSNR miss of the analytic prior
            (``achieved - analytic``), folded into every prediction;
            ``None`` until :meth:`calibrate` runs.
        probes: default refinement budget of :meth:`refine`.
    """

    compressor: str = ""
    offset_db: float | None = None
    probes: int = 2
    metadata: dict = field(default_factory=dict)

    @property
    def calibrated(self) -> bool:
        return self.offset_db is not None

    def trusts(self, compressor) -> bool:
        """Whether the analytic rung alone is acceptable for ``compressor``.

        The closed form is exact for the SZ-style uniform quantizer;
        any other family must either carry a measured calibration
        offset or spend probes.
        """
        return self.calibrated or getattr(compressor, "name", "") == "sz"

    # -- prediction ------------------------------------------------------------

    def predict_psnr(self, value_range: float, config: float) -> float:
        """PSNR the model expects at ``config`` on data of ``value_range``."""
        if config <= 0 or value_range <= 0:
            raise InvalidConfiguration(
                "predict_psnr needs a positive config and value range"
            )
        analytic = 20.0 * math.log10(value_range * _SQRT3 / config)
        return analytic + (self.offset_db or 0.0)

    def analytic_config(self, data: np.ndarray, objective: Objective) -> float:
        """The prior's bound for ``objective`` (offset-adjusted for PSNR)."""
        objective = as_objective(objective)
        if isinstance(objective, PSNRTarget):
            from repro.core.psnr_control import analytic_bound_for_psnr

            bound = analytic_bound_for_psnr(data, objective.db)
            if self.offset_db:
                # The prior over-delivers by offset_db; a positive
                # offset means the bound may loosen by the same margin.
                bound *= 10.0 ** (self.offset_db / 20.0)
            return float(bound)
        if isinstance(objective, SSIMTarget):
            return analytic_bound_for_ssim(data, objective.s)
        raise InvalidConfiguration(
            f"quality model cannot answer a {objective.kind!r} objective"
        )

    # -- measurement -----------------------------------------------------------

    def refine(
        self,
        compressor,
        data: np.ndarray,
        objective: Objective,
        *,
        probes: int | None = None,
        ctx=None,
    ) -> QualityEstimate:
        """Analytic prior refined by probing the real compressor.

        ``probes=0`` returns the domain-clipped analytic answer without
        touching the compressor. PSNR probes share the context's
        compression memo (a bound another caller already measured is
        answered from cache); SSIM probes are always live.
        """
        objective = as_objective(objective)
        if compressor.error_mode != "abs":
            raise InvalidConfiguration(
                "quality targeting requires an absolute-error compressor"
            )
        budget = self.probes if probes is None else int(probes)
        if budget < 0:
            raise InvalidConfiguration("probes must be >= 0")
        if isinstance(objective, PSNRTarget):
            from repro.core.psnr_control import _calibrated_search

            memo = ctx.memo if ctx is not None else None
            bound, achieved, spent = _calibrated_search(
                compressor, data, objective.db, budget, memo
            )
            return QualityEstimate(
                config=float(bound), measured=achieved, probes_spent=spent
            )
        if isinstance(objective, SSIMTarget):
            return self._refine_ssim(compressor, data, objective, budget)
        raise InvalidConfiguration(
            f"quality model cannot refine a {objective.kind!r} objective"
        )

    def _refine_ssim(
        self, compressor, data: np.ndarray, objective: SSIMTarget, budget: int
    ) -> QualityEstimate:
        from repro.analysis.distortion import ssim as measure_ssim

        lo, hi = compressor.config_domain(data)
        bound = float(
            np.clip(self.analytic_config(data, objective), lo, hi)
        )
        target = objective.s
        best_bound, best_measured = bound, None
        best_miss = math.inf
        spent = 0
        for _ in range(budget):
            recon, _blob = compressor.roundtrip(data, bound)
            spent += 1
            achieved = float(measure_ssim(data, recon))
            miss = achieved - target
            if abs(miss) < abs(best_miss):
                best_miss, best_bound, best_measured = miss, bound, achieved
            if abs(miss) < 0.005 or achieved >= 1.0:
                break
            # Invert the noise model at both points: the bound scales by
            # sqrt(((1-t)/t) / ((1-a)/a)).
            a = min(max(achieved, 1e-9), 1.0 - 1e-9)
            t = min(max(target, 1e-9), 1.0 - 1e-9)
            factor = math.sqrt(((1.0 - t) / t) / ((1.0 - a) / a))
            bound = float(np.clip(bound * factor, lo, hi))
        return QualityEstimate(
            config=best_bound, measured=best_measured, probes_spent=spent
        )

    def calibrate(
        self,
        compressor,
        data: np.ndarray,
        *,
        probes: int = 2,
        targets: tuple[float, ...] = (45.0, 60.0),
    ) -> "QualityModel":
        """Measure the analytic prior's dB miss on ``compressor`` in place.

        Runs the compressor at the analytic bound of each target PSNR
        and stores the mean measured-minus-analytic offset; predictions
        and analytic answers fold it in from then on. Returns ``self``.
        """
        if compressor.error_mode != "abs":
            raise InvalidConfiguration(
                "quality calibration requires an absolute-error compressor"
            )
        if probes < 1:
            raise InvalidConfiguration("calibration needs at least one probe")
        from repro.analysis.distortion import psnr as measure_psnr
        from repro.core.psnr_control import analytic_bound_for_psnr

        lo, hi = compressor.config_domain(data)
        misses: list[float] = []
        for target in targets[: max(probes, 1)]:
            bound = float(
                np.clip(analytic_bound_for_psnr(data, target), lo, hi)
            )
            recon, _blob = compressor.roundtrip(data, bound)
            achieved = measure_psnr(data, recon)
            if math.isfinite(achieved):
                misses.append(float(achieved) - float(target))
        if misses:
            self.offset_db = float(np.mean(misses))
            self.compressor = getattr(compressor, "name", self.compressor)
        return self

    # -- persistence (the registry's quality artifact) -------------------------

    def to_dict(self) -> dict:
        return {
            "kind": "fxrz-quality-model",
            "version": 1,
            "compressor": self.compressor,
            "offset_db": self.offset_db,
            "probes": int(self.probes),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QualityModel":
        if not isinstance(payload, dict):
            raise InvalidConfiguration("quality-model payload must be a dict")
        offset = payload.get("offset_db")
        return cls(
            compressor=str(payload.get("compressor", "")),
            offset_db=None if offset is None else float(offset),
            probes=int(payload.get("probes", 2)),
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: str | os.PathLike) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "QualityModel":
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except ValueError as exc:
            raise InvalidConfiguration(
                f"quality model {path} is unreadable: {exc}"
            ) from exc
        return cls.from_dict(payload)


# -- Pareto frontier -----------------------------------------------------------


@dataclass(frozen=True)
class FrontierPoint:
    """One (config, ratio, quality) point on the learned trade-off curve."""

    config: float
    ratio: float
    psnr: float

    def dominates(self, other: "FrontierPoint") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        return (
            self.ratio >= other.ratio
            and self.psnr >= other.psnr
            and (self.ratio > other.ratio or self.psnr > other.psnr)
        )


_QUERY = re.compile(
    r"^\s*(cr|ratio|psnr)\s*>=\s*([0-9]+(?:\.[0-9]+)?)\s*$", re.IGNORECASE
)


@dataclass(frozen=True)
class ParetoFrontier:
    """A non-dominated, CR-monotone set of :class:`FrontierPoint`\\ s.

    Construction prunes dominated points and sorts by ascending ratio,
    so iterating the frontier walks the trade-off curve from "barely
    compressed, best quality" to "most compressed, worst quality";
    PSNR is strictly decreasing along it by the dominance filter.
    """

    points: tuple[FrontierPoint, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", _prune(self.points))

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def best_quality_at(self, min_ratio: float) -> FrontierPoint | None:
        """Highest-PSNR point achieving at least ``min_ratio`` (one call)."""
        eligible = [p for p in self.points if p.ratio >= float(min_ratio)]
        return max(eligible, key=lambda p: p.psnr) if eligible else None

    def best_ratio_at(self, min_psnr: float) -> FrontierPoint | None:
        """Highest-ratio point keeping at least ``min_psnr`` dB."""
        eligible = [p for p in self.points if p.psnr >= float(min_psnr)]
        return max(eligible, key=lambda p: p.ratio) if eligible else None

    def query(self, expr: str) -> FrontierPoint | None:
        """Answer a constraint query: ``"cr>=10"`` or ``"psnr>=60"``.

        ``cr>=N`` (alias ``ratio>=N``) returns the best quality at
        ratio >= N; ``psnr>=N`` returns the best ratio at quality >= N.
        """
        match = _QUERY.match(str(expr))
        if match is None:
            raise InvalidConfiguration(
                f"cannot parse frontier query {expr!r}; expected "
                "'cr>=N' or 'psnr>=N'"
            )
        axis, threshold = match.group(1).lower(), float(match.group(2))
        if axis in ("cr", "ratio"):
            return self.best_quality_at(threshold)
        return self.best_ratio_at(threshold)


def _prune(points) -> tuple[FrontierPoint, ...]:
    """Non-dominated subset, ratio-ascending (ties keep the best point)."""
    ordered = sorted(points, key=lambda p: (p.ratio, p.psnr))
    kept: list[FrontierPoint] = []
    best_psnr = -math.inf
    for point in reversed(ordered):  # descending ratio
        if point.psnr > best_psnr:
            kept.append(point)
            best_psnr = point.psnr
    kept.reverse()
    return tuple(kept)


def build_frontier(
    engine,
    data: np.ndarray,
    analysis=None,
    *,
    ratios=None,
    points: int = 12,
    quality: QualityModel | None = None,
) -> ParetoFrontier:
    """Sweep the ratio model over a target grid into a Pareto frontier.

    For each target ratio the engine's (compression-free) estimate
    yields a config; the quality model predicts the PSNR that config
    delivers on this dataset. The joint sweep is the learned
    config -> (CR, PSNR) curve — dominated points (model noise) are
    pruned and the result answers "best quality at CR >= N" in one
    :meth:`ParetoFrontier.best_quality_at` call.

    Args:
        engine: anything exposing ``analyze(data)`` and
            ``estimate(data, ratio, analysis=...)`` plus a
            ``compressor`` — the plain or the guarded engine.
        data: the runtime dataset.
        analysis: a cached ``analyze`` result to reuse across the grid.
        ratios: explicit target-ratio grid; defaults to ``points``
            log-spaced targets in [2, 64].
        points: grid size when ``ratios`` is not given.
        quality: the quality model predicting PSNR; a fresh analytic
            prior when not given.
    """
    compressor = getattr(engine, "compressor", None)
    if compressor is None or compressor.error_mode != "abs":
        raise InvalidConfiguration(
            "frontier needs an absolute-error compressor"
        )
    if ratios is None:
        if points < 2:
            raise InvalidConfiguration("frontier needs at least 2 points")
        ratios = np.geomspace(2.0, 64.0, int(points))
    quality = quality or QualityModel()
    if analysis is None:
        analysis = engine.analyze(data)
    value_range = float(analysis.features[0])
    if value_range <= 0:
        raise InvalidConfiguration(
            "frontier is undefined for constant data"
        )
    swept: list[FrontierPoint] = []
    for ratio in ratios:
        estimate = engine.estimate(data, float(ratio), analysis=analysis)
        if estimate.config <= 0 or not math.isfinite(estimate.config):
            continue
        swept.append(
            FrontierPoint(
                config=float(estimate.config),
                ratio=float(ratio),
                psnr=quality.predict_psnr(value_range, float(estimate.config)),
            )
        )
    if not swept:
        raise InvalidConfiguration(
            "no target in the grid produced a usable configuration"
        )
    return ParetoFrontier(points=tuple(swept))
