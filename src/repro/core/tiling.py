"""Tiled fixed-ratio compression.

Scientific data libraries (HDF5, ADIOS2 — the paper's Sec. I
motivation) store arrays as independently compressed chunks. This
module applies a trained FXRZ pipeline *per tile*: each tile gets its
own feature pass and error configuration, so locally smooth tiles
receive looser bounds and busy tiles tighter ones, while the aggregate
ratio tracks the user's target.

The per-tile decision is exactly the framework's cheap inference, so
tiling costs no compressor runs beyond the unavoidable one per tile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import CompressedBlob
from repro.core.adjustment import nonconstant_fraction
from repro.core.pipeline import FXRZ
from repro.errors import InvalidConfiguration, NotFittedError
from repro.runtime.compat import UNSET, executor_for_jobs, legacy


@dataclass(frozen=True)
class TileRecord:
    """One compressed tile."""

    index: tuple[int, ...]
    slices: tuple[slice, ...]
    blob: CompressedBlob


@dataclass(frozen=True)
class TiledResult:
    """Outcome of a tiled fixed-ratio compression."""

    tiles: list[TileRecord]
    original_shape: tuple[int, ...]
    target_ratio: float

    @property
    def compressed_nbytes(self) -> int:
        return sum(t.blob.nbytes for t in self.tiles)

    @property
    def original_nbytes(self) -> int:
        return sum(t.blob.original_nbytes for t in self.tiles)

    @property
    def measured_ratio(self) -> float:
        return self.original_nbytes / self.compressed_nbytes

    @property
    def estimation_error(self) -> float:
        return abs(self.target_ratio - self.measured_ratio) / self.target_ratio


def tile_grid(
    shape: tuple[int, ...], tile_shape: tuple[int, ...]
) -> list[tuple[tuple[int, ...], tuple[slice, ...]]]:
    """Cover ``shape`` with axis-aligned tiles of at most ``tile_shape``.

    Border tiles are smaller rather than padded, so every element
    belongs to exactly one tile.
    """
    if len(tile_shape) != len(shape):
        raise InvalidConfiguration("tile_shape rank must match data rank")
    if any(t < 1 for t in tile_shape):
        raise InvalidConfiguration("tile dimensions must be >= 1")
    counts = [(n + t - 1) // t for n, t in zip(shape, tile_shape)]
    grid = []
    for index in itertools.product(*(range(c) for c in counts)):
        slices = tuple(
            slice(i * t, min((i + 1) * t, n))
            for i, t, n in zip(index, tile_shape, shape)
        )
        grid.append((index, slices))
    return grid


def _entirely_constant(pipeline: FXRZ, tile: np.ndarray) -> bool:
    cfg = pipeline.config
    if not cfg.use_adjustment:
        return False
    return (
        nonconstant_fraction(tile, block_size=cfg.block_size, lam=cfg.lam)
        == 0.0
    )


def _constant_tile_config(pipeline: FXRZ, tile: np.ndarray) -> float:
    """A config for a tile whose every block sits below the
    constancy threshold: an error bound at that same threshold (the
    variation CA already calls noise), or the loosest precision."""
    compressor = pipeline.compressor
    if compressor.error_mode == "abs":
        bound = pipeline.config.lam * abs(float(tile.mean()))
        return compressor.normalize_config(bound if bound > 0.0 else 1e-12)
    lo, _ = compressor.config_domain()
    return compressor.normalize_config(lo)


def _tile_task(task, arrays: dict, context: dict) -> TileRecord:
    """Analyze, estimate, and compress one tile (executor worker).

    The feature pass, the model query, and the compression are all
    per-tile and independent of every other tile, so the whole chunk
    job runs where the tile is scheduled; the parent only collects the
    finished :class:`TileRecord` (a few compressed bytes, not a field).
    """
    index, slices = task
    pipeline = context["pipeline"]
    # No ascontiguousarray here: the feature pass reads the view as-is
    # and the compressors' input validation makes tiles contiguous
    # exactly when a copy is unavoidable.
    tile = arrays["data"][slices]
    if _entirely_constant(pipeline, tile):
        # R = 0: estimation is degenerate (the adjustment layer
        # rejects it), but the tile itself is trivial — compress
        # it directly under the constancy tolerance.
        blob = pipeline.compressor.compress(
            tile, _constant_tile_config(pipeline, tile)
        )
    else:
        blob = pipeline.compress_to_ratio(tile, context["target_ratio"]).blob
    return TileRecord(index=index, slices=slices, blob=blob)


class TiledFixedRatio:
    """Apply a trained pipeline tile by tile.

    Args:
        pipeline: a fitted :class:`~repro.core.pipeline.FXRZ`.
        tile_shape: chunk dimensions (HDF5-chunk style).
        ctx: a :class:`~repro.runtime.RuntimeContext` supplying the
            tile-level executor; defaults to the pipeline's own
            context. Tiles are independent by construction, so results
            are identical at any worker count; the full field ships to
            process workers once via shared memory.
        n_jobs: deprecated — pass ``ctx=RuntimeContext(jobs=...)``.
        executor: deprecated — pass a context whose config builds one.
    """

    def __init__(
        self,
        pipeline: FXRZ,
        tile_shape: tuple[int, ...],
        n_jobs=UNSET,
        executor=UNSET,
        *,
        ctx=None,
    ) -> None:
        if not pipeline.is_fitted:
            raise NotFittedError("pipeline must be fitted before tiling")
        self.pipeline = pipeline
        self.tile_shape = tuple(int(t) for t in tile_shape)
        if ctx is None:
            ctx = getattr(pipeline, "ctx", None)
        n_jobs = legacy("TiledFixedRatio", "n_jobs", n_jobs)
        executor = legacy("TiledFixedRatio", "executor", executor)
        if executor is None and n_jobs is not None:
            executor = executor_for_jobs(n_jobs)
        if executor is None and ctx is not None:
            executor = ctx.executor
        self.ctx = ctx
        self.executor = executor

    def compress(self, data: np.ndarray, target_ratio: float) -> TiledResult:
        """Fixed-ratio compress every tile independently."""
        if target_ratio <= 0:
            raise InvalidConfiguration("target ratio must be > 0")
        data = np.asarray(data)
        grid = tile_grid(data.shape, self.tile_shape)
        context = {"pipeline": self.pipeline, "target_ratio": float(target_ratio)}
        if self.executor is not None and len(grid) > 1:
            # Fat batches: one pool task per worker, not per tile —
            # small tiles would otherwise pay dispatch per chunk.
            tiles = self.executor.map_batched(
                _tile_task, grid, shared={"data": data}, context=context
            )
        else:
            arrays = {"data": data}
            tiles = [_tile_task(task, arrays, context) for task in grid]
        return TiledResult(
            tiles=tiles,
            original_shape=data.shape,
            target_ratio=float(target_ratio),
        )

    def decompress(self, result: TiledResult) -> np.ndarray:
        """Reassemble the full array from its tiles."""
        if not result.tiles:
            raise InvalidConfiguration("result holds no tiles")
        dtype = np.dtype(result.tiles[0].blob.original_dtype)
        out = np.empty(result.original_shape, dtype=dtype)
        for tile in result.tiles:
            out[tile.slices] = self.pipeline.compressor.decompress(tile.blob)
        return out
