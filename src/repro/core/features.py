"""Feature extraction (paper Sec. IV-C) with uniform sampling (IV-E1).

Eight candidate features are computed; the five the paper adopts
(value range, mean value, MND, MLD, MSD) are exposed as the model
input, while the three gradient features exist for the Table II
correlation study that justifies excluding them.

All features are computed on a stride-K uniform subsample of the grid
(K=4 -> ~1.5 % of points in 3-D), which the paper shows costs almost
no accuracy while cutting analysis time ~20x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.compressors.predictors import lorenzo_residuals
from repro.errors import InvalidConfiguration

#: All candidate features, in presentation order (Table II columns).
FEATURE_NAMES = (
    "value_range",
    "mean_value",
    "mnd",
    "mld",
    "msd",
    "mean_gradient",
    "min_gradient",
    "max_gradient",
)

#: The five features FXRZ adopts (Sec. IV-C conclusion).
SELECTED_FEATURES = ("value_range", "mean_value", "mnd", "mld", "msd")


@dataclass(frozen=True)
class FeatureVector:
    """The eight candidate features of one dataset."""

    value_range: float
    mean_value: float
    mnd: float
    mld: float
    msd: float
    mean_gradient: float
    min_gradient: float
    max_gradient: float

    def selected(self) -> np.ndarray:
        """The five adopted features as a model-input vector."""
        return np.array([getattr(self, n) for n in SELECTED_FEATURES])

    def all_features(self) -> np.ndarray:
        """All eight candidate features (Table II study)."""
        return np.array([getattr(self, n) for n in FEATURE_NAMES])


def uniform_sample(data: np.ndarray, stride: int) -> np.ndarray:
    """Stride-K uniform sampling along every axis (Fig. 5).

    Keeps the grid structure so neighbor-based features stay
    well-defined on the subsampled lattice.
    """
    if stride < 1:
        raise InvalidConfiguration("stride must be >= 1")
    if stride == 1:
        return data
    key = tuple(slice(0, None, stride) for _ in data.shape)
    sampled = data[key]
    # Never sample below the minimum lattice the features need.
    if any(n < 2 for n in sampled.shape):
        return data
    return sampled


def _difference_pass(
    data: np.ndarray,
) -> tuple[float, tuple[float, float, float]]:
    """Fused per-axis sweep: ``(MND, (mean, min, max) |gradient|)``.

    MND and the gradient statistics both consume each axis's first
    differences, so one loop computes both: the difference slab is
    materialized once per axis into a reused scratch buffer (instead of
    a fresh ``np.diff`` allocation per axis per feature), and the final
    neighbor-mean/difference/abs chain runs in place. Axes shorter than
    2 points contribute nothing; a grid with no usable axis reports
    zeros (the degenerate-lattice contract of :func:`extract_features`).
    """
    neighbor_sum = np.zeros_like(data)
    neighbor_count = np.zeros(data.shape, dtype=np.int64)
    scratch = np.empty(data.size, dtype=np.float64)
    total = 0.0
    count = 0
    grad_lo = np.inf
    grad_hi = 0.0
    for axis in range(data.ndim):
        if data.shape[axis] < 2:
            continue
        lo = [slice(None)] * data.ndim
        hi = [slice(None)] * data.ndim
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        lo_t, hi_t = tuple(lo), tuple(hi)
        forward, backward = data[hi_t], data[lo_t]
        neighbor_sum[lo_t] += forward
        neighbor_count[lo_t] += 1
        neighbor_sum[hi_t] += backward
        neighbor_count[hi_t] += 1
        diff = scratch[: forward.size].reshape(forward.shape)
        np.subtract(forward, backward, out=diff)
        np.abs(diff, out=diff)
        total += float(diff.sum())
        count += diff.size
        grad_lo = min(grad_lo, float(diff.min()))
        grad_hi = max(grad_hi, float(diff.max()))
    if count == 0:
        return 0.0, (0.0, 0.0, 0.0)
    np.divide(neighbor_sum, neighbor_count, out=neighbor_sum)
    np.subtract(data, neighbor_sum, out=neighbor_sum)
    np.abs(neighbor_sum, out=neighbor_sum)
    return float(neighbor_sum.mean()), (total / count, float(grad_lo), grad_hi)


def _mean_neighbor_difference(data: np.ndarray) -> float:
    """Mean |value - mean(face neighbors)| over all points."""
    return _difference_pass(data)[0]


def _mean_lorenzo_difference(data: np.ndarray) -> float:
    """Mean |value - Lorenzo prediction| on the interior (Eqs. 1-2)."""
    residuals = lorenzo_residuals(data)
    interior = tuple(slice(1, None) if n > 1 else slice(None) for n in data.shape)
    region = residuals[interior]
    if region.size == 0:
        region = residuals
    return float(np.mean(np.abs(region)))


def _mean_spline_difference(data: np.ndarray) -> float:
    """Mean |value - cross-axis average of the Eq. 3 spline fit|.

    For each axis with length > 6, the cubic fit
    (-d[i-3] + 9 d[i-1] + 9 d[i+1] - d[i+3]) / 16 is evaluated on that
    axis's interior; per point, fits from all applicable axes are
    averaged before the difference is taken.
    """
    fit_sum = np.zeros_like(data, dtype=np.float64)
    fit_count = np.zeros(data.shape, dtype=np.int64)
    for axis in range(data.ndim):
        n = data.shape[axis]
        if n <= 6:
            continue

        def shifted(offset: int) -> np.ndarray:
            sl = [slice(None)] * data.ndim
            sl[axis] = slice(3 + offset, n - 3 + offset)
            return data[tuple(sl)]

        fit = (
            -shifted(-3) + 9.0 * shifted(-1) + 9.0 * shifted(1) - shifted(3)
        ) / 16.0
        target = [slice(None)] * data.ndim
        target[axis] = slice(3, n - 3)
        fit_sum[tuple(target)] += fit
        fit_count[tuple(target)] += 1
    covered = fit_count > 0
    if not covered.any():
        # Grid too small for any cubic stencil; degrade to MND, the
        # closest smoothness proxy.
        return _mean_neighbor_difference(data)
    avg_fit = fit_sum[covered] / fit_count[covered]
    return float(np.mean(np.abs(data[covered] - avg_fit)))


def _gradient_stats(data: np.ndarray) -> tuple[float, float, float]:
    """(mean, min, max) of |first differences| across all axes."""
    return _difference_pass(data)[1]


def extract_features(data: np.ndarray, stride: int = 1) -> FeatureVector:
    """Compute the eight candidate features on a stride-K subsample.

    Raises:
        InvalidConfiguration: empty input, or non-finite values in the
            sampled view — NaN/Inf would silently poison every feature
            and, downstream, the model's prediction. Callers with dirty
            fields should patch them first
            (:func:`repro.robustness.validate_field`).
    """
    data = np.asarray(data)
    if data.size == 0:
        raise InvalidConfiguration("cannot extract features from empty data")
    with obs.span("features.extract", stride=int(stride)) as span:
        sampled = uniform_sample(np.asarray(data, dtype=np.float64), stride)
        span.set_attribute("points", int(sampled.size))
        if not np.isfinite(sampled).all():
            raise InvalidConfiguration(
                "field contains non-finite values in its sampled view; "
                "patch or reject it (repro.robustness.validate_field) "
                "before extracting features"
            )
        if sampled.size == 1:
            # A single point has no neighbors: every difference-based
            # feature is degenerate. Report the well-defined zeros instead
            # of dividing by an empty neighbor count.
            value = float(sampled.reshape(()))
            return FeatureVector(0.0, value, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mnd, (mean_grad, min_grad, max_grad) = _difference_pass(sampled)
        return FeatureVector(
            value_range=float(np.ptp(sampled)),
            mean_value=float(sampled.mean()),
            mnd=mnd,
            mld=_mean_lorenzo_difference(sampled),
            msd=_mean_spline_difference(sampled),
            mean_gradient=mean_grad,
            min_gradient=min_grad,
            max_gradient=max_grad,
        )
