"""Model lifecycle: serve -> observe -> retrain -> promote.

The paper trains per-corpus ratio models offline and serves them
frozen; production serving traffic, however, is free training data —
every compress call and FRaZ fallback yields a (features, predicted
config, *measured* CR) outcome. This package closes the loop between
the serving path and the :class:`~repro.serving.ModelRegistry`:

* :class:`OutcomeLog` — an append-only, crash-safe JSONL log of
  serving outcomes (estimate-only and measured), with rotation and a
  torn-line-tolerant replay reader;
* :class:`DriftDetector` — rolling-window comparison of the outcome
  stream against the model's training-feature envelope (OOD rate) and
  its calibration error (EWMA), with hysteresis so one bad batch does
  not flap the state;
* :class:`BackgroundRetrainer` — fits candidate models from the
  original training matrix plus measured outcomes, in worker
  processes, without blocking the serving path;
* :func:`evaluate_canary` / :func:`run_canary` — replay a held-out
  slice of the outcome log through incumbent and candidate; the
  registry alias flips only when the candidate's median relative CR
  error beats the incumbent's.

See ``docs/LIFECYCLE.md`` for the loop diagram and the promotion /
rollback contract.
"""

from repro.lifecycle.drift import DriftDetector, DriftSnapshot
from repro.lifecycle.outcomes import (
    OutcomeLog,
    OutcomeRecord,
    OutcomeReplay,
    read_outcomes,
)
from repro.lifecycle.promote import (
    CanaryReport,
    evaluate_canary,
    quality_errors,
    run_canary,
)
from repro.lifecycle.retrain import (
    BackgroundRetrainer,
    RetrainResult,
    training_rows_from_outcomes,
)

__all__ = [
    "BackgroundRetrainer",
    "CanaryReport",
    "DriftDetector",
    "DriftSnapshot",
    "OutcomeLog",
    "OutcomeRecord",
    "OutcomeReplay",
    "RetrainResult",
    "evaluate_canary",
    "quality_errors",
    "read_outcomes",
    "run_canary",
    "training_rows_from_outcomes",
]
