"""Drift detection over the serving-outcome stream.

Two independent signals, evaluated over a rolling window of
:class:`~repro.lifecycle.outcomes.OutcomeRecord`\\ s:

* **Feature OOD rate** — the fraction of recent requests whose
  ``[features..., ACR]`` row falls outside the model's training
  :class:`~repro.robustness.confidence.FeatureEnvelope`. A model can
  only answer the distribution it saw; traffic migrating out of the
  envelope is drift even before any error is measured.
* **Calibration error EWMA** — an exponentially weighted average of
  the relative CR error of *measured* outcomes (|TCR - MCR| / TCR).
  This catches the opposite failure: traffic that looks in-envelope
  but whose ratio-config relationship has shifted (e.g. a smooth field
  turned noisy at similar amplitude).

Either signal crossing its threshold makes an observation "hot";
``hysteresis`` consecutive hot observations trip the detector to
``drifting``, and the same count of cool observations returns it to
``stable`` — one bad batch cannot flap the state. The detector is the
trigger side of the retrain loop: the
:class:`~repro.lifecycle.retrain.BackgroundRetrainer` polls it via
``maybe_trigger``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import InvalidConfiguration
from repro.lifecycle.outcomes import OutcomeRecord

STABLE = "stable"
DRIFTING = "drifting"

_BREAKER_CODES = {STABLE: 0.0, DRIFTING: 1.0}


@dataclass(frozen=True)
class DriftSnapshot:
    """Frozen view of the detector after one observation.

    Attributes:
        state: ``"stable"`` or ``"drifting"``.
        samples: observations currently in the rolling window.
        ood_rate: fraction of the window outside the envelope.
        error_ewma: calibration-error EWMA (``None`` until a measured
            outcome arrives).
        hot_streak: consecutive hot observations so far.
        cool_streak: consecutive cool observations so far.
        trips: stable -> drifting transitions since construction.
    """

    state: str
    samples: int
    ood_rate: float
    error_ewma: float | None
    hot_streak: int
    cool_streak: int
    trips: int


class DriftDetector:
    """Hysteretic drift detector over a rolling outcome window.

    Args:
        envelope: the model's training
            :class:`~repro.robustness.confidence.FeatureEnvelope`
            (features + ACR dimensions).
        window: rolling window length (observations).
        ood_threshold: window OOD fraction at or above which an
            observation is hot.
        error_threshold: calibration-error EWMA at or above which an
            observation is hot.
        hysteresis: consecutive hot (cool) observations required to
            enter (leave) ``drifting``.
        min_samples: observations required before the detector may
            trip at all (a two-request window is noise, not evidence).
        error_alpha: EWMA smoothing factor in (0, 1].
        registry: a :class:`~repro.obs.MetricsRegistry`; when given the
            detector exports ``repro_lifecycle_drift_state`` /
            ``_drift_ood_rate`` / ``_drift_error_ewma`` gauges and a
            ``repro_lifecycle_drift_trips_total`` counter.
    """

    def __init__(
        self,
        envelope,
        *,
        window: int = 256,
        ood_threshold: float = 0.5,
        error_threshold: float = 0.25,
        hysteresis: int = 3,
        min_samples: int = 16,
        error_alpha: float = 0.2,
        registry=None,
    ) -> None:
        if window < 1:
            raise InvalidConfiguration("window must be >= 1")
        if not 0.0 < ood_threshold <= 1.0:
            raise InvalidConfiguration("ood_threshold must be in (0, 1]")
        if error_threshold <= 0.0:
            raise InvalidConfiguration("error_threshold must be > 0")
        if hysteresis < 1:
            raise InvalidConfiguration("hysteresis must be >= 1")
        if min_samples < 1:
            raise InvalidConfiguration("min_samples must be >= 1")
        if not 0.0 < error_alpha <= 1.0:
            raise InvalidConfiguration("error_alpha must be in (0, 1]")
        self.envelope = envelope
        self.window = int(window)
        self.ood_threshold = float(ood_threshold)
        self.error_threshold = float(error_threshold)
        self.hysteresis = int(hysteresis)
        self.min_samples = int(min_samples)
        self.error_alpha = float(error_alpha)
        self._lock = threading.Lock()
        self._ood: deque[bool] = deque(maxlen=self.window)
        self._error_ewma: float | None = None
        self._hot_streak = 0
        self._cool_streak = 0
        self._state = STABLE
        self._trips = 0
        self._trips_counter = None
        if registry is not None:
            self._bind_metrics(registry)

    @classmethod
    def for_pipeline(
        cls, pipeline, *, envelope_margin: float = 0.05, **options
    ) -> "DriftDetector":
        """A detector over a fitted pipeline's training envelope."""
        from repro.robustness.guarded import GuardedInferenceEngine

        engine = GuardedInferenceEngine(
            pipeline, fallback="none", envelope_margin=envelope_margin
        )
        return cls(engine.envelope, **options)

    # -- observation -----------------------------------------------------------

    def observe(self, record: OutcomeRecord) -> DriftSnapshot:
        """Fold one outcome into the window; returns the new state."""
        row = np.concatenate(
            (np.asarray(record.features, dtype=np.float64),
             [float(record.adjusted_target)])
        )
        violation = float(self.envelope.violation(row))
        relative_error = record.relative_error
        with self._lock:
            self._ood.append(violation > 0.0)
            if relative_error is not None:
                if self._error_ewma is None:
                    self._error_ewma = float(relative_error)
                else:
                    self._error_ewma = (
                        (1.0 - self.error_alpha) * self._error_ewma
                        + self.error_alpha * float(relative_error)
                    )
            ood_rate = sum(self._ood) / len(self._ood)
            hot = len(self._ood) >= self.min_samples and (
                ood_rate >= self.ood_threshold
                or (
                    self._error_ewma is not None
                    and self._error_ewma >= self.error_threshold
                )
            )
            if hot:
                self._hot_streak += 1
                self._cool_streak = 0
                if (
                    self._state == STABLE
                    and self._hot_streak >= self.hysteresis
                ):
                    self._state = DRIFTING
                    self._trips += 1
                    tripped = True
                else:
                    tripped = False
            else:
                self._cool_streak += 1
                self._hot_streak = 0
                tripped = False
                if (
                    self._state == DRIFTING
                    and self._cool_streak >= self.hysteresis
                ):
                    self._state = STABLE
            snapshot = self._snapshot_locked(ood_rate)
        if tripped:
            if self._trips_counter is not None:
                self._trips_counter.inc()
            # A zero-duration event span marking the trip, so retrain
            # traces can be lined up against what set them off.
            with obs.span(
                "lifecycle.drift_trip",
                ood_rate=snapshot.ood_rate,
                error_ewma=snapshot.error_ewma,
                samples=snapshot.samples,
            ):
                pass
        return snapshot

    def observe_all(self, records) -> DriftSnapshot:
        """Fold a batch of outcomes; returns the final state."""
        snapshot = self.snapshot
        for record in records:
            snapshot = self.observe(record)
        return snapshot

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def drifting(self) -> bool:
        return self.state == DRIFTING

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    @property
    def snapshot(self) -> DriftSnapshot:
        with self._lock:
            rate = sum(self._ood) / len(self._ood) if self._ood else 0.0
            return self._snapshot_locked(rate)

    def _snapshot_locked(self, ood_rate: float) -> DriftSnapshot:
        return DriftSnapshot(
            state=self._state,
            samples=len(self._ood),
            ood_rate=float(ood_rate),
            error_ewma=self._error_ewma,
            hot_streak=self._hot_streak,
            cool_streak=self._cool_streak,
            trips=self._trips,
        )

    def reset(self) -> None:
        """Clear the window and return to ``stable`` (keeps ``trips``).

        The retrainer calls this after a promotion: the old window
        described the *previous* model's calibration, and judging the
        fresh model by it would re-trip immediately.
        """
        with self._lock:
            self._ood.clear()
            self._error_ewma = None
            self._hot_streak = 0
            self._cool_streak = 0
            self._state = STABLE

    # -- metrics ---------------------------------------------------------------

    def _bind_metrics(self, registry) -> None:
        self._trips_counter = registry.counter(
            "repro_lifecycle_drift_trips_total",
            "stable -> drifting transitions",
        )
        state_gauge = registry.gauge(
            "repro_lifecycle_drift_state",
            "drift detector state (0 stable, 1 drifting)",
        )
        ood_gauge = registry.gauge(
            "repro_lifecycle_drift_ood_rate",
            "fraction of the rolling window outside the training envelope",
        )
        error_gauge = registry.gauge(
            "repro_lifecycle_drift_error_ewma",
            "calibration-error EWMA of measured outcomes",
        )

        def collect() -> None:
            snapshot = self.snapshot
            state_gauge.set(_BREAKER_CODES.get(snapshot.state, -1.0))
            ood_gauge.set(snapshot.ood_rate)
            if snapshot.error_ewma is not None:
                error_gauge.set(snapshot.error_ewma)

        registry.register_collector(collect)
