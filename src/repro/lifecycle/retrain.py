"""Background retraining from measured serving outcomes.

A measured outcome is a ground-truth training row: configuration ``c``
really did deliver ratio ``m`` on a dataset with known features, so
``[features..., adjusted_ratio(m, R)] -> c`` is exactly the mapping the
regression model learns — no compressor runs needed to harvest it. The
:class:`BackgroundRetrainer` combines the incumbent's original
training matrix with those rows (oversampled, so a few dozen measured
outcomes are not drowned by hundreds of augmented curve samples), fits
a small pool of candidate forests in worker processes via the
session's :class:`~repro.parallel.ParallelExecutor`, and publishes the
best candidate **unpromoted**. Promotion is the canary's call (see
:mod:`repro.lifecycle.promote`): the alias flips only when the
candidate beats the incumbent on a held-out slice of the outcome log.

The retrain itself runs on a daemon thread (the fit lands in executor
worker processes when the session has one), so the serving path never
blocks on it — the drift detector trips, the retrainer kicks off, and
serving keeps answering with the incumbent until the alias flips.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro import obs
from repro.compressors import get_compressor
from repro.core.adjustment import adjusted_ratio
from repro.core.inference import InferenceEngine
from repro.core.pipeline import FXRZ
from repro.core.training import default_model_factory
from repro.errors import InvalidConfiguration, ReproError
from repro.lifecycle.promote import (
    CanaryReport,
    canary_report_from_medians,
    replay_errors,
)
from repro.serving.registry import LATEST


def training_rows_from_outcomes(
    records, *, log_scale: bool, oversample: int = 1
) -> tuple[np.ndarray, np.ndarray, int]:
    """Measured outcomes as model rows ``(x, y, records_used)``.

    Mirrors :meth:`~repro.core.training.TrainingEngine.build_training_matrix`
    exactly: the ACR comes from the *measured* ratio through the
    record's non-constant fraction, and log-scale compressors regress
    the range-normalized log bound. ``oversample`` replicates each row
    so a handful of outcomes carries weight against hundreds of
    augmented curve samples.
    """
    if oversample < 1:
        raise InvalidConfiguration("oversample must be >= 1")
    rows: list[np.ndarray] = []
    targets: list[float] = []
    used = 0
    for record in records:
        if not record.trainable:
            continue
        try:
            acr = adjusted_ratio(record.measured_ratio, record.nonconstant)
        except InvalidConfiguration:
            continue
        features = np.asarray(record.features, dtype=np.float64)
        scale = max(float(features[0]), 1e-30)
        target = (
            math.log10(record.config / scale) if log_scale else record.config
        )
        row = np.concatenate((features, [acr]))
        used += 1
        for _ in range(int(oversample)):
            rows.append(row)
            targets.append(target)
    if not rows:
        return np.empty((0, 0)), np.empty(0), 0
    return np.vstack(rows), np.asarray(targets, dtype=np.float64), used


#: Sentinel task: score the shipped incumbent model instead of fitting.
_SCORE_INCUMBENT = -1


def _fit_and_score_task(task, arrays, context):
    """Executor task: fit one candidate and replay it on the holdout.

    Module-level and picklable so process backends can run it. Both the
    forest fit and the canary bisection (hundreds of pure-Python model
    queries) happen here, in the worker — the serving process's thread
    only waits on the pipe, so estimate latency stays flat during a
    retrain. ``task`` is a candidate seed, or ``_SCORE_INCUMBENT`` to
    replay the registry's incumbent without fitting anything.

    ``context["nice"]`` (when > 0) drops the worker's scheduling
    priority first — Unix niceness plus, where the platform has it, the
    ``SCHED_IDLE`` class — so on CPU-starved hosts the serving process
    wins every contested time slice and the retrain soaks up idle
    cycles only. The deprioritization sticks to the pooled worker
    process — the retrainer assumes the executor's workers are cheap to
    keep deprioritized (they serve batch work, never a latency path).
    """
    nice = int(context.get("nice", 0))
    if nice > 0:
        try:
            current = os.nice(0)
            if current < nice:
                os.nice(nice - current)
        except OSError:
            pass  # priority is an optimization, never a requirement
        try:
            os.sched_setscheduler(0, os.SCHED_IDLE, os.sched_param(0))
        except (AttributeError, OSError):
            pass  # idle class is Linux-only; niceness already applied
    seed = int(task)
    if seed == _SCORE_INCUMBENT:
        # Load the incumbent from disk HERE rather than shipping the
        # forest through the task context: pickling a forest is a long
        # GIL-held pause in the serving process.
        from repro.serving.registry import ModelRegistry

        registry = ModelRegistry(context["registry_root"])
        model = registry.load(
            context["compressor"],
            context["fingerprint"],
            context["version"],
        ).model
        fitted = None
    else:
        x = np.asarray(arrays["x"], dtype=np.float64)
        y = np.asarray(arrays["y"], dtype=np.float64)
        model = default_model_factory(seed)
        model.fit(x, y)
        fitted = model
    carrier = SimpleNamespace(
        model=model, compressor=get_compressor(context["compressor"])
    )
    errors = replay_errors(carrier, context["holdout"])
    median = float(np.median(errors)) if errors else float("inf")
    return fitted, median


def clone_with_model(base: FXRZ, model) -> FXRZ:
    """A pipeline sharing ``base``'s corpus/config but serving ``model``.

    The clone keeps the training records (so its corpus fingerprint,
    envelope and curves match the entry it will be published into) and
    swaps only the regression model — the same surgery
    :func:`~repro.core.persistence.load_pipeline` performs when
    rebuilding a pipeline from an archive.
    """
    clone = FXRZ(
        base.compressor, config=base.config, ctx=getattr(base, "ctx", None)
    )
    clone._training.records = list(base._training.records)
    clone._training._model = model
    clone._inference = InferenceEngine(
        model, base.compressor, config=base.config,
        ctx=getattr(base, "ctx", None),
    )
    return clone


@dataclass(frozen=True)
class RetrainResult:
    """What one retrain attempt did.

    Attributes:
        triggered_by: ``"drift"``, ``"samples"``, or ``"manual"``.
        trainable: trainable records seen in the replay.
        train_rows: outcome records folded into the candidate fit.
        holdout: records reserved for the canary replay.
        candidate: the published (unpromoted) candidate, if any.
        report: the canary verdict, if the canary ran.
        promoted: the version now serving as ``latest`` (``None`` when
            the candidate was held back or promotion was disabled).
        seconds: wall time of the whole attempt.
        reason: human-readable summary.
    """

    triggered_by: str
    trainable: int
    train_rows: int
    holdout: int
    candidate: object | None
    report: CanaryReport | None
    promoted: object | None
    seconds: float
    reason: str


class BackgroundRetrainer:
    """Drift- or volume-triggered candidate training with canary gating.

    Args:
        registry: the :class:`~repro.serving.ModelRegistry` holding the
            incumbent (and receiving candidates).
        compressor: registry entry coordinate.
        fingerprint: registry entry coordinate (``None`` resolves a
            single-entry compressor).
        detector: a :class:`~repro.lifecycle.drift.DriftDetector`;
            its ``drifting`` state is one of the two triggers.
        min_samples: new trainable outcomes (since the last retrain)
            that trigger a retrain on volume alone.
        canary_fraction: most-recent fraction of the trainable records
            held out for the canary (never trained on).
        canary_margin: fractional improvement the candidate must show.
        oversample: outcome-row replication during the fit.
        n_candidates: candidate seeds fitted per retrain; the canary
            holdout picks the best before it faces the incumbent.
        auto_promote: flip the alias when the canary passes; ``False``
            leaves the candidate published-but-unpromoted.
        nice: scheduling-priority drop applied inside the executor
            workers running the fits (0 disables): Unix niceness, plus
            the ``SCHED_IDLE`` class where the platform supports it.
            On hosts where the serving process and the workers share
            cores, this keeps the retrain out of the serving path's
            time slices.
        ctx: a :class:`~repro.runtime.RuntimeContext`; supplies the
            executor the fits run on and default metric bindings.
        metrics: a :class:`~repro.obs.MetricsRegistry` for the
            ``repro_lifecycle_retrains_total`` /
            ``_promotions_total`` counters (defaults to the context's).
    """

    def __init__(
        self,
        registry,
        compressor: str,
        fingerprint: str | None = None,
        *,
        detector=None,
        min_samples: int = 64,
        canary_fraction: float = 0.25,
        canary_margin: float = 0.0,
        oversample: int = 4,
        n_candidates: int = 2,
        auto_promote: bool = True,
        nice: int = 10,
        ctx=None,
        metrics=None,
    ) -> None:
        if min_samples < 1:
            raise InvalidConfiguration("min_samples must be >= 1")
        if not 0.0 < canary_fraction < 1.0:
            raise InvalidConfiguration("canary_fraction must be in (0, 1)")
        if n_candidates < 1:
            raise InvalidConfiguration("n_candidates must be >= 1")
        if nice < 0:
            raise InvalidConfiguration("nice must be >= 0")
        self.registry = registry
        self.compressor = str(compressor)
        self.fingerprint = fingerprint
        self.detector = detector
        self.min_samples = int(min_samples)
        self.canary_fraction = float(canary_fraction)
        self.canary_margin = float(canary_margin)
        self.oversample = int(oversample)
        self.n_candidates = int(n_candidates)
        self.auto_promote = bool(auto_promote)
        self.nice = int(nice)
        self.ctx = ctx
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._trained_through = 0
        self.retrains = 0
        self.promotions = 0
        self.last_result: RetrainResult | None = None
        self.last_error: Exception | None = None
        if metrics is None and ctx is not None:
            metrics = ctx.registry
        self._state = "idle"
        self._retrains_counter = None
        self._promotions_counter = None
        self._state_gauge = None
        if metrics is not None:
            self._retrains_counter = metrics.counter(
                "repro_lifecycle_retrains_total",
                "completed retrain attempts, by result",
            )
            self._promotions_counter = metrics.counter(
                "repro_lifecycle_promotions_total",
                "canary promotions (registry alias flips)",
            )
            self._state_gauge = metrics.gauge(
                "repro_lifecycle_retrainer_state",
                "retrainer phase (0 idle, 1 fitting, 2 canary, 3 promoting)",
            )
            self._state_gauge.set(0.0)

    #: Gauge codes of the retrainer phases.
    _STATE_CODES = {"idle": 0.0, "fitting": 1.0, "canary": 2.0,
                    "promoting": 3.0}

    @property
    def state(self) -> str:
        """Current retrainer phase (``idle``/``fitting``/``canary``/
        ``promoting``)."""
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        if self._state_gauge is not None:
            self._state_gauge.set(self._STATE_CODES[state])

    def _count_retrain(self, result: str) -> None:
        if self._retrains_counter is not None:
            self._retrains_counter.inc(result=result)

    # -- triggering ------------------------------------------------------------

    @property
    def busy(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def maybe_trigger(self, records) -> bool:
        """Start a background retrain if drift tripped or volume crossed.

        ``records`` is the replayed outcome history (append order).
        Returns ``True`` when a retrain thread was started; at most one
        runs at a time.
        """
        records = list(records)
        trainable = sum(1 for record in records if record.trainable)
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return False
            drifting = self.detector is not None and self.detector.drifting
            fresh = trainable - self._trained_through
            if drifting and trainable > 1:
                trigger = "drift"
            elif fresh >= self.min_samples:
                trigger = "samples"
            else:
                return False
            thread = threading.Thread(
                target=self._run,
                args=(records, trigger),
                daemon=True,
                name="fxrz-retrain",
            )
            self._thread = thread
        thread.start()
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Join the background retrain; ``True`` when none is running."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        return not thread.is_alive()

    def _run(self, records, trigger: str) -> None:
        try:
            self.last_result = self.retrain(records, triggered_by=trigger)
            self.last_error = None
        except ReproError as exc:
            # A failed retrain must never take the serving process
            # down; the error is kept for inspection and the incumbent
            # keeps serving.
            self.last_error = exc

    # -- the retrain itself ----------------------------------------------------

    def retrain(self, records, *, triggered_by: str = "manual") -> RetrainResult:
        """Fit candidates, publish the best, canary it (synchronous).

        The whole attempt runs under a ``lifecycle.retrain`` span (with
        ``lifecycle.fit``/``lifecycle.canary``/``lifecycle.promote``
        children) and lands exactly one
        ``repro_lifecycle_retrains_total{result=...}`` increment:
        ``promoted``, ``held`` (candidate published, canary said no),
        ``skipped`` (nothing trainable) or ``error``.
        """
        with obs.span("lifecycle.retrain", trigger=triggered_by) as sp:
            try:
                result = self._retrain(records, triggered_by=triggered_by)
            except Exception:
                self._count_retrain("error")
                raise
            finally:
                self._set_state("idle")
            if result.promoted is not None:
                outcome = "promoted"
            elif result.candidate is not None:
                outcome = "held"
            else:
                outcome = "skipped"
            sp.set_attributes(result=outcome, reason=result.reason)
        self._count_retrain(outcome)
        return result

    def _retrain(self, records, *, triggered_by: str) -> RetrainResult:
        start = time.perf_counter()
        records = list(records)
        trainable = [record for record in records if record.trainable]
        with self._lock:
            self._trained_through = len(trainable)
        self.retrains += 1

        def done(reason, candidate=None, report=None, promoted=None,
                 train_rows=0, holdout=0) -> RetrainResult:
            return RetrainResult(
                triggered_by=triggered_by,
                trainable=len(trainable),
                train_rows=train_rows,
                holdout=holdout,
                candidate=candidate,
                report=report,
                promoted=promoted,
                seconds=time.perf_counter() - start,
                reason=reason,
            )

        if len(trainable) < 2:
            return done("not enough measured outcomes to train and canary")
        self._set_state("fitting")
        holdout_n = max(1, int(math.ceil(self.canary_fraction * len(trainable))))
        holdout_n = min(holdout_n, len(trainable) - 1)
        train_records = trainable[:-holdout_n]
        holdout_records = trainable[-holdout_n:]

        incumbent = self.registry.resolve(
            self.compressor, self.fingerprint, LATEST
        )
        base = self.registry.load(
            incumbent.compressor, incumbent.fingerprint, incumbent.version
        )
        log_scale = base.compressor.config_scale == "log"
        x_outcomes, y_outcomes, used = training_rows_from_outcomes(
            train_records, log_scale=log_scale, oversample=self.oversample
        )
        if used == 0:
            return done("no outcome rows survived conversion",
                        holdout=len(holdout_records))
        x_base, y_base = base._training.build_training_matrix()
        x = np.vstack((x_base, x_outcomes))
        y = np.concatenate((y_base, y_outcomes))

        seeds = [
            base.config.seed + incumbent.version * 1009 + 17 * k
            for k in range(self.n_candidates)
        ]
        # One map covers the incumbent's holdout replay and every
        # candidate's fit + replay; with a process executor, all of the
        # GIL-heavy work leaves the serving process.
        tasks = [_SCORE_INCUMBENT, *seeds]
        executor = self.ctx.executor if self.ctx is not None else None
        task_context = {
            "compressor": incumbent.compressor,
            "holdout": holdout_records,
            "registry_root": str(self.registry.root),
            "fingerprint": incumbent.fingerprint,
            "version": incumbent.version,
            # Inline/thread fits run in this very process; renicing it
            # would slow serving itself. Only process workers drop.
            "nice": (
                self.nice
                if getattr(executor, "backend", "") == "process"
                else 0
            ),
        }
        with obs.span(
            "lifecycle.fit",
            candidates=self.n_candidates,
            train_rows=used,
            holdout=len(holdout_records),
        ):
            if executor is not None:
                scored = executor.map(
                    _fit_and_score_task,
                    tasks,
                    shared={"x": x, "y": y},
                    context=task_context,
                )
            else:
                scored = [
                    _fit_and_score_task(task, {"x": x, "y": y}, task_context)
                    for task in tasks
                ]
        incumbent_median = scored[0][1]
        models = [model for model, _ in scored[1:]]
        medians = [median for _, median in scored[1:]]

        # The holdout picks the best candidate seed *before* the
        # incumbent comparison, so one unlucky forest does not sink an
        # otherwise-winning retrain.
        winner = int(np.argmin(medians))
        best = clone_with_model(base, models[winner])

        self._set_state("canary")
        with obs.span("lifecycle.canary", holdout=len(holdout_records)) as sp:
            published = self.registry.publish(
                best, incumbent.fingerprint, promote=False
            )
            report = canary_report_from_medians(
                incumbent_median,
                medians[winner],
                len(holdout_records),
                margin=self.canary_margin,
            )
            sp.set_attributes(
                promote=report.promote,
                incumbent_median=incumbent_median,
                candidate_median=medians[winner],
            )
        promoted = None
        if report.promote and self.auto_promote:
            self._set_state("promoting")
            with obs.span(
                "lifecycle.promote", version=published.version
            ):
                promoted = self.registry.promote(
                    published.compressor,
                    published.fingerprint,
                    published.version,
                    note=report.reason,
                )
            self.promotions += 1
            if self._promotions_counter is not None:
                self._promotions_counter.inc()
        if self.detector is not None:
            # Either way the window must refill before the next trip:
            # it described the pre-retrain model's calibration.
            self.detector.reset()
        return done(
            report.reason,
            candidate=published,
            report=report,
            promoted=promoted,
            train_rows=used,
            holdout=len(holdout_records),
        )
