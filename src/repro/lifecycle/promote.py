"""Canary evaluation: promote a candidate only if it beats ``latest``.

The canary replays a held-out slice of the outcome log through both
models *without running the compressor*: each trainable record says
"configuration ``c`` actually measured ratio ``m`` on this dataset".
Inverting a model over the adjusted ratio answers the question "what
ratio does this model *believe* configuration ``c`` delivers here?" —
and the gap between that belief and the measured ``m`` is exactly the
relative CR error the model would have made serving this request. The
inversion is a bisection over model queries (microseconds each), so a
canary over hundreds of records costs milliseconds.

The promotion contract: the candidate's **median** relative CR error
over the holdout must beat the incumbent's by at least
``margin`` (fractionally) for the registry alias to flip. Every flip
records the previous version in the manifest history, so
:meth:`~repro.serving.registry.ModelRegistry.rollback` can restore it
with one call.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration
from repro.serving.registry import LATEST

#: Bisection budget of one model inversion.
_INVERT_ITERATIONS = 48

#: How far past the largest observed ACR the inversion may search.
_ACR_HEADROOM = 4.0


@dataclass(frozen=True)
class CanaryReport:
    """Outcome of one canary evaluation.

    Attributes:
        n_records: holdout records actually replayed.
        incumbent_error: incumbent's median relative CR error.
        candidate_error: candidate's median relative CR error.
        margin: fractional improvement the candidate had to show.
        promote: whether the candidate won.
        reason: human-readable verdict.
        quality_records: holdout records carrying a PSNR objective and
            a measured PSNR (evaluated under the quality contract, not
            the CR one).
        quality_error: median absolute dB miss over those records
            (``nan`` when there are none). Informational: the ratio
            contract gates promotion — quality answers come from the
            quality model, which versions independently (see
            :meth:`~repro.serving.registry.ModelRegistry.publish_quality`).
    """

    n_records: int
    incumbent_error: float
    candidate_error: float
    margin: float
    promote: bool
    reason: str
    quality_records: int = 0
    quality_error: float = float("nan")


def _model_config(model, compressor, features: np.ndarray, acr: float) -> float:
    """Raw model prediction as an error configuration (un-normalized)."""
    row = np.concatenate((features, [acr]))[None, :]
    raw = float(model.predict(row)[0])
    if compressor.config_scale == "log":
        raw = 10.0 ** raw * max(float(features[0]), 1e-30)
    return raw


def invert_model_ratio(
    model,
    compressor,
    features: np.ndarray,
    config: float,
    *,
    acr_hi: float,
) -> float:
    """The ACR at which ``model`` predicts ``config`` for ``features``.

    Error-controlled compressors trade ratio for error bound
    monotonically, so the learned config(ACR) map is (noisily)
    increasing; a bisection over ``[1, acr_hi]`` recovers the ratio the
    model associates with a configuration. Out-of-range answers clamp
    to the search bounds — a model that cannot reach ``config`` at any
    ratio it knows is *maximally* wrong about this record, and the
    clamp charges it accordingly.
    """
    if config <= 0 or not np.isfinite(config):
        raise InvalidConfiguration("config must be finite and > 0")
    lo, hi = 1.0, max(float(acr_hi), 1.0 + 1e-9)
    if _model_config(model, compressor, features, lo) >= config:
        return lo
    if _model_config(model, compressor, features, hi) <= config:
        return hi
    for _ in range(_INVERT_ITERATIONS):
        mid = 0.5 * (lo + hi)
        if _model_config(model, compressor, features, mid) < config:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def replay_errors(pipeline, records) -> list[float]:
    """Per-record relative CR error of ``pipeline``'s model on ``records``.

    Only trainable records (measured ratio present and usable) are
    replayed; the list is ordered like the surviving records.
    """
    usable = [record for record in records if record.trainable]
    if not usable:
        return []
    acr_hi = _ACR_HEADROOM * max(
        max(record.adjusted_target for record in usable),
        max(
            record.measured_ratio * record.nonconstant for record in usable
        ),
    )
    model = pipeline.model
    compressor = pipeline.compressor
    errors: list[float] = []
    for record in usable:
        features = np.asarray(record.features, dtype=np.float64)
        acr = invert_model_ratio(
            model, compressor, features, record.config, acr_hi=acr_hi
        )
        predicted_ratio = acr / record.nonconstant
        errors.append(
            abs(predicted_ratio - record.measured_ratio)
            / record.measured_ratio
        )
    return errors


def quality_errors(records) -> list[float]:
    """Per-record absolute dB miss of PSNR-objective holdout records.

    The quality contract is evaluated per objective kind: a PSNR
    request's ground truth is the measured PSNR, and the miss is
    ``|measured - target|`` in dB. Records without a PSNR objective or
    a measured PSNR (including every pre-objective row) are skipped.
    """
    misses: list[float] = []
    for record in records:
        if record.objective_kind != "psnr":
            continue
        measured = record.measured_psnr
        if measured is None or not np.isfinite(measured):
            continue
        target = record.objective_value
        if target <= 0:
            continue
        misses.append(abs(float(measured) - float(target)))
    return misses


def evaluate_canary(
    incumbent, candidate, records, *, margin: float = 0.0
) -> CanaryReport:
    """Replay ``records`` through both pipelines; verdict by median error.

    Ratio-objective records gate the verdict (the ratio model is what a
    promotion flips); PSNR-objective records are summarized into the
    report's ``quality_*`` fields under their own contract.
    """
    records = list(records)
    incumbent_errors = replay_errors(incumbent, records)
    candidate_errors = replay_errors(candidate, records)
    n_records = len(candidate_errors)
    medians = (
        (float(np.median(incumbent_errors)), float(np.median(candidate_errors)))
        if n_records
        else (float("nan"), float("nan"))
    )
    report = canary_report_from_medians(*medians, n_records, margin=margin)
    misses = quality_errors(records)
    if misses:
        report = dataclasses.replace(
            report,
            quality_records=len(misses),
            quality_error=float(np.median(misses)),
        )
    return report


def canary_report_from_medians(
    incumbent_median: float,
    candidate_median: float,
    n_records: int,
    *,
    margin: float = 0.0,
) -> CanaryReport:
    """The promotion verdict from already-computed median errors.

    The replays themselves may have run anywhere (e.g. in executor
    worker processes, where the bisection's model queries do not
    contend with the serving thread for the GIL); the verdict logic
    stays in one place.
    """
    if not 0.0 <= margin < 1.0:
        raise InvalidConfiguration("margin must be in [0, 1)")
    if n_records == 0:
        return CanaryReport(
            n_records=0,
            incumbent_error=float("nan"),
            candidate_error=float("nan"),
            margin=float(margin),
            promote=False,
            reason="no measured holdout records to replay",
        )
    wins = candidate_median < incumbent_median * (1.0 - margin)
    verdict = (
        f"candidate median {candidate_median:.4f} vs incumbent "
        f"{incumbent_median:.4f} over {n_records} record(s)"
    )
    if margin > 0:
        verdict += f" (required margin {margin:.0%})"
    return CanaryReport(
        n_records=n_records,
        incumbent_error=incumbent_median,
        candidate_error=candidate_median,
        margin=float(margin),
        promote=bool(wins),
        reason=("promoted: " if wins else "held back: ") + verdict,
    )


def run_canary(
    registry,
    compressor: str,
    fingerprint: str | None,
    candidate_version: int,
    records,
    *,
    margin: float = 0.0,
    note: str = "",
):
    """Canary ``candidate_version`` against ``latest`` and maybe promote.

    Returns ``(report, promoted)`` where ``promoted`` is the
    :class:`~repro.serving.registry.ModelVersion` now serving as
    ``latest`` (``None`` when the candidate was held back).
    """
    coordinate = registry.resolve(compressor, fingerprint, LATEST)
    if coordinate.version == int(candidate_version):
        raise InvalidConfiguration(
            f"candidate v{candidate_version} already is the latest version"
        )
    incumbent = registry.load(
        coordinate.compressor, coordinate.fingerprint, coordinate.version
    )
    candidate = registry.load(
        coordinate.compressor, coordinate.fingerprint, int(candidate_version)
    )
    report = evaluate_canary(incumbent, candidate, records, margin=margin)
    if not report.promote:
        return report, None
    promoted = registry.promote(
        coordinate.compressor,
        coordinate.fingerprint,
        int(candidate_version),
        note=note or report.reason,
    )
    return report, promoted
