"""Append-only serving-outcome log with rotation and replay.

One :class:`OutcomeRecord` captures what one estimate *claimed* and —
when the caller actually compressed — what the compressor *measured*.
Records with a measured ratio are future training rows; estimate-only
records still feed drift detection (their features and adjusted ratio
say where the serving traffic lives relative to the training
envelope).

The log is a line-per-record JSONL file. Crash safety comes from the
write discipline, not from a database: every record is serialized to
one complete ``\\n``-terminated line and written with a single
``write()`` + ``flush()`` on an append-mode handle, so a crash can
tear at most the line being written. The replay reader skips (and
counts) unparseable lines instead of failing the whole replay.

**Single-writer rule**: one :class:`OutcomeLog` instance owns its file
within one process. Forked shard workers must NOT append — their lines
would interleave mid-line with the parent's. The sharded supervisor
records outcomes parent-side from the estimates its shards ship back
over the reply pipe (see
:class:`~repro.serving.supervisor.ShardedEstimationService`), and
:meth:`~repro.runtime.context.RuntimeContext.spec` deliberately drops
``outcome_log`` so shard child contexts never build a log of their own.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field

from repro.errors import InvalidConfiguration

_OUTCOMES_TOTAL = "repro_lifecycle_outcomes_total"


@dataclass(frozen=True)
class OutcomeRecord:
    """One serving outcome: the estimate, and optionally the truth.

    Attributes:
        dataset_key: serving-layer dataset key (content fingerprint or
            ``id:...``); empty when the caller had none.
        compressor: compressor name the estimate answered for.
        features: the five model-input features of the dataset.
        nonconstant: non-constant block fraction R at estimate time.
        target_ratio: the requested TCR.
        adjusted_target: the ACR actually fed to the model.
        config: the error configuration the estimate returned.
        tier: which ladder rung answered (``model``/``curve``/``fraz``).
        confidence: the guarded engine's model-tier confidence.
        fallback_reason: why the model tier was left (empty otherwise).
        measured_ratio: the compression ratio actually achieved, when
            the caller compressed; ``None`` for estimate-only records.
        source: which layer recorded this (``guarded``/``service``/
            ``shard``/``fallback``/``compress``).
        timestamp: UNIX time of the recording.
        trace_id: the distributed-trace id the request was served
            under (0 when untraced) — joins this record back to its
            span tree (``outcomes-report --spans``).
        objective: canonical objective string the request carried
            (``"ratio:10"``, ``"psnr:60"``); empty on rows written
            before objectives existed — read :attr:`objective_kind`
            instead of parsing this directly.
        measured_psnr: the reconstruction PSNR actually measured, when
            the caller compressed (or a quality probe ran); ``None``
            otherwise.
    """

    dataset_key: str
    compressor: str
    features: tuple[float, ...]
    nonconstant: float
    target_ratio: float
    adjusted_target: float
    config: float
    tier: str = ""
    confidence: float = 1.0
    fallback_reason: str = ""
    measured_ratio: float | None = None
    source: str = ""
    timestamp: float = 0.0
    trace_id: int = 0
    objective: str = ""
    measured_psnr: float | None = None

    @classmethod
    def from_estimate(
        cls,
        estimate,
        *,
        dataset_key: str = "",
        compressor: str = "",
        measured_ratio: float | None = None,
        measured_psnr: float | None = None,
        source: str = "",
        timestamp: float | None = None,
    ) -> "OutcomeRecord":
        """Build a record from an :class:`~repro.core.inference.Estimate`."""
        objective = getattr(estimate, "objective", None)
        return cls(
            dataset_key=str(dataset_key),
            compressor=str(compressor),
            features=tuple(float(v) for v in estimate.features),
            nonconstant=float(estimate.nonconstant),
            target_ratio=float(estimate.target_ratio),
            adjusted_target=float(estimate.adjusted_target),
            config=float(estimate.config),
            tier=str(estimate.tier),
            confidence=float(estimate.confidence),
            fallback_reason=str(estimate.fallback_reason),
            measured_ratio=(
                None if measured_ratio is None else float(measured_ratio)
            ),
            source=str(source),
            timestamp=time.time() if timestamp is None else float(timestamp),
            trace_id=int(getattr(estimate, "trace_id", 0)),
            objective=objective.canonical if objective is not None else "",
            measured_psnr=(
                None
                if measured_psnr is None or not math.isfinite(measured_psnr)
                else float(measured_psnr)
            ),
        )

    @property
    def objective_kind(self) -> str:
        """``"ratio"``/``"psnr"``/``"ssim"``; pre-objective rows are ratio."""
        if not self.objective:
            return "ratio"
        return self.objective.split(":", 1)[0]

    @property
    def objective_value(self) -> float:
        """The objective's target value (falls back to ``target_ratio``)."""
        if not self.objective:
            return self.target_ratio
        try:
            return float(self.objective.split(":", 1)[1])
        except (IndexError, ValueError):
            return self.target_ratio

    @property
    def trainable(self) -> bool:
        """Whether this record carries a usable measured outcome."""
        return (
            self.measured_ratio is not None
            and math.isfinite(self.measured_ratio)
            and self.measured_ratio > 0.0
            and math.isfinite(self.config)
            and self.config > 0.0
            and 0.0 < self.nonconstant <= 1.0
        )

    @property
    def relative_error(self) -> float | None:
        """Formula (5) against the measurement: |TCR - MCR| / TCR."""
        if self.measured_ratio is None or self.target_ratio <= 0:
            return None
        return abs(self.target_ratio - self.measured_ratio) / self.target_ratio

    def to_dict(self) -> dict:
        return {
            "dataset_key": self.dataset_key,
            "compressor": self.compressor,
            "features": list(self.features),
            "nonconstant": self.nonconstant,
            "target_ratio": self.target_ratio,
            "adjusted_target": self.adjusted_target,
            "config": self.config,
            "tier": self.tier,
            "confidence": self.confidence,
            "fallback_reason": self.fallback_reason,
            "measured_ratio": self.measured_ratio,
            "source": self.source,
            "timestamp": self.timestamp,
            "trace_id": self.trace_id,
            "objective": self.objective,
            "measured_psnr": self.measured_psnr,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OutcomeRecord":
        measured = payload.get("measured_ratio")
        measured_psnr = payload.get("measured_psnr")
        return cls(
            dataset_key=str(payload.get("dataset_key", "")),
            compressor=str(payload.get("compressor", "")),
            features=tuple(
                float(v) for v in payload.get("features", ())
            ),
            nonconstant=float(payload.get("nonconstant", 1.0)),
            target_ratio=float(payload.get("target_ratio", 0.0)),
            adjusted_target=float(payload.get("adjusted_target", 0.0)),
            config=float(payload.get("config", 0.0)),
            tier=str(payload.get("tier", "")),
            confidence=float(payload.get("confidence", 1.0)),
            fallback_reason=str(payload.get("fallback_reason", "")),
            measured_ratio=None if measured is None else float(measured),
            source=str(payload.get("source", "")),
            timestamp=float(payload.get("timestamp", 0.0)),
            trace_id=int(payload.get("trace_id", 0)),
            objective=str(payload.get("objective", "")),
            measured_psnr=(
                None if measured_psnr is None else float(measured_psnr)
            ),
        )


class OutcomeLog:
    """Append-only JSONL outcome log, thread-safe, with size rotation.

    Args:
        path: the live log file; rotated generations live next to it
            as ``<path>.1`` (newest) .. ``<path>.<max_files>``.
        max_bytes: rotate once the live file exceeds this size.
        max_files: rotated generations kept (older ones are deleted).
        fsync: ``True`` forces an ``fsync`` per record — durable
            against power loss, at a large per-record cost. The default
            ``flush()`` survives process crashes, which is the failure
            mode serving actually sees.
        registry: a :class:`~repro.obs.MetricsRegistry`; when given,
            every record increments ``repro_lifecycle_outcomes_total``
            (labelled by source).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 4,
        fsync: bool = False,
        registry=None,
    ) -> None:
        if max_bytes < 4096:
            raise InvalidConfiguration("max_bytes must be >= 4096")
        if max_files < 1:
            raise InvalidConfiguration("max_files must be >= 1")
        self.path = pathlib.Path(path)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh = None
        self._closed = False
        self.records_written = 0
        self.rotations = 0
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                _OUTCOMES_TOTAL, "serving outcomes recorded, by source"
            )

    # -- writing ---------------------------------------------------------------

    def record(self, record: OutcomeRecord) -> None:
        """Append one record (one complete line, flushed)."""
        line = json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                raise InvalidConfiguration(
                    f"outcome log {self.path} is closed"
                )
            fh = self._open_locked()
            fh.write(line)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            self.records_written += 1
            if fh.tell() >= self.max_bytes:
                self._rotate_locked()
        if self._counter is not None:
            self._counter.inc(source=record.source or "unknown")

    def record_estimate(
        self,
        estimate,
        *,
        dataset_key: str = "",
        compressor: str = "",
        measured_ratio: float | None = None,
        measured_psnr: float | None = None,
        source: str = "",
    ) -> OutcomeRecord:
        """Convenience: build a record from ``estimate`` and append it."""
        record = OutcomeRecord.from_estimate(
            estimate,
            dataset_key=dataset_key,
            compressor=compressor,
            measured_ratio=measured_ratio,
            measured_psnr=measured_psnr,
            source=source,
        )
        self.record(record)
        return record

    def _open_locked(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _rotate_locked(self) -> None:
        self._fh.close()
        self._fh = None
        overflow = self._rotated_path(self.max_files)
        if overflow.exists():
            overflow.unlink()
        for generation in range(self.max_files - 1, 0, -1):
            older = self._rotated_path(generation)
            if older.exists():
                older.replace(self._rotated_path(generation + 1))
        self.path.replace(self._rotated_path(1))
        self.rotations += 1

    def _rotated_path(self, generation: int) -> pathlib.Path:
        return self.path.with_name(f"{self.path.name}.{generation}")

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the live handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "OutcomeLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return self.records_written

    # -- reading ---------------------------------------------------------------

    def replay(self, include_rotated: bool = True) -> "OutcomeReplay":
        """Replay this log's files from disk (see :func:`read_outcomes`)."""
        self.flush()
        return read_outcomes(self.path, include_rotated=include_rotated)


@dataclass
class OutcomeReplay:
    """What a replay found: parsed records plus damage accounting.

    Attributes:
        records: parsed records, oldest first (rotated files first).
        torn_lines: lines that failed to parse (crash-torn writes or
            forbidden cross-process interleaving) — skipped, counted.
        files: log files read, oldest first.
    """

    records: list[OutcomeRecord] = field(default_factory=list)
    torn_lines: int = 0
    files: list[pathlib.Path] = field(default_factory=list)

    @property
    def trainable(self) -> list[OutcomeRecord]:
        return [record for record in self.records if record.trainable]


def read_outcomes(
    path: str | os.PathLike, include_rotated: bool = True
) -> OutcomeReplay:
    """Read an outcome log back, skipping (and counting) torn lines.

    ``include_rotated=True`` reads ``<path>.N`` generations too, oldest
    first, so the returned record list is in append order across
    rotations. A missing live file yields an empty replay rather than
    an error — an empty log is a valid state for a fresh deployment.
    """
    live = pathlib.Path(path)
    files: list[pathlib.Path] = []
    if include_rotated:
        generation = 1
        rotated = []
        while True:
            candidate = live.with_name(f"{live.name}.{generation}")
            if not candidate.is_file():
                break
            rotated.append(candidate)
            generation += 1
        files.extend(reversed(rotated))  # highest generation = oldest
    if live.is_file():
        files.append(live)
    replay = OutcomeReplay(files=list(files))
    for file in files:
        with open(file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("not an object")
                    record = OutcomeRecord.from_dict(payload)
                except (ValueError, TypeError, KeyError):
                    replay.torn_lines += 1
                    continue
                replay.records.append(record)
    return replay
