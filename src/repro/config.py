"""Global defaults mirroring the paper's experimental configuration.

The values here correspond to the knobs the paper fixes in Section IV/V:
stride-4 uniform sampling (~1.5 % of points), 4x4x4 compressibility-
adjustment blocks with lambda = 0.15, and ~25 stationary error bounds per
augmentation curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default stride for uniform feature sampling (Sec. IV-E1, Fig. 5).
DEFAULT_SAMPLING_STRIDE = 4

#: Default edge length of a compressibility-adjustment block (Sec. IV-E2).
DEFAULT_BLOCK_SIZE = 4

#: Default coefficient of the mean value used as the constant-block value
#: range threshold (Table IV: lambda = 0.15 is optimal).
DEFAULT_LAMBDA = 0.15

#: Default number of stationary error bounds per augmentation curve
#: (Sec. IV-B: "on average, 25 different error bound settings").
DEFAULT_STATIONARY_POINTS = 25

#: Default number of interpolated training samples generated per curve.
DEFAULT_AUGMENTED_SAMPLES = 250

#: Deterministic seed used by every experiment unless overridden.
DEFAULT_SEED = 20230213


@dataclass(frozen=True)
class FXRZConfig:
    """Configuration bundle for an FXRZ pipeline.

    Parameters mirror the paper's defaults; see module docstring.

    Attributes:
        sampling_stride: stride K for feature sampling; 1 disables sampling.
        block_size: edge of the cubic block used by compressibility
            adjustment.
        lam: coefficient of the mean value forming the constant-block
            threshold.
        stationary_points: number of compressor runs per training dataset
            used to anchor the interpolated (error bound -> CR) curve.
        augmented_samples: number of interpolated (CR, eb) pairs drawn from
            each curve for model training.
        use_adjustment: whether compressibility adjustment (CA) is applied.
        seed: RNG seed used for model training.
    """

    sampling_stride: int = DEFAULT_SAMPLING_STRIDE
    block_size: int = DEFAULT_BLOCK_SIZE
    lam: float = DEFAULT_LAMBDA
    stationary_points: int = DEFAULT_STATIONARY_POINTS
    augmented_samples: int = DEFAULT_AUGMENTED_SAMPLES
    use_adjustment: bool = True
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.sampling_stride < 1:
            raise ValueError("sampling_stride must be >= 1")
        if self.block_size < 2:
            raise ValueError("block_size must be >= 2")
        if not 0.0 < self.lam < 1.0:
            raise ValueError("lam must be in (0, 1)")
        if self.stationary_points < 2:
            raise ValueError("stationary_points must be >= 2")
        if self.augmented_samples < 1:
            raise ValueError("augmented_samples must be >= 1")
