"""Power-spectrum preservation analysis.

Cosmologists judge lossy compression not only by halo positions
(Sec. V-C) but by how well the matter power spectrum P(k) survives
reconstruction — the standard quality-of-interest in compression
studies on Nyx data. This module bins the isotropic power spectrum of
a field and reports the worst relative deviation up to a cutoff
wavenumber.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration


def isotropic_power_spectrum(
    field: np.ndarray, n_bins: int = 32
) -> tuple[np.ndarray, np.ndarray]:
    """Spherically averaged power spectrum of an n-D field.

    Returns:
        ``(k_centers, power)`` with ``n_bins`` logarithmic-ish radial
        bins from the fundamental mode to the Nyquist frequency.
    """
    if n_bins < 2:
        raise InvalidConfiguration("n_bins must be >= 2")
    field = np.asarray(field, dtype=np.float64)
    if field.ndim < 1:
        raise InvalidConfiguration("field must be at least 1-D")
    spectrum = np.abs(np.fft.fftn(field - field.mean())) ** 2
    axes = [np.fft.fftfreq(n) * n for n in field.shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k = np.sqrt(sum(g * g for g in grids))
    k_max = min(field.shape) / 2.0
    edges = np.linspace(1.0, k_max, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    power = np.zeros(n_bins)
    flat_k = k.ravel()
    flat_p = spectrum.ravel()
    indices = np.digitize(flat_k, edges) - 1
    valid = (indices >= 0) & (indices < n_bins)
    counts = np.bincount(indices[valid], minlength=n_bins)
    sums = np.bincount(indices[valid], weights=flat_p[valid], minlength=n_bins)
    nonzero = counts > 0
    power[nonzero] = sums[nonzero] / counts[nonzero]
    return centers, power


def spectrum_distortion(
    original: np.ndarray,
    reconstruction: np.ndarray,
    n_bins: int = 32,
    k_cut_fraction: float = 0.75,
) -> float:
    """Worst relative P(k) deviation below a cutoff wavenumber.

    Args:
        original: reference field.
        reconstruction: lossy reconstruction.
        n_bins: radial spectrum bins.
        k_cut_fraction: fraction of the Nyquist range to assess (the
            highest modes are noise-dominated and excluded, as in
            standard P(k) quality criteria).

    Returns:
        ``max_k |P_rec(k)/P_orig(k) - 1|`` over the assessed bins.
    """
    if original.shape != reconstruction.shape:
        raise InvalidConfiguration("arrays must have matching shapes")
    if not 0.0 < k_cut_fraction <= 1.0:
        raise InvalidConfiguration("k_cut_fraction must be in (0, 1]")
    _, p_orig = isotropic_power_spectrum(original, n_bins)
    _, p_rec = isotropic_power_spectrum(reconstruction, n_bins)
    cut = max(2, int(round(n_bins * k_cut_fraction)))
    p_orig = p_orig[:cut]
    p_rec = p_rec[:cut]
    usable = p_orig > 0
    if not usable.any():
        raise InvalidConfiguration("original field has no power below the cut")
    ratio = p_rec[usable] / p_orig[usable]
    return float(np.max(np.abs(ratio - 1.0)))
