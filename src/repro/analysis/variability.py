"""Train/test variability demonstration (paper Sec. V-B, Figs. 8-9).

The paper argues its assessment is meaningful because training and
testing data differ visibly in distribution, standard deviation and
visualization. These helpers quantify that: per-snapshot summary
statistics and a distribution distance between two snapshot groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import FieldSeries
from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class SnapshotStatistics:
    """Summary statistics of one snapshot (the Fig. 9 panel numbers)."""

    label: str
    mean: float
    std: float
    minimum: float
    maximum: float
    skewness: float


def snapshot_statistics(series: FieldSeries) -> list[SnapshotStatistics]:
    """Per-snapshot summary statistics of a field series."""
    out = []
    for snap in series:
        data = snap.data.astype(np.float64)
        std = float(data.std())
        if std > 0:
            skew = float(np.mean(((data - data.mean()) / std) ** 3))
        else:
            skew = 0.0
        out.append(
            SnapshotStatistics(
                label=snap.label,
                mean=float(data.mean()),
                std=std,
                minimum=float(data.min()),
                maximum=float(data.max()),
                skewness=skew,
            )
        )
    return out


def _normalized_histogram(
    data: np.ndarray, bins: int, lo: float, hi: float
) -> np.ndarray:
    hist, _ = np.histogram(data, bins=bins, range=(lo, hi))
    total = hist.sum()
    if total == 0:
        raise InvalidConfiguration("empty histogram")
    return hist / total


def series_variability(
    train: FieldSeries, test: FieldSeries, bins: int = 64
) -> dict[str, float]:
    """Distribution distance between training and testing snapshots.

    Returns:
        dict with ``histogram_l1`` (total variation x2 of the pooled
        distributions), ``std_ratio`` (test sigma / train sigma),
        ``mean_shift`` (|mean difference| / train sigma) and
        ``tail_ratio`` (99.9th-percentile ratio — the discriminating
        statistic for heavy-tailed fields whose binned histograms pile
        into one bin).
    """
    if not len(train) or not len(test):
        raise InvalidConfiguration("both series must be non-empty")
    train_all = np.concatenate([s.data.ravel() for s in train]).astype(np.float64)
    test_all = np.concatenate([s.data.ravel() for s in test]).astype(np.float64)
    lo = float(min(train_all.min(), test_all.min()))
    hi = float(max(train_all.max(), test_all.max()))
    if hi == lo:
        hi = lo + 1.0
    h_train = _normalized_histogram(train_all, bins, lo, hi)
    h_test = _normalized_histogram(test_all, bins, lo, hi)
    train_std = float(train_all.std()) or 1.0
    train_tail = float(np.percentile(np.abs(train_all), 99.9))
    test_tail = float(np.percentile(np.abs(test_all), 99.9))
    return {
        "histogram_l1": float(np.abs(h_train - h_test).sum()),
        "std_ratio": float(test_all.std()) / train_std,
        "mean_shift": abs(float(test_all.mean()) - float(train_all.mean()))
        / train_std,
        "tail_ratio": test_tail / train_tail if train_tail > 0 else 1.0,
    }
