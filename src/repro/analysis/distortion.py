"""Distortion metrics and the valid-compression-ratio range (Fig. 10-11).

The paper restricts every dataset's target ratios to a *valid range*
"based on reasonable data distortion": beyond some ratio the
reconstruction is scientifically useless, so no fixed-ratio framework
should be asked for it. :func:`valid_ratio_range` reproduces that
selection by probing the compressor across its config domain and
keeping the ratios whose PSNR stays above a floor.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Compressor
from repro.errors import InvalidConfiguration


def max_abs_error(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """L-infinity reconstruction error."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstruction, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidConfiguration("arrays must have matching shapes")
    return float(np.max(np.abs(a - b)))


def normalized_rmse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """RMSE divided by the value range."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstruction, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidConfiguration("arrays must have matching shapes")
    value_range = float(np.ptp(a))
    if value_range == 0:
        return 0.0
    return float(np.sqrt(np.mean((a - b) ** 2)) / value_range)


def psnr(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for exact match)."""
    nrmse = normalized_rmse(original, reconstruction)
    if nrmse == 0:
        return float("inf")
    return float(-20.0 * np.log10(nrmse))


def ssim(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Global structural similarity between two fields.

    The single-window SSIM over the whole array — the statistic the
    SSIM objective targets (see :mod:`repro.core.objective`). Windowed
    mean-SSIM would need a convolution budget the estimation path
    cannot afford; the global statistic matches the uniform-noise model
    used to invert a target into an error bound. Stabilizers follow
    Wang et al. with ``L`` = the original's value range (``1.0`` for
    constant data so an exact reconstruction still scores 1).
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstruction, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidConfiguration("arrays must have matching shapes")
    value_range = float(np.ptp(a))
    dynamic = value_range if value_range > 0 else 1.0
    c1 = (0.01 * dynamic) ** 2
    c2 = (0.03 * dynamic) ** 2
    mu_a = float(np.mean(a))
    mu_b = float(np.mean(b))
    var_a = float(np.var(a))
    var_b = float(np.var(b))
    cov = float(np.mean((a - mu_a) * (b - mu_b)))
    return float(
        ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2))
    )


def valid_ratio_range(
    compressor: Compressor,
    data: np.ndarray,
    min_psnr: float = 40.0,
    n_probes: int = 12,
    min_ratio: float = 2.0,
) -> tuple[float, float]:
    """(lowest, highest) usable compression ratios for ``data``.

    Probes ``n_probes`` configurations across the compressor's domain,
    measures (ratio, PSNR) at each, and returns the ratio span whose
    PSNR stays at or above ``min_psnr`` — the Fig. 11 analogue.
    """
    if n_probes < 3:
        raise InvalidConfiguration("n_probes must be >= 3")
    lo, hi = compressor.config_domain(data)
    if compressor.config_scale == "log":
        configs = np.logspace(np.log10(lo), np.log10(hi), n_probes)
    else:
        configs = np.unique(
            np.round(np.linspace(lo, hi, n_probes)).astype(int)
        ).astype(float)
    best_hi = None
    best_lo = None
    for config in configs:
        recon, blob = compressor.roundtrip(data, float(config))
        quality = psnr(data, recon)
        ratio = blob.compression_ratio
        if quality >= min_psnr:
            best_hi = ratio if best_hi is None else max(best_hi, ratio)
            best_lo = ratio if best_lo is None else min(best_lo, ratio)
    if best_hi is None:
        raise InvalidConfiguration(
            f"no configuration of {compressor.name} reaches PSNR {min_psnr}"
        )
    return max(min_ratio, best_lo), max(min_ratio * 1.5, best_hi)
