"""Halo finding and the mislocation analysis of Sec. V-C.

The paper quantifies lossy-compression damage on Nyx baryon density by
the fraction of *halos* (overdense particle clusters) whose location
changes after reconstruction: 0.46 % / 10.81 % / 79.17 % at error
bounds 0.001 / 0.05 / 0.45. This module provides a threshold +
connected-component halo finder (the standard friend-of-friend-on-grid
approximation) and the mislocation metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import InvalidConfiguration


@dataclass(frozen=True)
class Halo:
    """One halo: centroid (grid coords), cell count and total mass."""

    centroid: tuple[float, ...]
    n_cells: int
    mass: float


def find_halos(
    density: np.ndarray,
    overdensity: float = 3.0,
    min_cells: int = 2,
) -> list[Halo]:
    """Detect halos as connected components above an overdensity cut.

    Args:
        density: the (baryon) density field.
        overdensity: threshold as a multiple of the mean density.
        min_cells: discard components smaller than this.
    """
    if overdensity <= 0:
        raise InvalidConfiguration("overdensity must be > 0")
    density = np.asarray(density, dtype=np.float64)
    threshold = overdensity * float(density.mean())
    mask = density > threshold
    labels, n_labels = ndimage.label(mask)
    if n_labels == 0:
        return []
    halos: list[Halo] = []
    counts = ndimage.sum_labels(np.ones_like(density), labels, range(1, n_labels + 1))
    masses = ndimage.sum_labels(density, labels, range(1, n_labels + 1))
    centroids = ndimage.center_of_mass(density, labels, range(1, n_labels + 1))
    for count, mass, centroid in zip(counts, masses, centroids):
        if count >= min_cells:
            halos.append(
                Halo(
                    centroid=tuple(float(c) for c in centroid),
                    n_cells=int(count),
                    mass=float(mass),
                )
            )
    return halos


def halo_mislocation_fraction(
    original: np.ndarray,
    reconstruction: np.ndarray,
    overdensity: float = 3.0,
    min_cells: int = 2,
    tolerance: float = 1.0,
) -> float:
    """Fraction of original halos lost or moved after reconstruction.

    A halo is *mislocated* when no reconstructed halo centroid lies
    within ``tolerance`` grid cells of its original centroid.
    """
    reference = find_halos(original, overdensity, min_cells)
    if not reference:
        raise InvalidConfiguration("no halos found in the original field")
    candidates = find_halos(reconstruction, overdensity, min_cells)
    if not candidates:
        return 1.0
    cand = np.array([h.centroid for h in candidates])
    mislocated = 0
    for halo in reference:
        deltas = cand - np.array(halo.centroid)
        if float(np.min(np.sqrt(np.sum(deltas**2, axis=1)))) > tolerance:
            mislocated += 1
    return mislocated / len(reference)
