"""Data-quality analyses used in the paper's evaluation (Sec. V-B/V-C)."""

from repro.analysis.distortion import (
    max_abs_error,
    normalized_rmse,
    psnr,
    ssim,
    valid_ratio_range,
)
from repro.analysis.halos import find_halos, halo_mislocation_fraction
from repro.analysis.spectrum import isotropic_power_spectrum, spectrum_distortion
from repro.analysis.variability import series_variability, snapshot_statistics

__all__ = [
    "psnr",
    "ssim",
    "max_abs_error",
    "normalized_rmse",
    "valid_ratio_range",
    "find_halos",
    "halo_mislocation_fraction",
    "isotropic_power_spectrum",
    "spectrum_distortion",
    "series_variability",
    "snapshot_statistics",
]
