"""Experiment harness regenerating the paper's tables and figures."""

from repro.experiments.corpus import (
    cross_scope_corpus,
    held_out_snapshots,
    training_arrays,
)
from repro.experiments.harness import (
    AccuracyRecord,
    accuracy_records,
    get_trained_fxrz,
    target_ratio_grid,
)
from repro.experiments.figures import ascii_plot, sparkline
from repro.experiments.tables import render_table

__all__ = [
    "training_arrays",
    "held_out_snapshots",
    "cross_scope_corpus",
    "get_trained_fxrz",
    "accuracy_records",
    "AccuracyRecord",
    "target_ratio_grid",
    "render_table",
    "ascii_plot",
    "sparkline",
]
