"""Training/test corpus assembly per the paper's capability levels."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FieldSnapshot
from repro.datasets.registry import (
    APPLICATIONS,
    paper_test_series,
    paper_training_series,
)
from repro.errors import DatasetError

#: (application, field) pairs evaluated in Fig. 13, one row each.
EVALUATED_FIELDS: tuple[tuple[str, str], ...] = (
    ("nyx", "baryon_density"),
    ("nyx", "temperature"),
    ("qmcpack", "spin0"),
    ("rtm", "pressure"),
    ("hurricane", "TC"),
    ("hurricane", "QCLOUD"),
)


def training_arrays(application: str, field: str | None = None) -> list[np.ndarray]:
    """All training snapshots of one application (optionally one field)."""
    series_list = paper_training_series(application)
    if field is not None:
        series_list = [s for s in series_list if s.field == field]
        if not series_list:
            raise DatasetError(f"{application} has no training field {field!r}")
    return [snap.data for series in series_list for snap in series]


def held_out_snapshots(application: str, field: str | None = None) -> list[FieldSnapshot]:
    """All held-out snapshots of one application (optionally one field)."""
    series_list = paper_test_series(application)
    if field is not None:
        series_list = [s for s in series_list if s.field == field]
        if not series_list:
            raise DatasetError(f"{application} has no test field {field!r}")
    return [snap for series in series_list for snap in series]


def cross_scope_corpus() -> tuple[list[np.ndarray], list[FieldSnapshot]]:
    """Fig. 14's mixed-application corpus.

    Training draws from *every* application (Nyx, QMCPack, Hurricane
    and RTM-Small); testing is the RTM-Big dataset.
    """
    train: list[np.ndarray] = []
    for app in APPLICATIONS:
        for series in paper_training_series(app):
            # Two snapshots per training series — the first and the
            # last — keep the mixed corpus balanced across applications
            # while spanning each series' temporal evolution.
            snaps = list(series)
            picks = [snaps[0]] if len(snaps) == 1 else [snaps[0], snaps[-1]]
            train.extend(snap.data for snap in picks)
    test = held_out_snapshots("rtm")
    return train, test
