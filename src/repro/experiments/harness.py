"""Shared experiment engine behind the benchmark suite.

Training a pipeline and probing valid ratio ranges are expensive, so
this module memoizes them per (application, field, compressor) within
the process — one pytest-benchmark session reuses them across benches.

The serving helpers (:func:`get_estimation_service`,
:func:`serving_analysis_cost`) route estimation traffic through
:mod:`repro.serving` so benches can compare the amortized per-request
analysis cost of a cached, batched service against the single-shot
engine Table VIII measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.distortion import valid_ratio_range
from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.compressors.base import Compressor
from repro.config import FXRZConfig
from repro.core.pipeline import FXRZ
from repro.datasets.base import FieldSnapshot
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.parallel import CompressionMemoCache
from repro.runtime import RuntimeContext
from repro.serving import EstimateRequest, EstimationService, MetricsSnapshot

_FXRZ_CACHE: dict[tuple, FXRZ] = {}
_RANGE_CACHE: dict[tuple, tuple[float, float]] = {}
_SERVICE_CACHE: dict[tuple, EstimationService] = {}
# One runtime session for the whole bench suite. Its memo is the
# content-addressed cache every compression the suite triggers shares:
# training sweeps, FRaZ searches at every budget, guarded fallbacks and
# repeated bench rounds (superseding the old per-snapshot FRaZ eval
# dict, which only FRaZ could read).
_RUNTIME: RuntimeContext | None = None


def get_runtime_context() -> RuntimeContext:
    """The suite-wide runtime session (rebuilt after :func:`clear_caches`)."""
    global _RUNTIME
    if _RUNTIME is None or _RUNTIME.closed:
        _RUNTIME = RuntimeContext(env={})
    return _RUNTIME


def get_compression_memo() -> CompressionMemoCache:
    """The suite-wide compression memo (cleared by :func:`clear_caches`)."""
    return get_runtime_context().memo


@dataclass(frozen=True)
class FRaZSummary:
    """FRaZ outcome at one iteration budget."""

    measured_ratio: float
    error: float
    seconds: float
    iterations: int


@dataclass(frozen=True)
class AccuracyRecord:
    """One (snapshot, target ratio) evaluation across strategies."""

    application: str
    field: str
    snapshot: str
    compressor: str
    target_ratio: float
    fxrz_config: float
    fxrz_ratio: float
    fxrz_error: float
    fxrz_seconds: float
    compress_seconds: float
    fraz: dict[int, FRaZSummary] = field(default_factory=dict)


def get_trained_fxrz(
    application: str,
    fld: str,
    compressor_name: str,
    config: FXRZConfig | None = None,
    model_factory=None,
    n_jobs: int | None = None,
) -> FXRZ:
    """A trained FXRZ pipeline, memoized per (app, field, compressor).

    ``n_jobs`` only sets training-time parallelism (the fitted model is
    bit-identical at any worker count), so it is deliberately not part
    of the cache key.
    """
    cfg = config or FXRZConfig()
    key = (application, fld, compressor_name, cfg, id(model_factory))
    if key not in _FXRZ_CACHE:
        ctx = get_runtime_context()
        if n_jobs is not None and n_jobs != 1:
            # A jobs override still shares the suite memo; the extra
            # context only carries the executor configuration.
            ctx = RuntimeContext(env={}, jobs=n_jobs, memo=ctx.memo)
        pipeline = FXRZ(
            get_compressor(compressor_name),
            config=cfg,
            model_factory=model_factory,
            ctx=ctx,
        )
        pipeline.fit(training_arrays(application, fld))
        _FXRZ_CACHE[key] = pipeline
    return _FXRZ_CACHE[key]


def get_estimation_service(
    application: str,
    fld: str,
    compressor_name: str,
    config: FXRZConfig | None = None,
    guarded: bool = False,
    workers: int = 2,
    max_batch: int = 32,
) -> EstimationService:
    """A serving front-end over the memoized trained pipeline.

    Cached per (app, field, compressor, guarded) so one bench session
    reuses a warm service; :func:`clear_caches` closes them.
    """
    cfg = config or FXRZConfig()
    key = (application, fld, compressor_name, cfg, guarded)
    if key not in _SERVICE_CACHE:
        pipeline = get_trained_fxrz(application, fld, compressor_name, config=cfg)
        _SERVICE_CACHE[key] = EstimationService.for_pipeline(
            pipeline,
            guarded=guarded,
            ctx=get_runtime_context(),
            workers=workers,
            max_batch=max_batch,
        )
    return _SERVICE_CACHE[key]


@dataclass(frozen=True)
class ServingCostSummary:
    """Amortized-vs-single-shot analysis cost of one served batch."""

    requests: int
    single_shot_seconds: float
    amortized_seconds: float
    wall_seconds: float
    metrics: MetricsSnapshot

    @property
    def speedup(self) -> float:
        return self.single_shot_seconds / max(self.amortized_seconds, 1e-12)


def serving_analysis_cost(
    application: str,
    fld: str,
    compressor_name: str,
    n_targets: int = 8,
    config: FXRZConfig | None = None,
    max_snapshots: int | None = 1,
) -> ServingCostSummary:
    """Serve ``n_targets`` ratios per held-out snapshot through the service.

    ``single_shot_seconds`` is the mean cost of a cold
    ``estimate_config`` (features + blocks + model, per request);
    ``amortized_seconds`` is the mean engine-reported per-request cost
    once the service's feature cache absorbs the per-dataset analysis.
    """
    pipeline = get_trained_fxrz(application, fld, compressor_name, config=config)
    service = get_estimation_service(
        application, fld, compressor_name, config=config
    )
    snapshots = held_out_snapshots(application, fld)
    if max_snapshots is not None:
        snapshots = snapshots[:max_snapshots]

    requests: list[EstimateRequest] = []
    single_shot: list[float] = []
    for snapshot in snapshots:
        lo, hi = pipeline.trained_ratio_range(snapshot.data)
        targets = np.linspace(lo * 1.05, hi * 0.95, n_targets)
        single_shot.append(
            pipeline.estimate_config(
                snapshot.data, float(np.median(targets))
            ).analysis_seconds
        )
        requests.extend(
            EstimateRequest(
                data=snapshot.data,
                target_ratio=float(tcr),
                dataset_id=snapshot.name,
            )
            for tcr in targets
        )

    tick = time.perf_counter()
    served = service.run_batch(requests)
    wall = time.perf_counter() - tick
    amortized = float(
        np.mean([s.estimate.analysis_seconds for s in served])
    )
    return ServingCostSummary(
        requests=len(served),
        single_shot_seconds=float(np.mean(single_shot)),
        amortized_seconds=amortized,
        wall_seconds=wall,
        metrics=service.metrics,
    )


def target_ratio_grid(
    compressor: Compressor,
    snapshot: FieldSnapshot,
    n_targets: int,
    min_psnr: float = 40.0,
) -> np.ndarray:
    """Valid TCRs for a snapshot (Fig. 11's range, memoized)."""
    key = (compressor.name, getattr(compressor, "mode", ""), snapshot.name, min_psnr)
    if key not in _RANGE_CACHE:
        _RANGE_CACHE[key] = valid_ratio_range(
            compressor, snapshot.data, min_psnr=min_psnr
        )
    lo, hi = _RANGE_CACHE[key]
    return np.linspace(lo * 1.1, hi * 0.9, n_targets)


def accuracy_records(
    application: str,
    fld: str,
    compressor_name: str,
    n_targets: int = 8,
    fraz_budgets: tuple[int, ...] = (6, 15),
    min_psnr: float = 40.0,
    config: FXRZConfig | None = None,
    max_snapshots: int | None = 1,
) -> list[AccuracyRecord]:
    """Evaluate FXRZ and FRaZ over the valid TCR grid of held-out data.

    Args:
        application: one of the four applications.
        fld: the field to train and test on.
        compressor_name: registered compressor name.
        n_targets: TCRs per snapshot (the paper uses ~25; benches use
            fewer to bound runtime).
        fraz_budgets: FRaZ iteration budgets to evaluate (paper: 6, 15).
        min_psnr: distortion floor defining the valid ratio range.
        config: FXRZ configuration override.
        max_snapshots: cap on evaluated test snapshots (None = all).
    """
    pipeline = get_trained_fxrz(application, fld, compressor_name, config=config)
    compressor = pipeline.compressor
    snapshots = held_out_snapshots(application, fld)
    if max_snapshots is not None:
        snapshots = snapshots[:max_snapshots]

    records: list[AccuracyRecord] = []
    for snapshot in snapshots:
        targets = target_ratio_grid(compressor, snapshot, n_targets, min_psnr)
        # Stay inside the pipeline's trained span (the paper tunes
        # per-dataset TCRs to the applicable range, Sec. V-F): asking a
        # regressor outside its training support measures
        # extrapolation, not the method.
        lo_t, hi_t = pipeline.trained_ratio_range(snapshot.data)
        lo = max(float(targets[0]), lo_t)
        hi = min(float(targets[-1]), hi_t * 0.95)
        if hi <= lo:
            hi = lo * 1.5
        targets = np.linspace(lo, hi, n_targets)
        # One reference compression (at a mid-grid config) times the
        # denominator of Table VIII's relative analysis cost.
        mid_estimate = pipeline.estimate_config(
            snapshot.data, float(np.median(targets))
        )
        tick = time.perf_counter()
        compressor.compress(snapshot.data, mid_estimate.config)
        compress_seconds = time.perf_counter() - tick

        for tcr in targets:
            result = pipeline.compress_to_ratio(snapshot.data, float(tcr))
            fraz_outcomes: dict[int, FRaZSummary] = {}
            for budget in fraz_budgets:
                # The suite-wide memo replaces the old per-snapshot eval
                # dict: searches share probes across budgets *and* with
                # the training sweeps, at the same honest-cost
                # accounting (hits charge their recorded seconds).
                searcher = FRaZ(
                    compressor,
                    max_iterations=budget,
                    ctx=get_runtime_context(),
                )
                outcome = searcher.search(snapshot.data, float(tcr))
                fraz_outcomes[budget] = FRaZSummary(
                    measured_ratio=outcome.measured_ratio,
                    error=outcome.estimation_error,
                    seconds=outcome.search_seconds,
                    iterations=outcome.iterations,
                )
            records.append(
                AccuracyRecord(
                    application=application,
                    field=fld,
                    snapshot=snapshot.label,
                    compressor=compressor_name,
                    target_ratio=float(tcr),
                    fxrz_config=result.estimate.config,
                    fxrz_ratio=result.measured_ratio,
                    fxrz_error=result.estimation_error,
                    fxrz_seconds=result.estimate.analysis_seconds,
                    compress_seconds=compress_seconds,
                    fraz=fraz_outcomes,
                )
            )
    return records


def summarize_errors(records: list[AccuracyRecord]) -> dict[str, float]:
    """Mean estimation error per strategy over a record batch."""
    if not records:
        return {}
    out = {"fxrz": float(np.mean([r.fxrz_error for r in records]))}
    budgets = sorted(records[0].fraz)
    for budget in budgets:
        out[f"fraz{budget}"] = float(
            np.mean([r.fraz[budget].error for r in records])
        )
    return out


def clear_caches() -> None:
    """Drop all memoized pipelines/ranges (tests use this for isolation)."""
    global _RUNTIME
    _FXRZ_CACHE.clear()
    _RANGE_CACHE.clear()
    for service in _SERVICE_CACHE.values():
        service.close()
    _SERVICE_CACHE.clear()
    if _RUNTIME is not None:
        _RUNTIME.close()
        _RUNTIME = None
