"""Plain-text figure rendering for benchmark output.

The paper's figures are curves (CR vs error bound, MCR vs TCR); the
benches print their data as tables, and these helpers add a compact
ASCII rendering so the *shape* — stairsteps, tracking, drift — is
visible directly in terminal output and the saved result files.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration

_BLOCKS = " .:-=+*#%@"


def sparkline(values, width: int = 48) -> str:
    """One-line intensity plot of a series (resampled to ``width``)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise InvalidConfiguration("sparkline needs at least one value")
    if width < 1:
        raise InvalidConfiguration("width must be >= 1")
    if values.size != width:
        positions = np.linspace(0, values.size - 1, width)
        values = np.interp(positions, np.arange(values.size), values)
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return _BLOCKS[1] * width
    scaled = (values - lo) / (hi - lo)
    indices = np.minimum(
        (scaled * (len(_BLOCKS) - 1)).astype(int), len(_BLOCKS) - 1
    )
    return "".join(_BLOCKS[i] for i in indices)


def ascii_plot(
    x,
    series: dict[str, np.ndarray],
    height: int = 12,
    width: int = 60,
    logy: bool = False,
) -> str:
    """Multi-series scatter plot in a character grid.

    Args:
        x: shared x values.
        series: label -> y values (each series gets the first letter of
            its label as the plot marker).
        height, width: grid size in characters.
        logy: plot log10(y) (requires positive values).

    Returns:
        The rendered plot plus a marker legend.
    """
    x = np.asarray(x, dtype=np.float64)
    if not series:
        raise InvalidConfiguration("ascii_plot needs at least one series")
    if height < 2 or width < 2:
        raise InvalidConfiguration("plot grid too small")
    prepared = {}
    for label, ys in series.items():
        ys = np.asarray(ys, dtype=np.float64)
        if ys.shape != x.shape:
            raise InvalidConfiguration(f"series {label!r} length mismatch")
        if logy:
            if np.any(ys <= 0):
                raise InvalidConfiguration("logy requires positive values")
            ys = np.log10(ys)
        prepared[label] = ys

    all_y = np.concatenate(list(prepared.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, ys in prepared.items():
        marker = label[0]
        cols = ((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = ((ys - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(f"{label[0]}={label}" for label in prepared)
    y_label = "log10(y)" if logy else "y"
    lines.append(
        f"x: {x_lo:.3g}..{x_hi:.3g}   {y_label}: {y_lo:.3g}..{y_hi:.3g}   {legend}"
    )
    return "\n".join(lines)
