"""Learning substrate: the ML models the paper selects between.

The paper evaluates three regressors for mapping (features, target
compression ratio) to an error bound setting (Table III): Random Forest
Regression (chosen), AdaBoost regression, and Support Vector Regression.
scikit-learn is not available in this environment, so all three are
implemented from scratch on numpy, along with the k-fold cross
validation used for hyper-parameter tuning and the correlation/error
metrics of Tables II and Formula (5).
"""

from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.svr import SVR
from repro.ml.metrics import (
    estimation_error,
    mean_absolute_error,
    mean_estimation_error,
    pearson_correlation,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import GridSearchCV, KFold, train_test_split

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AdaBoostRegressor",
    "SVR",
    "KFold",
    "GridSearchCV",
    "train_test_split",
    "pearson_correlation",
    "estimation_error",
    "mean_estimation_error",
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
]
