"""k-fold cross validation and grid search.

The paper tunes every model's hyper-parameters with k-fold cross
validation (Sec. IV-D); :class:`GridSearchCV` reproduces that loop for
any estimator exposing ``fit``/``predict`` and constructor kwargs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfiguration
from repro.ml.metrics import mean_absolute_error


class KFold:
    """Deterministic (optionally shuffled) k-fold splitter."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = 0
    ) -> None:
        if n_splits < 2:
            raise InvalidConfiguration("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int):
        """Yield ``(train_idx, test_idx)`` pairs."""
        if n_samples < self.n_splits:
            raise InvalidConfiguration("more folds than samples")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def train_test_split(
    features: np.ndarray,
    targets: np.ndarray,
    test_fraction: float = 0.25,
    random_state: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (train_x, test_x, train_y, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise InvalidConfiguration("test_fraction must be in (0, 1)")
    features = np.asarray(features)
    targets = np.asarray(targets)
    n = features.shape[0]
    if targets.shape[0] != n:
        raise InvalidConfiguration("features/targets row mismatch")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    if train_idx.size == 0:
        raise InvalidConfiguration("split leaves no training samples")
    return features[train_idx], features[test_idx], targets[train_idx], targets[test_idx]


@dataclass
class GridSearchResult:
    """Outcome of a grid search: the winning config and all scores."""

    best_params: dict
    best_score: float
    all_scores: list[tuple[dict, float]]


class GridSearchCV:
    """Exhaustive hyper-parameter search with k-fold CV.

    Args:
        estimator_cls: class with ``fit(X, y)`` / ``predict(X)`` whose
            constructor accepts the grid's keys.
        param_grid: mapping of parameter name -> candidate values.
        n_splits: CV folds.
        scorer: callable ``(y_true, y_pred) -> float`` where *lower is
            better*; defaults to MAE.
        random_state: fold shuffling seed.
    """

    def __init__(
        self,
        estimator_cls: type,
        param_grid: dict[str, list],
        n_splits: int = 5,
        scorer=None,
        random_state: int | None = 0,
    ) -> None:
        if not param_grid:
            raise InvalidConfiguration("param_grid must be non-empty")
        self.estimator_cls = estimator_cls
        self.param_grid = param_grid
        self.n_splits = n_splits
        self.scorer = scorer or mean_absolute_error
        self.random_state = random_state

    def search(self, features: np.ndarray, targets: np.ndarray) -> GridSearchResult:
        """Evaluate every grid point; return the lowest-score config."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        kfold = KFold(
            n_splits=self.n_splits, shuffle=True, random_state=self.random_state
        )
        names = sorted(self.param_grid)
        all_scores: list[tuple[dict, float]] = []
        best_params: dict | None = None
        best_score = np.inf
        for combo in itertools.product(*(self.param_grid[k] for k in names)):
            params = dict(zip(names, combo))
            fold_scores = []
            for train_idx, test_idx in kfold.split(features.shape[0]):
                model = self.estimator_cls(**params)
                model.fit(features[train_idx], targets[train_idx])
                pred = model.predict(features[test_idx])
                fold_scores.append(self.scorer(targets[test_idx], pred))
            score = float(np.mean(fold_scores))
            all_scores.append((params, score))
            if score < best_score:
                best_score = score
                best_params = params
        assert best_params is not None
        return GridSearchResult(
            best_params=best_params, best_score=best_score, all_scores=all_scores
        )
