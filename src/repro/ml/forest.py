"""Random Forest regression — the model FXRZ adopts (Sec. IV-D).

Bootstrap-aggregated CART trees with per-split feature subsampling.
The paper selects RFR because "it has the special ability to correct
overfitting problem by building lots of trees"; Table III shows it
beats AdaBoost and SVR on estimation error.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: features per split; ``None`` -> d, ``"sqrt"`` ->
            ``ceil(sqrt(d))``, ``"third"`` -> ``max(1, d // 3)`` (the
            classic regression-forest default).
        bootstrap: draw each tree's sample with replacement.
        random_state: master seed; trees get derived seeds.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "third",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise InvalidConfiguration("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self._trees: list[DecisionTreeRegressor] | None = None

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, int):
            if self.max_features < 1:
                raise InvalidConfiguration("max_features must be >= 1")
            return min(self.max_features, n_features)
        raise InvalidConfiguration(f"bad max_features {self.max_features!r}")

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        """Fit ``n_estimators`` trees on bootstrap resamples."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.shape != (features.shape[0],):
            raise InvalidConfiguration("bad training data shapes")
        n = features.shape[0]
        max_features = self._resolve_max_features(features.shape[1])
        rng = np.random.default_rng(self.random_state)
        trees = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=seed,
            )
            tree.fit(features[idx], targets[idx])
            trees.append(tree)
        self._trees = trees
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Average of the per-tree predictions."""
        if self._trees is None:
            raise NotFittedError("RandomForestRegressor is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        total = np.zeros(features.shape[0], dtype=np.float64)
        for tree in self._trees:
            total += tree.predict(features)
        return total / len(self._trees)

    @property
    def estimators_(self) -> list[DecisionTreeRegressor]:
        """The fitted trees."""
        if self._trees is None:
            raise NotFittedError("RandomForestRegressor is not fitted")
        return list(self._trees)
