"""Random Forest regression — the model FXRZ adopts (Sec. IV-D).

Bootstrap-aggregated CART trees with per-split feature subsampling.
The paper selects RFR because "it has the special ability to correct
overfitting problem by building lots of trees"; Table III shows it
beats AdaBoost and SVR on estimation error.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


def _fit_tree_task(task, arrays: dict, context: dict) -> DecisionTreeRegressor:
    """Fit one tree on its bootstrap rows (executor worker)."""
    seed, idx = task
    tree = DecisionTreeRegressor(
        max_depth=context["max_depth"],
        min_samples_leaf=context["min_samples_leaf"],
        max_features=context["max_features"],
        random_state=seed,
    )
    tree.fit(arrays["x"][idx], arrays["y"][idx])
    return tree


def _predict_chunk_task(task, arrays: dict, context: dict) -> list[np.ndarray]:
    """Per-tree predictions of one tree chunk (executor worker).

    Individual predictions (not a chunk partial sum) come back so the
    parent can reduce in exact tree order — floating-point addition is
    not associative, and parity with the serial path is bit-level.
    """
    lo, hi = task
    features = arrays["features"]
    return [tree.predict(features) for tree in context["trees"][lo:hi]]


class RandomForestRegressor:
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: features per split; ``None`` -> d, ``"sqrt"`` ->
            ``ceil(sqrt(d))``, ``"third"`` -> ``max(1, d // 3)`` (the
            classic regression-forest default).
        bootstrap: draw each tree's sample with replacement.
        random_state: master seed; trees get derived seeds.
        n_jobs: default worker count for :meth:`fit`/:meth:`predict`
            (``None``/1 = serial; tree fitting is pure-python and
            GIL-bound, so parallel runs use a process pool).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "third",
        bootstrap: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise InvalidConfiguration("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs
        self._trees: list[DecisionTreeRegressor] | None = None

    def _executor(self, n_jobs: int | None):
        """The executor for one call: ``n_jobs`` overrides the instance."""
        if n_jobs is None:
            n_jobs = self.n_jobs
        if n_jobs is None or n_jobs == 1:
            return None
        from repro.parallel.executor import ParallelExecutor

        executor = ParallelExecutor(n_jobs=n_jobs, backend="process")
        return executor if executor.backend != "serial" else None

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, int):
            if self.max_features < 1:
                raise InvalidConfiguration("max_features must be >= 1")
            return min(self.max_features, n_features)
        raise InvalidConfiguration(f"bad max_features {self.max_features!r}")

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        n_jobs: int | None = None,
    ) -> "RandomForestRegressor":
        """Fit ``n_estimators`` trees on bootstrap resamples.

        With ``n_jobs > 1`` the trees are fitted on a process pool. The
        per-tree seeds and bootstrap rows are drawn serially from the
        master generator first (the draws are cheap; the tree fits are
        not), so the resulting forest is bit-identical at any worker
        count.
        """
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.shape != (features.shape[0],):
            raise InvalidConfiguration("bad training data shapes")
        n = features.shape[0]
        max_features = self._resolve_max_features(features.shape[1])
        rng = np.random.default_rng(self.random_state)
        tasks: list[tuple[int, np.ndarray]] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tasks.append((seed, idx))
        context = {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": max_features,
        }
        executor = self._executor(n_jobs)
        if executor is not None:
            trees = executor.map(
                _fit_tree_task,
                tasks,
                shared={"x": features, "y": targets},
                context=context,
            )
        else:
            arrays = {"x": features, "y": targets}
            trees = [_fit_tree_task(task, arrays, context) for task in tasks]
        self._trees = trees
        return self

    def predict(
        self, features: np.ndarray, n_jobs: int | None = None
    ) -> np.ndarray:
        """Average of the per-tree predictions.

        With ``n_jobs > 1`` tree chunks predict on a process pool; the
        reduction still adds per-tree predictions in tree order, so the
        average is bit-identical to the serial one.
        """
        if self._trees is None:
            raise NotFittedError("RandomForestRegressor is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        executor = self._executor(n_jobs)
        total = np.zeros(features.shape[0], dtype=np.float64)
        if executor is not None and len(self._trees) > 1:
            bounds = np.linspace(
                0, len(self._trees), min(executor.n_jobs, len(self._trees)) + 1
            ).astype(int)
            chunks = executor.map(
                _predict_chunk_task,
                [
                    (int(lo), int(hi))
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                    if hi > lo
                ],
                shared={"features": features},
                context={"trees": self._trees},
            )
            for chunk in chunks:
                for prediction in chunk:
                    total += prediction
        else:
            for tree in self._trees:
                total += tree.predict(features)
        return total / len(self._trees)

    @property
    def estimators_(self) -> list[DecisionTreeRegressor]:
        """The fitted trees."""
        if self._trees is None:
            raise NotFittedError("RandomForestRegressor is not fitted")
        return list(self._trees)
