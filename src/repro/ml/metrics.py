"""Regression and correlation metrics used throughout the evaluation.

* :func:`pearson_correlation` — Table II's feature/CR correlation.
* :func:`estimation_error` — the paper's Formula (5):
  ``|TCR - MCR| / TCR``.
* Standard regression scores for model diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration


def _paired(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise InvalidConfiguration("inputs must have matching shapes")
    if a.size == 0:
        raise InvalidConfiguration("inputs must be non-empty")
    return a, b


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson product-moment correlation coefficient (Table II)."""
    a, b = _paired(a, b)
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
    if denom == 0:
        return 0.0
    return float(np.sum(a * b) / denom)


def estimation_error(target_cr: float, measured_cr: float) -> float:
    """Formula (5): |TCR - MCR| / TCR."""
    if target_cr <= 0:
        raise InvalidConfiguration("target compression ratio must be > 0")
    return abs(target_cr - measured_cr) / target_cr


def mean_estimation_error(
    target_crs: np.ndarray, measured_crs: np.ndarray
) -> float:
    """Mean of Formula (5) across paired (TCR, MCR) samples."""
    t, m = _paired(target_crs, measured_crs)
    if np.any(t <= 0):
        raise InvalidConfiguration("target compression ratios must be > 0")
    return float(np.mean(np.abs(t - m) / t))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean |y - yhat|."""
    t, p = _paired(y_true, y_pred)
    return float(np.mean(np.abs(t - p)))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """sqrt(mean (y - yhat)^2)."""
    t, p = _paired(y_true, y_pred)
    return float(np.sqrt(np.mean((t - p) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    t, p = _paired(y_true, y_pred)
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
