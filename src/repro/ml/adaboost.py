"""AdaBoost.R2 regression (Drucker, 1997).

The boosting regressor the paper compares against in Table III, where
it "suffers from high estimation errors when target compression ratios
... are relatively lower". Weak learners are shallow CART trees; each
round reweights samples by their relative loss and the ensemble
predicts the weighted median.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class AdaBoostRegressor:
    """AdaBoost.R2 over shallow regression trees.

    Args:
        n_estimators: maximum boosting rounds.
        max_depth: weak-learner depth (AdaBoost favors shallow trees).
        loss: "linear", "square" or "exponential" relative loss.
        learning_rate: shrinkage of per-round estimator weights.
        random_state: seed for the weighted resampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 3,
        loss: str = "linear",
        learning_rate: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise InvalidConfiguration("n_estimators must be >= 1")
        if loss not in ("linear", "square", "exponential"):
            raise InvalidConfiguration("loss must be linear/square/exponential")
        if learning_rate <= 0:
            raise InvalidConfiguration("learning_rate must be > 0")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.loss = loss
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._estimators: list[DecisionTreeRegressor] | None = None
        self._weights: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "AdaBoostRegressor":
        """Run AdaBoost.R2 boosting rounds."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.shape != (features.shape[0],):
            raise InvalidConfiguration("bad training data shapes")
        n = features.shape[0]
        rng = np.random.default_rng(self.random_state)
        sample_weight = np.full(n, 1.0 / n)
        estimators: list[DecisionTreeRegressor] = []
        est_weights: list[float] = []

        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            # R2 trains on a weighted bootstrap resample.
            idx = rng.choice(n, size=n, replace=True, p=sample_weight)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, random_state=seed
            )
            tree.fit(features[idx], targets[idx])
            pred = tree.predict(features)
            abs_err = np.abs(pred - targets)
            err_max = abs_err.max()
            if err_max <= 0:
                # Perfect fit: keep it with a large weight and stop.
                estimators.append(tree)
                est_weights.append(10.0)
                break
            rel = abs_err / err_max
            if self.loss == "square":
                rel = rel**2
            elif self.loss == "exponential":
                rel = 1.0 - np.exp(-rel)
            avg_loss = float(np.sum(sample_weight * rel))
            if avg_loss >= 0.5:
                if not estimators:
                    estimators.append(tree)
                    est_weights.append(1e-3)
                break
            beta = avg_loss / (1.0 - avg_loss)
            estimators.append(tree)
            est_weights.append(self.learning_rate * np.log(1.0 / beta))
            sample_weight = sample_weight * np.power(
                beta, self.learning_rate * (1.0 - rel)
            )
            total = sample_weight.sum()
            if total <= 0:
                break
            sample_weight /= total

        self._estimators = estimators
        self._weights = np.array(est_weights, dtype=np.float64)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Weighted-median aggregation over the boosted trees."""
        if self._estimators is None or self._weights is None:
            raise NotFittedError("AdaBoostRegressor is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        preds = np.stack(
            [tree.predict(features) for tree in self._estimators], axis=1
        )
        order = np.argsort(preds, axis=1)
        sorted_preds = np.take_along_axis(preds, order, axis=1)
        sorted_w = self._weights[order]
        cum = np.cumsum(sorted_w, axis=1)
        threshold = 0.5 * cum[:, -1:]
        pick = np.argmax(cum >= threshold, axis=1)
        return sorted_preds[np.arange(preds.shape[0]), pick]
