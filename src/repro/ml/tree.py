"""CART regression tree.

Axis-aligned binary splits chosen by variance (sum-of-squared-error)
reduction, with the usual depth / sample-count stopping rules and
optional per-split feature subsampling (used by the random forest).
Split search is vectorized: candidate thresholds per feature are
evaluated with prefix sums over the sorted targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration, NotFittedError

_NO_CHILD = -1


class DecisionTreeRegressor:
    """Regression tree with variance-reduction splitting.

    Args:
        max_depth: maximum depth; ``None`` grows until leaves are pure
            or too small.
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples each child must retain.
        max_features: number of features examined per split; ``None``
            uses all (classic CART), smaller values decorrelate trees
            inside a forest.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise InvalidConfiguration("max_depth must be >= 1")
        if min_samples_split < 2:
            raise InvalidConfiguration("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise InvalidConfiguration("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: dict[str, np.ndarray] | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        """Grow the tree on ``features`` (n, d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise InvalidConfiguration("features must be 2-D (n_samples, n_features)")
        if targets.shape != (features.shape[0],):
            raise InvalidConfiguration("targets must be 1-D matching features rows")
        if features.shape[0] == 0:
            raise InvalidConfiguration("cannot fit on zero samples")
        if sample_weight is None:
            sample_weight = np.ones(features.shape[0], dtype=np.float64)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != targets.shape or sample_weight.min() < 0:
                raise InvalidConfiguration("bad sample_weight")

        rng = np.random.default_rng(self.random_state)
        # Growable node storage; lists are converted to arrays afterwards.
        feature_ids: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def new_node() -> int:
            feature_ids.append(_NO_CHILD)
            thresholds.append(0.0)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            values.append(0.0)
            return len(values) - 1

        root = new_node()
        stack = [(root, np.arange(features.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            y = targets[idx]
            w = sample_weight[idx]
            total_w = w.sum()
            values[node] = float(np.average(y, weights=w)) if total_w > 0 else float(
                y.mean()
            )
            if (
                idx.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(y == y[0])
            ):
                continue
            split = self._best_split(features[idx], y, w, rng)
            if split is None:
                continue
            feat, thr = split
            mask = features[idx, feat] <= thr
            left_idx = idx[mask]
            right_idx = idx[~mask]
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                continue
            feature_ids[node] = feat
            thresholds[node] = thr
            left = new_node()
            right = new_node()
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self._nodes = {
            "feature": np.array(feature_ids, dtype=np.int64),
            "threshold": np.array(thresholds, dtype=np.float64),
            "left": np.array(lefts, dtype=np.int64),
            "right": np.array(rights, dtype=np.int64),
            "value": np.array(values, dtype=np.float64),
        }
        return self

    def _best_split(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        """Return (feature, threshold) with the largest SSE reduction."""
        n, d = features.shape
        if self.max_features is not None and self.max_features < d:
            candidates = rng.choice(d, size=self.max_features, replace=False)
        else:
            candidates = np.arange(d)

        best_gain = 1e-12
        best: tuple[int, float] | None = None
        wy = weights * targets
        wy2 = weights * targets * targets
        parent_sse = wy2.sum() - (wy.sum() ** 2) / max(weights.sum(), 1e-300)
        for feat in candidates:
            order = np.argsort(features[:, feat], kind="stable")
            x_sorted = features[order, feat]
            w_sorted = weights[order]
            wy_sorted = wy[order]
            wy2_sorted = wy2[order]
            cw = np.cumsum(w_sorted)
            cwy = np.cumsum(wy_sorted)
            cwy2 = np.cumsum(wy2_sorted)
            total_w, total_wy, total_wy2 = cw[-1], cwy[-1], cwy2[-1]
            # Valid split positions: between distinct consecutive x values,
            # honoring min_samples_leaf on both sides.
            pos = np.arange(1, n)
            valid = x_sorted[1:] > x_sorted[:-1]
            valid &= pos >= self.min_samples_leaf
            valid &= (n - pos) >= self.min_samples_leaf
            if not valid.any():
                continue
            k = pos[valid] - 1
            lw = cw[k]
            rw = total_w - lw
            ok = (lw > 0) & (rw > 0)
            if not ok.any():
                continue
            k = k[ok]
            lw = lw[ok]
            rw = rw[ok]
            left_sse = cwy2[k] - (cwy[k] ** 2) / lw
            right_sse = (total_wy2 - cwy2[k]) - ((total_wy - cwy[k]) ** 2) / rw
            gain = parent_sse - (left_sse + right_sse)
            j = int(np.argmax(gain))
            if gain[j] > best_gain:
                best_gain = float(gain[j])
                thr = 0.5 * (x_sorted[k[j]] + x_sorted[k[j] + 1])
                best = (int(feat), float(thr))
        return best

    # -- inference ---------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d)."""
        if self._nodes is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        nodes = self._nodes
        out = np.zeros(features.shape[0], dtype=np.float64)
        current = np.zeros(features.shape[0], dtype=np.int64)
        active = np.arange(features.shape[0])
        while active.size:
            node_ids = current[active]
            feats = nodes["feature"][node_ids]
            leaf = feats == _NO_CHILD
            if leaf.any():
                done = active[leaf]
                out[done] = nodes["value"][current[done]]
                active = active[~leaf]
                node_ids = current[active]
                feats = nodes["feature"][node_ids]
            if not active.size:
                break
            x = features[active, feats]
            go_left = x <= nodes["threshold"][node_ids]
            current[active] = np.where(
                go_left, nodes["left"][node_ids], nodes["right"][node_ids]
            )
        return out

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        if self._nodes is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return int(self._nodes["value"].size)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root-only tree has depth 0)."""
        if self._nodes is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        nodes = self._nodes
        depth = 0
        stack = [(0, 0)]
        while stack:
            node, d = stack.pop()
            depth = max(depth, d)
            if nodes["feature"][node] != _NO_CHILD:
                stack.append((int(nodes["left"][node]), d + 1))
                stack.append((int(nodes["right"][node]), d + 1))
        return depth
