"""ε-insensitive Support Vector Regression with an RBF kernel.

The third model of the paper's Table III comparison. The dual problem
is solved with cyclic coordinate descent on the bias-augmented kernel
(``K + 1``), which folds the bias into the kernel and removes the
equality constraint — each coordinate then has a closed-form
soft-threshold update, giving a compact, dependency-free solver that is
exact at convergence for this box-constrained QP.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfiguration, NotFittedError


def _rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gram matrix exp(-gamma * ||a_i - b_j||^2), bias-augmented (+1)."""
    sq = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq) + 1.0


class SVR:
    """Kernel SVR trained by coordinate descent on the dual.

    Args:
        c: box constraint (regularization strength inverse).
        epsilon: width of the ε-insensitive tube.
        gamma: RBF width; ``"scale"`` mirrors sklearn's
            ``1 / (d * var(X))`` heuristic.
        max_iter: maximum full coordinate sweeps.
        tol: stop when the largest coordinate change in a sweep is
            below this value.
    """

    def __init__(
        self,
        c: float = 1.0,
        epsilon: float = 0.1,
        gamma: float | str = "scale",
        max_iter: int = 200,
        tol: float = 1e-5,
    ) -> None:
        if c <= 0:
            raise InvalidConfiguration("c must be > 0")
        if epsilon < 0:
            raise InvalidConfiguration("epsilon must be >= 0")
        self.c = c
        self.epsilon = epsilon
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self._beta: np.ndarray | None = None
        self._train_x: np.ndarray | None = None
        self._gamma_value: float | None = None

    def _resolve_gamma(self, features: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma != "scale":
                raise InvalidConfiguration("gamma must be a float or 'scale'")
            var = float(features.var())
            if var <= 0:
                var = 1.0
            return 1.0 / (features.shape[1] * var)
        if self.gamma <= 0:
            raise InvalidConfiguration("gamma must be > 0")
        return float(self.gamma)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SVR":
        """Solve the dual QP by cyclic soft-threshold coordinate descent."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.shape != (features.shape[0],):
            raise InvalidConfiguration("bad training data shapes")
        n = features.shape[0]
        gamma = self._resolve_gamma(features)
        kernel = _rbf_kernel(features, features, gamma)
        diag = np.diag(kernel).copy()
        diag[diag <= 0] = 1e-12

        beta = np.zeros(n, dtype=np.float64)
        # residual_i = y_i - sum_j K_ij beta_j, maintained incrementally.
        residual = targets.copy()
        for _ in range(self.max_iter):
            max_delta = 0.0
            for i in range(n):
                # Unregularized optimum for coordinate i.
                rho = residual[i] + kernel[i, i] * beta[i]
                # Soft-threshold for the eps-insensitive L1 term.
                if rho > self.epsilon:
                    target = (rho - self.epsilon) / diag[i]
                elif rho < -self.epsilon:
                    target = (rho + self.epsilon) / diag[i]
                else:
                    target = 0.0
                new_beta = float(np.clip(target, -self.c, self.c))
                delta = new_beta - beta[i]
                if delta != 0.0:
                    residual -= delta * kernel[:, i]
                    beta[i] = new_beta
                    max_delta = max(max_delta, abs(delta))
            if max_delta < self.tol:
                break

        self._beta = beta
        self._train_x = features
        self._gamma_value = gamma
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """f(x) = sum_i beta_i * (k(x_i, x) + 1)."""
        if self._beta is None or self._train_x is None:
            raise NotFittedError("SVR is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        kernel = _rbf_kernel(features, self._train_x, self._gamma_value)
        return kernel @ self._beta

    @property
    def support_vector_count(self) -> int:
        """Number of training points with non-zero dual coefficients."""
        if self._beta is None:
            raise NotFittedError("SVR is not fitted")
        return int(np.sum(np.abs(self._beta) > 1e-12))
