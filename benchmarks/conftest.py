"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables or figures, printing
the rows to stdout and writing them to ``benchmarks/results/``. The
FXRZ configuration below is shared across benches so the experiment
harness's in-process cache amortizes training across the session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import FXRZConfig

#: One configuration for the whole bench session -> cache hits.
BENCH_CONFIG = FXRZConfig(stationary_points=12, augmented_samples=150)

#: The matrix evaluated by the headline accuracy benches: one field per
#: application, all four compressors.
BENCH_FIELDS = (
    ("nyx", "baryon_density"),
    ("qmcpack", "spin0"),
    ("rtm", "pressure"),
    ("hurricane", "TC"),
)
BENCH_COMPRESSORS = ("sz", "zfp", "mgard", "fpzip")

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    _RESULTS_DIR.mkdir(exist_ok=True)
    return _RESULTS_DIR


@pytest.fixture()
def report(results_dir, request):
    """Print a table and persist it under the bench's name."""

    def _report(text: str) -> None:
        print("\n" + text)
        name = request.node.name.replace("/", "_")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
