"""Table IV — sweeping the constant-block threshold coefficient lambda.

The paper compares lambda in {0.05, 0.10, 0.15} and finds 0.15 optimal
for estimation accuracy. This bench sweeps the same values on datasets
with substantial smooth regions and reports mean estimation error per
lambda.
"""

import numpy as np

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.adjustment import nonconstant_fraction
from repro.core.pipeline import FXRZ
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table

_LAMBDAS = (0.05, 0.10, 0.15)
_CASES = (("hurricane", "QCLOUD", "sz"), ("hurricane", "QCLOUD", "zfp"),
          ("nyx", "baryon_density", "sz"))


def test_table4_lambda_sweep(benchmark, report):
    rows = []
    mean_by_lambda = {lam: [] for lam in _LAMBDAS}
    for app, field, comp_name in _CASES:
        train = training_arrays(app, field)
        snapshot = held_out_snapshots(app, field)[0]
        errs_by_lambda = {}
        for lam in _LAMBDAS:
            config = FXRZConfig(
                stationary_points=12, augmented_samples=150, lam=lam
            )
            pipeline = FXRZ(get_compressor(comp_name), config=config)
            pipeline.fit(train)
            targets = target_ratio_grid(pipeline.compressor, snapshot, 5)
            errs = [
                pipeline.compress_to_ratio(snapshot.data, float(t)).estimation_error
                for t in targets
            ]
            errs_by_lambda[lam] = float(np.mean(errs))
            mean_by_lambda[lam].append(errs_by_lambda[lam])
        rows.append(
            [f"{app}/{field} ({comp_name})"]
            + [f"{errs_by_lambda[lam]:.1%}" for lam in _LAMBDAS]
        )
    rows.append(
        ["average"]
        + [f"{float(np.mean(mean_by_lambda[lam])):.1%}" for lam in _LAMBDAS]
    )

    data = held_out_snapshots("hurricane", "QCLOUD")[0].data
    benchmark(lambda: nonconstant_fraction(data, lam=0.15))

    report(
        render_table(
            ["case"] + [f"lambda={lam}" for lam in _LAMBDAS],
            rows,
            title="Table IV - estimation error by constant-block threshold",
        )
    )

    # Shape assertion: the paper's chosen 0.15 is at least competitive.
    avg = {lam: float(np.mean(mean_by_lambda[lam])) for lam in _LAMBDAS}
    assert avg[0.15] <= min(avg.values()) + 0.05
