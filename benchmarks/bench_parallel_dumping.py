"""Sec. V-H — end-to-end parallel data dumping, FXRZ vs FRaZ.

Models the paper's 64-4096-core Bebop experiment with measured
single-rank quantities (compressor throughput, FXRZ analysis time,
FRaZ search time) plugged into the shared-filesystem dump model. To
place results on the paper's scale, per-rank volumes and a native-like
compressor throughput are used for the projection alongside the
locally measured one.

Shape to reproduce: FXRZ's dump is faster at every scale, with the
gain shrinking as the shared write stage dominates (the paper's
1.18-8.71x band).
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import get_trained_fxrz
from repro.experiments.tables import render_table
from repro.hpc import (
    DumpScenario,
    measure_throughput,
    simulate_dump,
    simulate_faulty_dump,
)
from repro.robustness import FaultSpec, RetryPolicy

_RANKS = (64, 256, 1024, 4096)

#: Native SZ-class compressors run at ~200 MB/s/core on Broadwell;
#: used for the paper-scale projection next to the measured value.
_NATIVE_THROUGHPUT = 200e6


def test_parallel_dumping(benchmark, report):
    pipeline = get_trained_fxrz("nyx", "baryon_density", "sz", config=BENCH_CONFIG)
    comp = get_compressor("sz")
    data = held_out_snapshots("nyx", "baryon_density")[0].data

    result = pipeline.compress_to_ratio(data, 15.0)
    measured_throughput = measure_throughput(comp, data, result.estimate.config)
    fraz = FRaZ(comp, max_iterations=15).search(data, 15.0)

    # Express decision costs as multiples of one compression so they
    # scale with the projected per-rank volume.
    compress_seconds = data.nbytes / measured_throughput
    fxrz_cost_ratio = result.estimate.analysis_seconds / compress_seconds
    fraz_cost_ratio = fraz.search_seconds / compress_seconds

    bytes_per_rank = 512e6
    native_compress = bytes_per_rank / _NATIVE_THROUGHPUT

    rows = []
    speedups = []
    for n_ranks in _RANKS:
        common = dict(
            n_ranks=n_ranks,
            bytes_per_rank=bytes_per_rank,
            compression_ratio=result.measured_ratio,
            compress_throughput=_NATIVE_THROUGHPUT,
            shared_bandwidth=2e9,
        )
        fxrz_dump = simulate_dump(
            DumpScenario(
                analysis_seconds=fxrz_cost_ratio * native_compress, **common
            )
        )
        fraz_dump = simulate_dump(
            DumpScenario(
                analysis_seconds=fraz_cost_ratio * native_compress, **common
            )
        )
        speedup = fraz_dump.total / fxrz_dump.total
        speedups.append(speedup)
        rows.append(
            [
                str(n_ranks),
                f"{fxrz_dump.total:.1f}s",
                f"{fraz_dump.total:.1f}s",
                f"{speedup:.2f}x",
            ]
        )

    benchmark(
        lambda: simulate_dump(
            DumpScenario(
                n_ranks=4096,
                bytes_per_rank=bytes_per_rank,
                compression_ratio=result.measured_ratio,
                compress_throughput=_NATIVE_THROUGHPUT,
                analysis_seconds=0.1,
            )
        )
    )

    report(
        render_table(
            ["ranks", "FXRZ dump", "FRaZ dump", "speedup"],
            rows,
            title=(
                "Sec. V-H - parallel dumping model "
                f"(measured: FXRZ {fxrz_cost_ratio:.3f}x / FRaZ "
                f"{fraz_cost_ratio:.1f}x of one compression; "
                "paper band: 1.18-8.71x)"
            ),
        )
    )

    assert all(s > 1.0 for s in speedups), "FXRZ dump always wins"
    assert speedups[0] >= speedups[-1], "gain shrinks as I/O dominates"
    assert 1.05 <= speedups[-1] <= 30.0, "largest scale lands near the band"


def test_parallel_dumping_under_faults(benchmark, report):
    """Completion under seeded faults: >=10% rank failures + stragglers.

    The retry policy (exponential backoff, per-rank budget) carries the
    dump to completion; the report lists per-rank attempt counts so the
    overhead can be attributed to specific failure events.
    """
    scenario = DumpScenario(
        n_ranks=256,
        bytes_per_rank=512e6,
        compression_ratio=20.0,
        compress_throughput=_NATIVE_THROUGHPUT,
        analysis_seconds=0.5,
        shared_bandwidth=2e9,
    )
    faults = FaultSpec(
        seed=7,
        rank_failure_prob=0.12,
        straggler_prob=0.1,
        straggler_slowdown=4.0,
        write_error_prob=0.05,
        checkpoint_fraction=0.5,
    )
    retry = RetryPolicy(max_attempts=8, base_delay=0.5)

    faulty = benchmark(lambda: simulate_faulty_dump(scenario, faults, retry))

    retried = [r for r in faulty.ranks if r.attempts > 1]
    rows = [
        [
            str(r.rank),
            str(r.attempts),
            "yes" if r.straggler else "no",
            ",".join(r.events),
            f"{r.seconds:.1f}s",
        ]
        for r in retried[:12]
    ]
    report(
        render_table(
            ["rank", "attempts", "straggler", "events", "wall time"],
            rows,
            title=(
                "Fault-injected dump (256 ranks, 12% fail / 10% straggle "
                f"/ 5% write-err, seed 7): {faulty.failed_ranks} ranks "
                f"retried, {faulty.total_attempts} total attempts, "
                f"overhead {faulty.overhead:.2f}x over fault-free "
                f"({faulty.completion_seconds:.1f}s vs "
                f"{faulty.fault_free_seconds:.1f}s); first 12 retried "
                "ranks shown"
            ),
        )
    )

    assert len(faulty.ranks) == scenario.n_ranks, "every rank completed"
    assert faulty.failed_ranks >= 0.05 * scenario.n_ranks
    assert faulty.overhead >= 1.0
