"""Fig. 13 — mean estimation error per test dataset x compressor.

The paper's headline accuracy matrix: for every application's held-out
snapshot and all four compressors, the mean Formula-(5) error of FXRZ
(paper: 8.24 % average) vs FRaZ-15 (19.37 %) vs FRaZ-6 (34.48 %).
Absolute values differ on the synthetic substrate; the ordering and
rough magnitudes are the reproduction target.
"""

import numpy as np

from conftest import BENCH_COMPRESSORS, BENCH_CONFIG, BENCH_FIELDS
from repro.experiments.harness import accuracy_records, summarize_errors
from repro.experiments.tables import render_table


def test_fig13_error_matrix(benchmark, report):
    rows = []
    totals = {"fxrz": [], "fraz15": [], "fraz6": []}
    for app, field in BENCH_FIELDS:
        for comp_name in BENCH_COMPRESSORS:
            records = accuracy_records(
                app,
                field,
                comp_name,
                n_targets=5,
                config=BENCH_CONFIG,
                max_snapshots=None,
            )
            summary = summarize_errors(records)
            for key in totals:
                totals[key].append(summary[key])
            rows.append(
                [
                    f"{app}/{field}",
                    comp_name,
                    f"{summary['fxrz']:.1%}",
                    f"{summary['fraz15']:.1%}",
                    f"{summary['fraz6']:.1%}",
                ]
            )
    averages = {k: float(np.mean(v)) for k, v in totals.items()}
    rows.append(
        [
            "average",
            "-",
            f"{averages['fxrz']:.1%}",
            f"{averages['fraz15']:.1%}",
            f"{averages['fraz6']:.1%}",
        ]
    )

    from repro.experiments.corpus import held_out_snapshots
    from repro.experiments.harness import get_trained_fxrz

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    data = held_out_snapshots("hurricane", "TC")[0].data
    benchmark(lambda: pipeline.estimate_config(data, 15.0))

    report(
        render_table(
            ["test dataset", "compressor", "FXRZ", "FRaZ-15", "FRaZ-6"],
            rows,
            title=(
                "Fig. 13 - mean estimation error "
                "(paper avgs: FXRZ 8.24%, FRaZ-15 19.37%, FRaZ-6 34.48%)"
            ),
        )
    )

    assert averages["fxrz"] < averages["fraz6"]
    assert averages["fraz15"] < averages["fraz6"]
    assert averages["fxrz"] < 0.35, "FXRZ average error should stay low"
