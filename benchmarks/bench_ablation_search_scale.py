"""Ablation — why FRaZ struggles: linear vs log search traversal.

FRaZ is compressor-agnostic and walks the raw error-bound axis; useful
bounds span decades, so small targets sit in the first sliver of the
range and soak up iterations (the paper's low-TCR drift in Fig. 12).
This ablation gives FRaZ a log-scale axis and measures how much of its
error was the traversal rather than the budget — quantifying the
advantage FXRZ gets from learning the (log-config, ratio) relationship.
"""

import numpy as np

from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.datasets import load_series
from repro.experiments.tables import render_table


def test_ablation_fraz_search_scale(benchmark, report):
    data = load_series("hurricane", "TC").snapshots[-1].data
    comp = get_compressor("sz")
    targets = np.linspace(4.0, 60.0, 6)

    rows = []
    means = {}
    for scale in ("linear", "log"):
        for budget in (6, 15):
            cache = {}
            errors = [
                FRaZ(comp, max_iterations=budget, search_scale=scale)
                .search(data, float(t), cache=cache)
                .estimation_error
                for t in targets
            ]
            means[(scale, budget)] = float(np.mean(errors))
            rows.append(
                [scale, str(budget), f"{means[(scale, budget)]:.1%}"]
            )

    benchmark.pedantic(
        lambda: FRaZ(comp, max_iterations=6).search(data, 20.0),
        rounds=1,
        iterations=1,
    )

    report(
        render_table(
            ["search scale", "iterations", "mean estimation error"],
            rows,
            title="Ablation - FRaZ search-axis traversal (Hurricane TC, SZ)",
        )
    )

    # With enough budget, log traversal matches or beats linear — the
    # informed axis is what FXRZ learns implicitly. (At 6 iterations
    # neither axis has the budget to exploit its probes, so no claim
    # is made there.)
    assert means[("log", 15)] <= means[("linear", 15)] + 0.02
