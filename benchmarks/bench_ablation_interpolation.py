"""Ablation — SZ predictor generations: cubic vs linear vs Lorenzo.

The paper's MSD feature exists because cubic-spline structure predicts
compressibility; the SZ-like compressor itself also offers both
interpolation orders, and the library additionally ships the classic
SZ2-style Lorenzo predictor. This ablation compares all three CR-vs-eb
curves on a smooth wave field (where interpolation should win) and a
rough cosmology field (where the gap narrows), grounding the design
choice and reproducing the known SZ3-over-SZ2 improvement.
"""

import numpy as np

from repro.compressors.sz import SZCompressor
from repro.compressors.sz_lorenzo import SZLorenzoCompressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_CASES = (("rtm-small", "pressure"), ("nyx-1", "baryon_density"))


def test_ablation_sz_predictors(benchmark, report):
    cubic = SZCompressor("cubic")
    linear = SZCompressor("linear")
    lorenzo = SZLorenzoCompressor()

    rows = []
    gains = {}
    lorenzo_gains = {}
    for name, field in _CASES:
        data = load_series(name, field).snapshots[-1].data
        value_range = float(np.ptp(data))
        per_bound = []
        per_bound_lorenzo = []
        for rel in (1e-4, 1e-3, 1e-2):
            eb = rel * value_range
            cr_cubic = cubic.compression_ratio(data, eb)
            cr_linear = linear.compression_ratio(data, eb)
            cr_lorenzo = lorenzo.compression_ratio(data, eb)
            per_bound.append(cr_cubic / cr_linear)
            per_bound_lorenzo.append(cr_cubic / cr_lorenzo)
            rows.append(
                [
                    f"{name}/{field}",
                    f"{eb:.3g}",
                    f"{cr_cubic:.2f}",
                    f"{cr_linear:.2f}",
                    f"{cr_lorenzo:.2f}",
                    f"{cr_cubic / cr_lorenzo:.2f}x",
                ]
            )
        gains[name] = float(np.mean(per_bound))
        lorenzo_gains[name] = float(np.mean(per_bound_lorenzo))

    data = load_series("rtm-small", "pressure").snapshots[-1].data
    benchmark(lambda: cubic.compress(data, 1e-3 * float(np.ptp(data))))

    report(
        render_table(
            [
                "dataset",
                "error bound",
                "CR cubic",
                "CR linear",
                "CR lorenzo (sz2)",
                "cubic vs sz2",
            ],
            rows,
            title="Ablation - SZ predictor generations",
        )
    )

    # Cubic must be at least competitive with linear on the smooth wave
    # field; SZ3-style interpolation must clearly beat classic Lorenzo
    # on the heavy-tailed cosmology field and stay competitive on the
    # wave field (the published SZ3 result).
    assert gains["rtm-small"] > 0.95
    assert lorenzo_gains["nyx-1"] > 1.0
    assert lorenzo_gains["rtm-small"] > 0.9
