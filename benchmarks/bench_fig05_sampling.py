"""Fig. 5 / Sec. IV-E1 — uniform sampling: accuracy vs analysis speed.

Compares FXRZ with stride-4 sampling (~1.5 % of points in 3-D) against
stride-1 (full scan). The paper reports 8.24 % vs 6.23 % estimation
error and ~20x faster analysis; the bench asserts the shape: sampling
costs only a small accuracy delta while cutting feature time by an
order of magnitude.
"""

import time

import numpy as np

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.features import extract_features
from repro.core.pipeline import FXRZ
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table

_STRIDES = (1, 4)


def test_fig05_sampling_tradeoff(benchmark, report):
    train = training_arrays("hurricane", "TC")
    snapshot = held_out_snapshots("hurricane", "TC")[0]

    rows = []
    errors = {}
    feat_seconds = {}
    for stride in _STRIDES:
        config = FXRZConfig(
            stationary_points=12, augmented_samples=150, sampling_stride=stride
        )
        pipeline = FXRZ(get_compressor("sz"), config=config)
        pipeline.fit(train)
        targets = target_ratio_grid(pipeline.compressor, snapshot, 6)
        errs = [
            pipeline.compress_to_ratio(snapshot.data, float(t)).estimation_error
            for t in targets
        ]
        errors[stride] = float(np.mean(errs))

        # Time the feature pass on the largest grid (48^3 cosmology
        # field): on tiny grids fixed Python overhead hides the
        # sampling win that dominates at production scale.
        from repro.datasets import load_series

        timing_data = load_series("nyx-1", "baryon_density").snapshots[0].data
        tick = time.perf_counter()
        for _ in range(5):
            extract_features(timing_data, stride=stride)
        feat_seconds[stride] = (time.perf_counter() - tick) / 5

        sampled_fraction = (1 / stride) ** timing_data.ndim
        rows.append(
            [
                f"stride={stride}",
                f"{sampled_fraction:.2%}",
                f"{errors[stride]:.1%}",
                f"{feat_seconds[stride] * 1e3:.1f}ms",
            ]
        )

    benchmark(lambda: extract_features(snapshot.data, stride=4))

    speedup = feat_seconds[1] / feat_seconds[4]
    report(
        render_table(
            ["sampling", "points used", "est. error", "feature time"],
            rows,
            title="Fig. 5 - stride sampling tradeoff (Hurricane TC, SZ)",
        )
        + f"\nfeature-extraction speedup from sampling: {speedup:.1f}x"
    )

    assert errors[4] < errors[1] + 0.10, "sampling must cost little accuracy"
    assert speedup > 3.0, "sampling must deliver a large analysis speedup"
