"""Serving resilience — backpressure shedding and chaos under load.

Two phases against the sharded service, both guarding the supervisor's
core invariant: **every admitted request's future resolves**, whatever
dies.

* **Overload** — a burst several times the admission queue's depth hits
  a deliberately undersized service. The bench records how many
  submissions shed (with a positive ``retry_after`` hint) versus
  admitted, and asserts the admitted-request loss rate is exactly 0.
* **Chaos** — a steady load runs over three shards while seeded crash
  faults fire inside the workers and the bench kills two shards
  outright mid-load. Recorded: p50/p99 latency of the served requests,
  supervisor counters (respawns, redeliveries, fallbacks) and, again, a
  loss rate of 0.

Both phases land in the repo-root ``BENCH_serving_resilience.json`` so
a regression in either shedding accounting or crash recovery shows up
as a diff, not a hang.
"""

import json
import pathlib
import time
from concurrent.futures import wait

import numpy as np

from conftest import BENCH_CONFIG
from repro.errors import ServiceOverloadedError
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.harness import get_trained_fxrz
from repro.experiments.tables import render_table
from repro.robustness.faults import FaultSpec, RetryPolicy
from repro.serving import EstimateRequest, ShardedEstimationService

_RESILIENCE_JSON = (
    pathlib.Path(__file__).resolve().parents[1]
    / "BENCH_serving_resilience.json"
)

#: Supervision knobs tight enough that recovery happens in bench time.
_FAST = dict(
    poll_interval=0.01,
    retry_policy=RetryPolicy(max_attempts=6, base_delay=0.05, jitter=0.0),
    breaker_options={"failure_threshold": 4, "reset_seconds": 0.3},
)


def _merge_json(update: dict) -> None:
    """Merge ``update`` so either phase can run alone without clobbering."""
    existing: dict = {}
    if _RESILIENCE_JSON.is_file():
        try:
            existing = json.loads(_RESILIENCE_JSON.read_text())
        except ValueError:
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing.update(update)
    _RESILIENCE_JSON.write_text(json.dumps(existing, indent=2) + "\n")


def _targets(pipeline, snapshot, n: int) -> np.ndarray:
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    return np.linspace(lo * 1.05, hi * 0.95, n)


def test_overload_shedding(report):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    burst = 160
    queue_depth = 8
    targets = _targets(pipeline, snapshot, burst)

    with ShardedEstimationService.for_pipeline(
        pipeline,
        shards=2,
        queue_depth=queue_depth,
        max_inflight_per_shard=2,
        **_FAST,
    ) as service:
        futures, hints = [], []
        for tcr in targets:
            try:
                futures.append(
                    service.submit(
                        EstimateRequest(
                            data=snapshot.data,
                            target_ratio=float(tcr),
                            dataset_id=snapshot.name,
                        )
                    )
                )
            except ServiceOverloadedError as exc:
                hints.append(exc.retry_after)
        done, not_done = wait(futures, timeout=300.0)
        stats = service.stats

    admitted = len(futures)
    shed = len(hints)
    lost = len(not_done) + sum(1 for f in done if f.exception() is not None)
    loss_rate = lost / max(1, admitted)
    latencies = sorted(
        f.result().latency_seconds for f in done if f.exception() is None
    )
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))

    report(
        render_table(
            ["metric", "value"],
            [
                ["burst size", str(burst)],
                ["queue depth", str(queue_depth)],
                ["admitted", str(admitted)],
                ["shed", str(shed)],
                ["loss rate (admitted)", f"{loss_rate:.4f}"],
                ["retry_after hint (median)", f"{np.median(hints):.3f} s"],
                ["latency p50", f"{p50 * 1e3:.1f} ms"],
                ["latency p99", f"{p99 * 1e3:.1f} ms"],
            ],
            title=(
                "Overload shedding - bounded admission under a "
                f"{burst}-request burst"
            ),
        )
    )

    _merge_json(
        {
            "overload": {
                "burst": burst,
                "queue_depth": queue_depth,
                "admitted": admitted,
                "shed": shed,
                "loss_rate": loss_rate,
                "retry_after_median_seconds": float(np.median(hints)),
                "latency_p50_seconds": p50,
                "latency_p99_seconds": p99,
                "stats": {
                    "completed": stats.completed,
                    "shed": stats.shed,
                    "failed": stats.failed,
                },
                "guard": "loss_rate == 0 and shed > 0 with retry_after > 0",
            }
        }
    )

    assert admitted + shed == burst
    assert shed > 0, "a burst 20x the queue depth must shed"
    assert all(hint > 0 for hint in hints)
    assert loss_rate == 0.0, "every admitted request must resolve"
    assert stats.completed == admitted


def test_chaos_kills_under_load(report):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    n_requests = 96
    faults = FaultSpec(seed=7, worker_crash_prob=0.08)
    targets = _targets(pipeline, snapshot, n_requests)

    with ShardedEstimationService.for_pipeline(
        pipeline,
        shards=3,
        queue_depth=n_requests,
        faults=faults,
        max_redeliveries=4,
        **_FAST,
    ) as service:
        tick = time.perf_counter()
        futures = []
        for i, tcr in enumerate(targets):
            futures.append(
                service.submit(
                    EstimateRequest(
                        data=snapshot.data,
                        target_ratio=float(tcr),
                        dataset_id=snapshot.name,
                    )
                )
            )
            if i == n_requests // 4:
                service.kill_shard(0)  # first mid-load kill
            if i == n_requests // 2:
                service.kill_shard(1)  # second mid-load kill
        done, not_done = wait(futures, timeout=300.0)
        wall = time.perf_counter() - tick
        stats = service.stats

    lost = len(not_done) + sum(1 for f in done if f.exception() is not None)
    loss_rate = lost / max(1, len(futures))
    latencies = sorted(
        f.result().latency_seconds for f in done if f.exception() is None
    )
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))

    report(
        render_table(
            ["metric", "value"],
            [
                ["requests", str(n_requests)],
                ["supervised kills", str(stats.kills)],
                ["respawns", str(stats.respawns)],
                ["redelivered", str(stats.redelivered)],
                ["fallbacks", str(stats.fallbacks)],
                ["loss rate (admitted)", f"{loss_rate:.4f}"],
                ["latency p50", f"{p50 * 1e3:.1f} ms"],
                ["latency p99", f"{p99 * 1e3:.1f} ms"],
                ["throughput", f"{n_requests / wall:.0f} req/s"],
            ],
            title=(
                "Chaos under load - 2 shard kills + seeded crashes, "
                "zero admitted-request loss"
            ),
        )
    )

    _merge_json(
        {
            "chaos": {
                "requests": n_requests,
                "worker_crash_prob": faults.worker_crash_prob,
                "kills": stats.kills,
                "respawns": stats.respawns,
                "redelivered": stats.redelivered,
                "fallbacks": stats.fallbacks,
                "loss_rate": loss_rate,
                "latency_p50_seconds": p50,
                "latency_p99_seconds": p99,
                "wall_seconds": wall,
                "guard": (
                    "loss_rate == 0, respawns >= 2, p99 bounded by the "
                    "300 s wait budget"
                ),
            }
        }
    )

    assert not not_done, "zero hung futures under chaos"
    assert loss_rate == 0.0, "every admitted request must resolve"
    assert stats.kills >= 2, "both mid-load kills must be recorded"
    assert stats.respawns >= 2, "killed shards must come back"
    assert p99 < 300.0, "p99 stays bounded through the crash storm"
