"""Sec. II — ZFP fixed-rate vs fixed-accuracy.

The paper motivates a *generic* fixed-ratio framework by noting that
ZFP's own fixed-rate mode "suffers from much lower compression ratio
(e.g., ~2x lower) at the same data distortion level" than its
fixed-accuracy mode. This bench reproduces that comparison: for each
accuracy-mode error bound, find the cheapest rate matching its max
distortion and compare ratios.
"""

import numpy as np

from repro.compressors.zfp import ZFPCompressor
from repro.datasets import load_series
from repro.experiments.tables import render_table


def test_zfp_fixed_rate_penalty(benchmark, report):
    data = load_series("nyx-1", "baryon_density").snapshots[0].data
    accuracy = ZFPCompressor()
    rate = ZFPCompressor(mode="rate")
    value_range = float(np.ptp(data))

    rows = []
    penalties = []
    for rel in (1e-4, 1e-3, 1e-2):
        eb = rel * value_range
        recon_a, blob_a = accuracy.roundtrip(data, eb)
        err_a = float(np.max(np.abs(data.astype(np.float64) - recon_a)))
        matched = None
        for bits in range(1, 31):
            recon_r, blob_r = rate.roundtrip(data, bits)
            err_r = float(np.max(np.abs(data.astype(np.float64) - recon_r)))
            if err_r <= err_a:
                matched = (bits, blob_r.compression_ratio, err_r)
                break
        assert matched is not None, "some rate must reach the distortion"
        bits, cr_rate, err_r = matched
        penalty = blob_a.compression_ratio / cr_rate
        penalties.append(penalty)
        rows.append(
            [
                f"{eb:.3g}",
                f"{blob_a.compression_ratio:.2f}",
                f"{cr_rate:.2f} (rate={bits})",
                f"{penalty:.2f}x",
            ]
        )

    benchmark(lambda: rate.compress(data, 8))

    report(
        render_table(
            [
                "error bound",
                "fixed-accuracy CR",
                "fixed-rate CR @ same max err",
                "accuracy-mode advantage",
            ],
            rows,
            title="Sec. II - ZFP fixed-rate penalty (paper: ~2x)",
        )
    )

    assert float(np.mean(penalties)) > 1.2, (
        "fixed-accuracy must out-compress fixed-rate at equal distortion"
    )
