"""Table VI — FXRZ training time breakdown.

The paper reports 2-33 minutes per (application, compressor) on Bebop
for 1-12 GB datasets, dominated by the stationary-point compressor
runs. This bench reproduces the breakdown — stationary points,
interpolation/augmentation, model fit — on the scaled datasets and
asserts the structural claim: augmentation is nearly free compared
with the compressor runs it replaces.
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.compressors import get_compressor
from repro.core.training import TrainingEngine
from repro.experiments.corpus import training_arrays
from repro.experiments.tables import render_table

_CASES = (
    ("nyx", "baryon_density", "sz"),
    ("nyx", "baryon_density", "mgard"),
    ("hurricane", "TC", "sz"),
    ("hurricane", "QCLOUD", "sz"),
    ("rtm", "pressure", "zfp"),
    ("qmcpack", "spin0", "fpzip"),
)


def test_table6_training_breakdown(benchmark, report):
    rows = []
    reports = []
    for app, field, comp_name in _CASES:
        engine = TrainingEngine(get_compressor(comp_name), config=BENCH_CONFIG)
        for data in training_arrays(app, field):
            engine.add_dataset(data)
        engine.fit()
        r = engine.report
        reports.append(r)
        rows.append(
            [
                f"{app}/{field}",
                comp_name,
                str(r.n_datasets),
                f"{r.stationary_seconds:.1f}s",
                f"{r.augmentation_seconds:.2f}s",
                f"{r.fit_seconds:.1f}s",
                f"{r.total_seconds:.1f}s",
            ]
        )

    # Benchmark the augmentation kernel (the paper's headline saving).
    engine = TrainingEngine(get_compressor("sz"), config=BENCH_CONFIG)
    engine.add_dataset(training_arrays("hurricane", "TC")[0])
    benchmark(engine.build_training_matrix)

    report(
        render_table(
            [
                "application/field",
                "comp",
                "datasets",
                "stationary",
                "augment",
                "fit",
                "total",
            ],
            rows,
            title="Table VI - FXRZ training time breakdown",
        )
    )

    # Structural claims: augmentation replaces thousands of compressor
    # runs with interpolation, so it must be far cheaper than the
    # stationary-point anchoring it extends.
    total_stationary = float(np.sum([r.stationary_seconds for r in reports]))
    total_augment = float(np.sum([r.augmentation_seconds for r in reports]))
    assert total_augment < total_stationary
    assert all(r.total_seconds < 300 for r in reports), "training stays cheap"
