"""Fig. 14 — robustness across application scopes.

Trains FXRZ on a corpus mixing *all four* applications and tests on
RTM-BigScale (whose precision and scale differ from every training
dataset). The paper reports FXRZ keeping low errors (6.76-19.81 %)
despite the mixed-scope training; the bench asserts FXRZ stays
accurate and competitive with FRaZ under the same conditions.
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.core.pipeline import FXRZ
from repro.experiments.corpus import cross_scope_corpus
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table

_COMPRESSORS = ("sz", "zfp", "mgard", "fpzip")


def test_fig14_cross_scope_training(benchmark, report):
    train, test = cross_scope_corpus()
    snapshot = test[-1]

    rows = []
    fxrz_errors = {}
    fraz_errors = {}
    for comp_name in _COMPRESSORS:
        comp = get_compressor(comp_name)
        pipeline = FXRZ(comp, config=BENCH_CONFIG)
        pipeline.fit(train)
        targets = target_ratio_grid(comp, snapshot, 5)
        # Same request discipline as the harness: stay inside the
        # mixed-scope model's trained span.
        lo_t, hi_t = pipeline.trained_ratio_range(snapshot.data)
        lo = max(float(targets[0]), lo_t)
        hi = min(float(targets[-1]), hi_t * 0.95)
        if hi <= lo:
            hi = lo * 1.5
        targets = np.linspace(lo, hi, 5)
        cache = {}
        fx, fr = [], []
        for tcr in targets:
            result = pipeline.compress_to_ratio(snapshot.data, float(tcr))
            fx.append(result.estimation_error)
            outcome = FRaZ(comp, max_iterations=15).search(
                snapshot.data, float(tcr), cache=cache
            )
            fr.append(outcome.estimation_error)
        fxrz_errors[comp_name] = float(np.mean(fx))
        fraz_errors[comp_name] = float(np.mean(fr))
        rows.append(
            [
                comp_name,
                f"{fxrz_errors[comp_name]:.1%}",
                f"{fraz_errors[comp_name]:.1%}",
            ]
        )

    benchmark(lambda: pipeline.estimate_config(snapshot.data, 10.0))

    report(
        render_table(
            ["compressor", "FXRZ (mixed-scope training)", "FRaZ-15"],
            rows,
            title=(
                "Fig. 14 - train on all applications, test on RTM-Big "
                "(paper: FXRZ 6.76-19.81%)"
            ),
        )
    )

    # Shape assertions: mixed-scope training still yields usable
    # accuracy, and FXRZ stays competitive with the 15-iteration search.
    assert float(np.mean(list(fxrz_errors.values()))) < 0.45
    assert float(np.mean(list(fxrz_errors.values()))) < float(
        np.mean(list(fraz_errors.values()))
    ) + 0.10
