"""Fig. 7 — compressibility adjustment (CA) on vs off.

Runs FXRZ twice on a dataset with substantial smooth regions — once
with CA (ACR = TCR * R) and once without — and compares how close the
measured ratios track the targets. The paper's claim: the CA curve
hugs the ground truth; the unadjusted curve drifts.
"""

import numpy as np

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.pipeline import FXRZ
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table

_CASES = (("hurricane", "QCLOUD", "sz"), ("hurricane", "QCLOUD", "zfp"))


def test_fig07_adjustment_effect(benchmark, report):
    sections = []
    means = {}
    for app, field, comp_name in _CASES:
        train = training_arrays(app, field)
        snapshot = held_out_snapshots(app, field)[0]
        results = {}
        for use_ca in (True, False):
            config = FXRZConfig(
                stationary_points=12,
                augmented_samples=150,
                use_adjustment=use_ca,
            )
            pipeline = FXRZ(get_compressor(comp_name), config=config)
            pipeline.fit(train)
            targets = target_ratio_grid(pipeline.compressor, snapshot, 6)
            measured = [
                pipeline.compress_to_ratio(snapshot.data, float(t)).measured_ratio
                for t in targets
            ]
            results[use_ca] = (targets, np.array(measured))
        rows = []
        for i, tcr in enumerate(results[True][0]):
            rows.append(
                [
                    f"{tcr:.1f}",
                    f"{results[True][1][i]:.1f}",
                    f"{results[False][1][i]:.1f}",
                ]
            )
        err_ca = float(
            np.mean(np.abs(results[True][1] - results[True][0]) / results[True][0])
        )
        err_raw = float(
            np.mean(
                np.abs(results[False][1] - results[False][0]) / results[False][0]
            )
        )
        means[(app, field, comp_name)] = (err_ca, err_raw)
        sections.append(
            render_table(
                ["TCR (ground truth)", "MCR with CA", "MCR without CA"],
                rows,
                title=(
                    f"Fig. 7 - {comp_name} on {app}/{field}: "
                    f"err {err_ca:.1%} (CA) vs {err_raw:.1%} (no CA)"
                ),
            )
        )

    snapshot = held_out_snapshots("hurricane", "QCLOUD")[0]
    from repro.core.adjustment import nonconstant_fraction

    benchmark(lambda: nonconstant_fraction(snapshot.data))

    report("\n\n".join(sections))

    # Shape assertion: averaged across the two compressors, CA helps.
    avg_ca = float(np.mean([v[0] for v in means.values()]))
    avg_raw = float(np.mean([v[1] for v in means.values()]))
    assert avg_ca <= avg_raw + 0.02, (
        f"CA ({avg_ca:.1%}) should not be worse than no-CA ({avg_raw:.1%})"
    )
