"""Fig. 11 — the valid compression ratio range per dataset.

The paper chooses each dataset's evaluated TCR range by distortion
(e.g. up to ~500 for Nyx baryon density with SZ). This bench derives
the same kind of range with a PSNR floor and reports it for the main
datasets, asserting the expected ordering: smoother data sustains a
wider valid range.
"""

from repro.analysis.distortion import valid_ratio_range
from repro.compressors import get_compressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_CASES = (
    ("nyx-1", "baryon_density"),
    ("qmcpack-3", "spin0"),
    ("rtm-big", "pressure"),
    ("hurricane", "TC"),
)


def test_fig11_valid_ratio_ranges(benchmark, report):
    comp = get_compressor("sz")
    rows = []
    ranges = {}
    for name, field in _CASES:
        data = load_series(name, field).snapshots[-1].data
        lo, hi = valid_ratio_range(comp, data, min_psnr=40.0, n_probes=12)
        ranges[f"{name}/{field}"] = (lo, hi)
        rows.append([f"{name}/{field}", f"{lo:.1f}", f"{hi:.1f}"])

    data = load_series("hurricane", "TC").snapshots[-1].data
    benchmark.pedantic(
        lambda: valid_ratio_range(comp, data, min_psnr=40.0, n_probes=6),
        rounds=1,
        iterations=1,
    )

    report(
        render_table(
            ["dataset", "min valid CR", "max valid CR (PSNR >= 40 dB)"],
            rows,
            title="Fig. 11 - valid compression ratio ranges (SZ)",
        )
    )

    for lo, hi in ranges.values():
        assert 0 < lo < hi
    # The wave field sustains higher ratios at equal fidelity than the
    # weather temperature field (the paper's Fig. 3/11 ordering).
    assert ranges["rtm-big/pressure"][1] > ranges["hurricane/TC"][1]
