"""Fig. 6 — constant / non-constant block maps.

Reproduces the illustration's mechanism on the two fields where it
matters most: Nyx temperature (the paper's example) and Hurricane
QCLOUD (mostly exact zeros). Reports the non-constant fraction R per
snapshot and asserts the qualitative ordering — sparse cloud data has
far more constant blocks than a turbulent density field.
"""

from repro.core.adjustment import constant_block_mask, nonconstant_fraction
from repro.datasets import load_series
from repro.experiments.tables import render_table

_CASES = (
    ("nyx-1", "temperature"),
    ("nyx-1", "baryon_density"),
    ("hurricane", "QCLOUD"),
    ("hurricane", "TC"),
    ("rtm-small", "pressure"),
)


def test_fig06_block_classification(benchmark, report):
    rows = []
    fractions = {}
    for name, field in _CASES:
        data = load_series(name, field).snapshots[-1].data
        mask = constant_block_mask(data, block_size=4, lam=0.15)
        r = nonconstant_fraction(data, block_size=4, lam=0.15)
        fractions[f"{name}/{field}"] = r
        rows.append(
            [
                f"{name}/{field}",
                str(mask.size),
                str(int(mask.sum())),
                f"{r:.2f}",
            ]
        )

    data = load_series("nyx-1", "temperature").snapshots[-1].data
    benchmark(lambda: nonconstant_fraction(data, block_size=4, lam=0.15))

    report(
        render_table(
            ["dataset", "blocks", "constant blocks", "R (non-constant)"],
            rows,
            title="Fig. 6 - 4x4x4 block classification (lambda = 0.15)",
        )
    )

    assert fractions["hurricane/QCLOUD"] < 0.7, "sparse clouds -> many constant"
    assert fractions["hurricane/QCLOUD"] < fractions["nyx-1/baryon_density"]
    assert all(0.0 <= r <= 1.0 for r in fractions.values())
