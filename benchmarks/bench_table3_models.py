"""Table III — model selection: RFR vs AdaBoost vs SVR.

Trains FXRZ three times on the same data with each regressor plugged in
and compares mean estimation error on held-out snapshots. The paper's
conclusion to reproduce: the random forest achieves the lowest error
(SVR struggles because best-fit configs are poorly separable; AdaBoost
struggles on low target ratios).
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.compressors import get_compressor
from repro.core.pipeline import FXRZ
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.svr import SVR


def _standardized_svr_factory(seed):  # noqa: ARG001 - uniform signature
    return SVR(c=10.0, epsilon=0.05, gamma="scale", max_iter=150)


_MODELS = {
    "RFR": lambda seed: RandomForestRegressor(
        n_estimators=40, min_samples_leaf=2, max_features=None, random_state=seed
    ),
    "AdaBoost": lambda seed: AdaBoostRegressor(
        n_estimators=40, max_depth=3, random_state=seed
    ),
    "SVR": _standardized_svr_factory,
}

_CASES = (("hurricane", "TC", "sz"), ("hurricane", "TC", "zfp"),
          ("rtm", "pressure", "sz"))


def test_table3_model_comparison(benchmark, report):
    rows = []
    means = {name: [] for name in _MODELS}
    for app, field, comp_name in _CASES:
        train = training_arrays(app, field)
        # Average over every held-out snapshot: single-snapshot scores
        # are too noisy to rank models reliably.
        snapshots = held_out_snapshots(app, field)
        errors_by_model = {}
        target_grids: dict[str, np.ndarray] = {}
        for model_name, factory in _MODELS.items():
            pipeline = FXRZ(
                get_compressor(comp_name),
                config=BENCH_CONFIG,
                model_factory=factory,
            )
            pipeline.fit(train)
            errs = []
            for snapshot in snapshots:
                if snapshot.label not in target_grids:
                    # One shared grid per snapshot, clamped to the
                    # trained span (the harness's request discipline)
                    # so the three models answer identical questions.
                    raw = target_ratio_grid(pipeline.compressor, snapshot, 5)
                    lo_t, hi_t = pipeline.trained_ratio_range(snapshot.data)
                    lo = max(float(raw[0]), lo_t)
                    hi = min(float(raw[-1]), hi_t * 0.9)
                    if hi <= lo:
                        hi = lo * 1.5
                    target_grids[snapshot.label] = np.linspace(lo, hi, 5)
                errs.extend(
                    pipeline.compress_to_ratio(
                        snapshot.data, float(t)
                    ).estimation_error
                    for t in target_grids[snapshot.label]
                )
            errors_by_model[model_name] = float(np.mean(errs))
            means[model_name].append(errors_by_model[model_name])
        rows.append(
            [f"{app}/{field} ({comp_name})"]
            + [f"{errors_by_model[m]:.1%}" for m in _MODELS]
        )
    rows.append(
        ["average"] + [f"{float(np.mean(means[m])):.1%}" for m in _MODELS]
    )

    # Benchmark the kernel that differs per model: one RFR fit on a
    # representative training matrix size.
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (300, 6))
    y = rng.uniform(-5, -1, 300)
    benchmark.pedantic(
        lambda: _MODELS["RFR"](0).fit(x, y), rounds=2, iterations=1
    )

    report(
        render_table(
            ["case"] + list(_MODELS),
            rows,
            title="Table III - mean estimation error by regression model",
        )
    )

    rfr = float(np.mean(means["RFR"]))
    assert rfr <= float(np.mean(means["AdaBoost"])) + 0.02
    assert rfr <= float(np.mean(means["SVR"])) + 0.02
