"""Figs. 8-9 — demonstrating train/test variability.

The paper validates its assessment by showing training and testing
data differ in distribution, standard deviation and appearance. This
bench quantifies the same: distribution distance, sigma ratio and mean
shift between each application's training and held-out snapshots.
"""

from repro.analysis.variability import series_variability, snapshot_statistics
from repro.datasets import paper_test_series, paper_training_series
from repro.experiments.tables import render_table

_CASES = (
    ("hurricane", "QCLOUD"),
    ("hurricane", "TC"),
    ("nyx", "baryon_density"),
    ("rtm", "pressure"),
)


def test_fig08_09_variability(benchmark, report):
    rows = []
    distances = {}
    for app, field in _CASES:
        train = next(
            s for s in paper_training_series(app) if s.field == field
        )
        test = next(s for s in paper_test_series(app) if s.field == field)
        stats = series_variability(train, test, bins=64)
        distances[(app, field)] = stats
        rows.append(
            [
                f"{app}/{field}",
                f"{stats['histogram_l1']:.3f}",
                f"{stats['std_ratio']:.2f}",
                f"{stats['mean_shift']:.3f}",
                f"{stats['tail_ratio']:.2f}",
            ]
        )

    train = paper_training_series("hurricane")[0]
    benchmark(lambda: snapshot_statistics(train))

    per_snapshot = snapshot_statistics(train)
    sigma_lines = "\n".join(
        f"  {s.label}: mean={s.mean:.2f} sigma={s.std:.2f}" for s in per_snapshot
    )
    report(
        render_table(
            [
                "series",
                "histogram L1",
                "sigma ratio (test/train)",
                "mean shift",
                "p99.9 ratio",
            ],
            rows,
            title="Figs. 8-9 - train vs test variability",
        )
        + "\n\nper-snapshot statistics (Hurricane TC training steps):\n"
        + sigma_lines
    )

    # Shape assertion: the splits are genuinely different distributions
    # (a trivially-identical split would make the evaluation vacuous).
    assert any(s["histogram_l1"] > 0.05 for s in distances.values())
    # Nyx config change (level 2): the heavy-tailed density packs most
    # histogram mass into one bin, so the visible signature sits in the
    # tail weight (different sigma/spectral index move the halo peaks).
    nyx = distances[("nyx", "baryon_density")]
    assert (
        abs(nyx["tail_ratio"] - 1.0) > 0.05
        or abs(nyx["std_ratio"] - 1.0) > 0.2
        or nyx["histogram_l1"] > 0.02
    )
