"""Ablation — do the five adopted features earn their keep end-to-end?

Table II justified the feature choice by correlation; this ablation
closes the loop on the actual task: FXRZ is trained with (a) the five
adopted features, (b) only the three gradient features the paper
rejected, and (c) only the target-ratio column (no data features at
all), and compared on held-out estimation error.
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.compressors import get_compressor
from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.augmentation import build_curve
from repro.core.features import extract_features
from repro.experiments.corpus import held_out_snapshots, training_arrays
from repro.experiments.harness import target_ratio_grid
from repro.experiments.tables import render_table
from repro.ml.forest import RandomForestRegressor

_VARIANTS = {
    "adopted-5": lambda f: f.selected(),
    "gradients-3": lambda f: np.array(
        [f.mean_gradient, f.min_gradient, f.max_gradient]
    ),
    "ratio-only": lambda f: np.zeros(0),
}

_CASES = (("hurricane", "TC", "sz"), ("nyx", "baryon_density", "sz"))


def _run_variant(comp, train, snapshot, feature_fn):
    """A minimal FXRZ loop with a pluggable feature vector."""
    rows, targets_y = [], []
    for data in train:
        features = feature_fn(extract_features(data, stride=4))
        r = nonconstant_fraction(data)
        curve = build_curve(comp, data, n_points=BENCH_CONFIG.stationary_points)
        ratios, configs = curve.sample(BENCH_CONFIG.augmented_samples, seed=1)
        for ratio, config in zip(ratios, configs):
            rows.append(
                np.concatenate((features, [adjusted_ratio(float(ratio), r)]))
            )
            targets_y.append(np.log10(config))
    model = RandomForestRegressor(
        n_estimators=40, min_samples_leaf=2, max_features=None, random_state=0
    )
    model.fit(np.vstack(rows), np.array(targets_y))

    test_features = feature_fn(extract_features(snapshot.data, stride=4))
    r = nonconstant_fraction(snapshot.data)
    errors = []
    for tcr in target_ratio_grid(comp, snapshot, 5):
        row = np.concatenate(
            (test_features, [adjusted_ratio(float(tcr), r)])
        )[None, :]
        config = comp.normalize_config(10.0 ** float(model.predict(row)[0]))
        measured = comp.compression_ratio(snapshot.data, config)
        errors.append(abs(measured - tcr) / tcr)
    return float(np.mean(errors))


def test_ablation_feature_sets(benchmark, report):
    rows = []
    means = {name: [] for name in _VARIANTS}
    for app, field, comp_name in _CASES:
        comp = get_compressor(comp_name)
        train = training_arrays(app, field)
        snapshot = held_out_snapshots(app, field)[0]
        errs = {}
        for name, fn in _VARIANTS.items():
            errs[name] = _run_variant(comp, train, snapshot, fn)
            means[name].append(errs[name])
        rows.append(
            [f"{app}/{field} ({comp_name})"]
            + [f"{errs[n]:.1%}" for n in _VARIANTS]
        )
    rows.append(
        ["average"] + [f"{float(np.mean(means[n])):.1%}" for n in _VARIANTS]
    )

    data = held_out_snapshots("hurricane", "TC")[0].data
    benchmark(lambda: extract_features(data, stride=4))

    report(
        render_table(
            ["case"] + list(_VARIANTS),
            rows,
            title="Ablation - estimation error by feature set",
        )
    )

    avg = {n: float(np.mean(means[n])) for n in _VARIANTS}
    # The adopted features must not lose to either ablation on average.
    assert avg["adopted-5"] <= min(avg.values()) + 0.05
