"""Ablation — entropy backend: Huffman vs range coding.

SZ-family compressors ship both Huffman and arithmetic backends; the
whole-bit-per-symbol floor of Huffman loses ground exactly where
fixed-ratio compression operates (large bounds, one dominant
quantization code). This ablation measures the CR and time trade on
real fields.
"""

import time

import numpy as np

from repro.compressors.sz import SZCompressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_CASES = (("nyx-1", "baryon_density"), ("rtm-small", "pressure"))


def test_ablation_entropy_backend(benchmark, report):
    rows = []
    gains = []
    for name, field in _CASES:
        data = load_series(name, field).snapshots[-1].data
        spread = float(np.ptp(data))
        for rel in (1e-4, 1e-2):
            eb = rel * spread
            results = {}
            for entropy in ("huffman", "range"):
                comp = SZCompressor(entropy=entropy)
                tick = time.perf_counter()
                blob = comp.compress(data, eb)
                seconds = time.perf_counter() - tick
                results[entropy] = (blob.compression_ratio, seconds)
            gain = results["range"][0] / results["huffman"][0]
            gains.append(gain)
            rows.append(
                [
                    f"{name}/{field}",
                    f"{eb:.3g}",
                    f"{results['huffman'][0]:.2f} ({results['huffman'][1] * 1e3:.0f}ms)",
                    f"{results['range'][0]:.2f} ({results['range'][1] * 1e3:.0f}ms)",
                    f"{gain:.3f}x",
                ]
            )

    data = load_series("rtm-small", "pressure").snapshots[-1].data
    benchmark(
        lambda: SZCompressor(entropy="range").compress(
            data, 1e-3 * float(np.ptp(data))
        )
    )

    report(
        render_table(
            [
                "dataset",
                "error bound",
                "huffman CR (time)",
                "range CR (time)",
                "range gain",
            ],
            rows,
            title="Ablation - SZ entropy backend",
        )
    )

    # Range coding must never lose meaningfully, and should win on
    # average (it has no whole-bit floor).
    assert min(gains) > 0.97
    assert float(np.mean(gains)) > 1.0
