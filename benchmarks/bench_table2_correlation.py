"""Table II — correlation between features and compression ratio.

For each compressor, compression ratios are collected across many
(dataset, error bound) pairs; each candidate feature's |Pearson r|
against the ratios is averaged over error bounds. The paper's
conclusion to reproduce: the five adopted features correlate well and
the gradient features correlate worst (hence their exclusion).
"""

import numpy as np

from repro.compressors import get_compressor
from repro.core.features import FEATURE_NAMES, extract_features
from repro.datasets import load_series
from repro.experiments.tables import render_table
from repro.ml.metrics import pearson_correlation

_SNAPSHOT_SOURCES = (
    ("nyx-1", "baryon_density"),
    ("nyx-1", "temperature"),
    ("rtm-small", "pressure"),
    ("hurricane", "TC"),
    ("hurricane", "QCLOUD"),
)

_SELECTED = ("value_range", "mean_value", "mnd", "mld", "msd")
_GRADIENTS = ("mean_gradient", "min_gradient", "max_gradient")


def _collect(comp_name: str):
    """|r(feature, log CR)| averaged over relative error bounds."""
    snapshots = []
    for name, field in _SNAPSHOT_SOURCES:
        series = load_series(name, field)
        snapshots.extend(snap.data for snap in list(series)[:3])
    features = np.array(
        [extract_features(d, stride=4).all_features() for d in snapshots]
    )
    comp = get_compressor(comp_name)
    correlations = []
    for rel_eb in (1e-4, 1e-3, 1e-2):
        ratios = []
        for data in snapshots:
            if comp.error_mode == "abs":
                config = max(rel_eb * float(np.ptp(data)), 1e-12)
            else:
                config = {1e-4: 24, 1e-3: 18, 1e-2: 12}[rel_eb]
            ratios.append(comp.compression_ratio(data, config))
        log_ratios = np.log(ratios)
        row = [
            abs(pearson_correlation(np.log1p(np.abs(features[:, i])), log_ratios))
            for i in range(len(FEATURE_NAMES))
        ]
        correlations.append(row)
    return np.mean(correlations, axis=0)


def test_table2_feature_correlations(benchmark, report):
    rows = []
    table = {}
    for comp_name in ("sz", "zfp", "mgard", "fpzip"):
        avg = _collect(comp_name)
        table[comp_name] = dict(zip(FEATURE_NAMES, avg))
        rows.append([comp_name] + [f"{v:.2f}" for v in avg])

    benchmark(lambda: pearson_correlation(np.arange(50.0), np.arange(50.0) ** 2))

    report(
        render_table(
            ["comp"] + list(FEATURE_NAMES),
            rows,
            title="Table II - avg |Pearson r| between features and log CR",
        )
    )

    # Shape assertion: averaged over compressors, the adopted features
    # out-correlate the gradient features (the paper's Table II story).
    adopted = np.mean(
        [[table[c][f] for f in _SELECTED] for c in table]
    )
    gradients = np.mean(
        [[table[c][f] for f in _GRADIENTS] for c in table]
    )
    assert adopted > gradients, (
        f"adopted features ({adopted:.2f}) must beat gradients ({gradients:.2f})"
    )
