"""Online learning loop — logging overhead, non-blocking retrain, canary gain.

Three guards on the serve→observe→retrain→promote loop:

* **Logging overhead** — serving with an :class:`OutcomeLog` attached
  must cost at most 3% wall time over serving without one (best-of-3
  per arm; the log is one buffered JSON line per request).
* **Non-blocking retrain** — while the background retrainer fits
  candidate forests, the serving thread keeps estimating; its p99
  latency during the retrain must stay within 1.5x the baseline p99.
* **Canary gain** — after the canary promotes the retrained candidate,
  the median relative CR error on a drifted workload must be lower
  than the frozen incumbent's (fresh estimates, measured with real
  compressor runs — not just the canary's replay).

Results land in the repo-root ``BENCH_online_learning.json``.
"""

import json
import pathlib
import time

import numpy as np

from conftest import BENCH_CONFIG
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.harness import get_trained_fxrz
from repro.experiments.tables import render_table
from repro.lifecycle import (
    BackgroundRetrainer,
    DriftDetector,
    OutcomeLog,
    OutcomeRecord,
    read_outcomes,
)
from repro.runtime import RuntimeContext
from repro.serving import LATEST, ModelRegistry

_LEARNING_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_online_learning.json"
)

#: Open-loop inter-arrival gap of the serving load, in seconds.
_ARRIVAL_GAP = 0.02


def _merge_json(update: dict) -> None:
    """Merge ``update`` so either phase can run alone without clobbering."""
    existing: dict = {}
    if _LEARNING_JSON.is_file():
        try:
            existing = json.loads(_LEARNING_JSON.read_text())
        except ValueError:
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing.update(update)
    _LEARNING_JSON.write_text(json.dumps(existing, indent=2) + "\n")


def _noisy_fields(n: int, side: int = 24, seed: int = 23) -> list[np.ndarray]:
    """A drifted workload: pure noise, nothing like the training corpus."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal((side,) * 3).astype(np.float32) for _ in range(n)
    ]


def _measured_records(pipeline, fields, targets) -> list[OutcomeRecord]:
    compressor = pipeline.compressor
    records = []
    for i, field in enumerate(fields):
        for target in targets:
            estimate = pipeline.estimate_config(field, target)
            measured = compressor.compression_ratio(field, estimate.config)
            records.append(
                OutcomeRecord.from_estimate(
                    estimate,
                    dataset_key=f"drift-{i}",
                    compressor=compressor.name,
                    measured_ratio=measured,
                    source="bench",
                )
            )
    return records


def test_logging_overhead(report, tmp_path):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    rounds = 4
    targets = np.linspace(lo * 1.05, hi * 0.95, 24)

    for target in targets:  # warm the analysis path before timing
        pipeline.estimate_config(snapshot.data, float(target))
    # Wall time drifts several percent over seconds on a shared host,
    # so differencing a logged arm against a bare arm cannot resolve a
    # sub-3% effect (the logging call is ~25us against a ~3ms
    # estimate). Time the logging *in situ* instead: inside the serving
    # loop, split each request into its estimate and its record, and
    # charge the log exactly the wall time its call consumed.
    serve_seconds = 0.0
    logging_seconds = 0.0
    with OutcomeLog(tmp_path / "outcomes.jsonl") as log:
        for _ in range(rounds):
            for target in targets:
                tick = time.perf_counter()
                estimate = pipeline.estimate_config(
                    snapshot.data, float(target)
                )
                mid = time.perf_counter()
                log.record_estimate(
                    estimate,
                    dataset_key=snapshot.name,
                    compressor="sz",
                    source="bench",
                )
                logging_seconds += time.perf_counter() - mid
                serve_seconds += mid - tick
        records_written = log.records_written
    per_record = logging_seconds / records_written
    overhead = 1.0 + logging_seconds / serve_seconds

    report(
        render_table(
            ["metric", "value"],
            [
                ["requests", str(records_written)],
                ["serving time", f"{serve_seconds * 1e3:.1f} ms"],
                ["logging time", f"{logging_seconds * 1e3:.1f} ms"],
                ["logging per record", f"{per_record * 1e6:.1f} us"],
                ["overhead ratio", f"{overhead:.4f}"],
            ],
            title="Outcome logging overhead - one JSON line per request",
        )
    )
    _merge_json(
        {
            "logging_overhead": {
                "requests": int(records_written),
                "serving_seconds": serve_seconds,
                "logging_seconds": logging_seconds,
                "logging_seconds_per_record": per_record,
                "overhead_ratio": overhead,
                "guard": "overhead_ratio <= 1.03",
            }
        }
    )
    assert records_written == rounds * len(targets)
    assert overhead <= 1.03, (
        f"outcome logging cost {overhead:.1%} of serving time (limit 3%)"
    )


def test_drift_retrain_canary(report, tmp_path):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    registry = ModelRegistry(tmp_path / "reg")
    incumbent = registry.publish(pipeline)

    # -- observe a drifted workload through the log + detector -------------
    detector = DriftDetector.for_pipeline(
        pipeline, window=128, min_samples=8, hysteresis=3
    )
    log_path = tmp_path / "outcomes.jsonl"
    with OutcomeLog(log_path) as log:
        for record in _measured_records(
            pipeline, _noisy_fields(8), (5.0, 8.0, 11.0)
        ):
            log.record(record)
            detector.observe(record)
    assert detector.drifting, f"drifted workload must trip: {detector.snapshot}"
    replay = read_outcomes(log_path)

    # -- baseline serving latency (no retrain in flight) -------------------
    # Open-loop arrivals: a request every _ARRIVAL_GAP seconds, as a
    # real serving process sees, rather than a hot loop that would
    # monopolize the CPU the retrain workers also need.
    probes = _noisy_fields(6, seed=97)

    def serve_one(i: int) -> float:
        tick = time.perf_counter()
        pipeline.estimate_config(probes[i % len(probes)], 8.0)
        latency = time.perf_counter() - tick
        time.sleep(_ARRIVAL_GAP)
        return latency

    baseline = [serve_one(i) for i in range(100)]
    p99_baseline = float(np.percentile(baseline, 99))

    # -- retrain in the background while serving continues -----------------
    # The candidate fits land in executor worker processes, so the
    # serving thread contends on IPC, not on a GIL-bound forest fit.
    with RuntimeContext(env={}, jobs=2) as ctx:
        retrainer = BackgroundRetrainer(
            registry,
            "sz",
            detector=detector,
            min_samples=10_000,  # drift, not volume, must be the trigger
            canary_fraction=0.25,
            oversample=4,
            n_candidates=2,
            ctx=ctx,
        )
        assert retrainer.maybe_trigger(replay.records)
        during = []
        while retrainer.busy and len(during) < 3000:
            during.append(serve_one(len(during)))
        assert retrainer.wait(timeout=600)
        assert retrainer.last_error is None
        result = retrainer.last_result
    p99_during = (
        float(np.percentile(during, 99)) if len(during) >= 5 else p99_baseline
    )

    # -- before/after estimation error on fresh drifted estimates ----------
    assert result.report.promote, result.report.reason
    assert result.promoted is not None
    frozen = registry.load("sz", incumbent.fingerprint, incumbent.version)
    promoted = registry.load("sz", None, LATEST)

    def median_error(serving) -> float:
        errors = []
        for field in probes:
            for target in (6.0, 9.0):
                estimate = serving.estimate_config(field, target)
                measured = serving.compressor.compression_ratio(
                    field, estimate.config
                )
                errors.append(abs(measured - target) / target)
        return float(np.median(errors))

    error_before = median_error(frozen)
    error_after = median_error(promoted)

    report(
        render_table(
            ["metric", "value"],
            [
                ["outcome records", str(len(replay.records))],
                ["drift trips", str(detector.trips)],
                ["trigger", result.triggered_by],
                ["retrain wall", f"{result.seconds:.2f} s"],
                ["served during retrain", str(len(during))],
                ["p99 baseline", f"{p99_baseline * 1e3:.1f} ms"],
                ["p99 during retrain", f"{p99_during * 1e3:.1f} ms"],
                ["canary verdict", result.report.reason],
                ["median rel CR error before", f"{error_before:.2%}"],
                ["median rel CR error after", f"{error_after:.2%}"],
            ],
            title=(
                "Online retrain - drift-triggered, non-blocking, "
                "canary-promoted"
            ),
        )
    )
    _merge_json(
        {
            "online_retrain": {
                "outcome_records": len(replay.records),
                "trigger": result.triggered_by,
                "retrain_seconds": result.seconds,
                "served_during_retrain": len(during),
                "latency_p99_baseline_seconds": p99_baseline,
                "latency_p99_during_retrain_seconds": p99_during,
                "promoted_version": result.promoted.version,
                "canary_incumbent_error": result.report.incumbent_error,
                "canary_candidate_error": result.report.candidate_error,
                "median_error_before": error_before,
                "median_error_after": error_after,
                "guard": (
                    "p99_during <= 1.5 * p99_baseline and "
                    "median_error_after < median_error_before"
                ),
            }
        }
    )
    assert p99_during <= 1.5 * p99_baseline, (
        f"serving p99 degraded {p99_during / p99_baseline:.2f}x during the "
        "background retrain (limit 1.5x)"
    )
    assert error_after < error_before, (
        "the promoted model must serve the drifted workload better than "
        "the frozen incumbent"
    )
