"""Fig. 10 + Sec. V-C — distortion and halo mislocation vs error bound.

The paper grounds its "valid compression ratio range" in science
impact: on Nyx baryon density, halos mislocate at 0.46 % / 10.81 % /
79.17 % for error bounds 0.001 / 0.05 / 0.45. This bench sweeps
relative error bounds on the synthetic cosmology field and asserts the
monotone escalation (small bounds keep halos put; large bounds destroy
them), alongside PSNR.
"""

import numpy as np

from repro.analysis.distortion import psnr
from repro.analysis.halos import find_halos, halo_mislocation_fraction
from repro.compressors import get_compressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_REL_BOUNDS = (2e-4, 2e-3, 2e-2, 1e-1)


def test_fig10_halo_mislocation(benchmark, report):
    data = load_series("nyx-1", "baryon_density").snapshots[-1].data
    comp = get_compressor("sz")
    value_range = float(np.ptp(data))

    halos = find_halos(data, overdensity=3.0)
    assert len(halos) >= 5, "the synthetic field must contain halos"

    rows = []
    fractions = []
    for rel in _REL_BOUNDS:
        eb = rel * value_range
        recon, blob = comp.roundtrip(data, eb)
        moved = halo_mislocation_fraction(data, recon, overdensity=3.0)
        fractions.append(moved)
        rows.append(
            [
                f"{eb:.3g}",
                f"{blob.compression_ratio:.1f}",
                f"{psnr(data, recon):.1f} dB",
                f"{moved:.1%}",
            ]
        )

    benchmark(lambda: find_halos(data, overdensity=3.0))

    report(
        render_table(
            ["error bound", "CR", "PSNR", "halos mislocated"],
            rows,
            title=(
                f"Fig. 10 / Sec. V-C - Nyx baryon density "
                f"({len(halos)} halos found)"
            ),
        )
    )

    # Shape assertions: mislocation escalates with the bound; the
    # smallest bound barely disturbs halos, the largest disturbs many.
    assert fractions[0] <= 0.25
    assert fractions[-1] >= fractions[0]
    assert fractions[-1] > 0.3, "a huge bound must destroy many halos"
